"""Parallel scaling: the process executor on real cores.

Unlike Figure 9 (which reports *simulated* parallel runtime), this bench
measures *real* end-to-end wall-clock of the process-pool executor
against the serial reference, at 1/2/4 workers:

* overhead on the smallest dataset (Countries) — where per-stage IPC and
  pickling dominate and serial should win;
* speedup on a mid-size dataset (Diseasome) — where per-partition operator
  work is large enough to amortize the pool.

Output equality is asserted on every run: the process backend must be a
pure performance substitution.

The measured speedup is bounded by the machine: with C available cores,
no worker count can exceed C-fold gains.  The ≥1.5x assertion therefore
only arms when the machine actually has ≥4 cores (CI and laptop boxes);
on smaller machines the bench still runs, reports honestly, and checks
output equality plus the overhead characterization.
"""

from repro.dataflow.executors import available_cores

from benchmarks.conftest import once

WORKER_COUNTS = (1, 2, 4)

#: Discovery configuration: mid-size Table 2 dataset, knowledge-discovery
#: support threshold (the paper's h=25 regime), parallelism 4 so there is
#: one partition per worker at the widest pool.
SPEEDUP_DATASET = "Diseasome"
OVERHEAD_DATASET = "Countries"
H = 25
PARALLELISM = 4


def _identical(a, b):
    return (
        a.cinds == b.cinds
        and a.association_rules == b.association_rules
    )


def test_parallel_scaling(benchmark, report, cache):
    def body():
        rows = {}
        serial_result, serial_seconds = cache.run(
            SPEEDUP_DATASET, H, parallelism=PARALLELISM, executor="serial"
        )
        rows["serial"] = (serial_result, serial_seconds)
        for workers in WORKER_COUNTS:
            rows[workers] = cache.run(
                SPEEDUP_DATASET,
                H,
                parallelism=PARALLELISM,
                executor="process",
                workers=workers,
            )
        small_serial = cache.run(
            OVERHEAD_DATASET, H, parallelism=PARALLELISM, executor="serial"
        )
        small_process = cache.run(
            OVERHEAD_DATASET,
            H,
            parallelism=PARALLELISM,
            executor="process",
            workers=PARALLELISM,
        )
        return rows, small_serial, small_process

    rows, small_serial, small_process = once(benchmark, body)
    cores = available_cores()

    serial_result, serial_seconds = rows["serial"]
    section = report.section(
        f"Parallel scaling — process executor, {SPEEDUP_DATASET} h={H} "
        f"(real wall-clock; {cores} core(s) available)"
    )
    section.row(
        f"{'backend':>12} | {'seconds':>8} | {'speedup':>8} | output"
    )
    section.row(f"{'serial':>12} | {serial_seconds:>8.2f} | {'1.00x':>8} | reference")
    speedups = {}
    for workers in WORKER_COUNTS:
        result, seconds = rows[workers]
        speedups[workers] = serial_seconds / seconds
        same = _identical(serial_result, result)
        section.row(
            f"{f'process x{workers}':>12} | {seconds:>8.2f} | "
            f"{speedups[workers]:>7.2f}x | {'identical' if same else 'DIFFERS'}"
        )
        assert same, f"process x{workers} output differs from serial"

    small_serial_seconds = small_serial[1]
    small_process_seconds = small_process[1]
    overhead = small_process_seconds / small_serial_seconds
    section.row(
        f"overhead floor ({OVERHEAD_DATASET}): serial "
        f"{small_serial_seconds:.2f}s vs process x{PARALLELISM} "
        f"{small_process_seconds:.2f}s ({overhead:.2f}x slower — "
        f"IPC dominates tiny inputs; use --executor serial there)"
    )
    assert _identical(small_serial[0], small_process[0])

    if cores >= 4:
        # The acceptance criterion: real multi-core machines must see a
        # real speedup at 4 workers.
        assert speedups[4] >= 1.5, (
            f"expected >=1.5x at 4 workers on {cores} cores, "
            f"got {speedups[4]:.2f}x"
        )
        section.row(
            f"acceptance: {speedups[4]:.2f}x >= 1.5x at 4 workers (PASS)"
        )
    else:
        section.row(
            f"acceptance check skipped: only {cores} core(s) available — "
            f"no worker count can beat serial here; measured "
            f"{speedups[4]:.2f}x at 4 workers is the IPC-overhead floor"
        )
