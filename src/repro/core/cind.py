"""Captures (Definition 2.2), CINDs (Definition 2.3), and association rules.

A :class:`Capture` pairs a projection attribute with a condition that must
not constrain that attribute.  A :class:`CIND` states the inclusion of one
capture's interpretation in another's.  An :class:`AssociationRule` is an
exact (confidence-1) rule ``lhs → rhs`` between unary conditions; every AR
implies a CIND (Section 3.2), and RDFind reports ARs instead of their
implied CINDs because their semantics are stronger.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional, Set

from repro.core.conditions import (
    BinaryCondition,
    Condition,
    UnaryCondition,
    implies,
    is_binary,
    is_unary,
)
from repro.rdf.model import Attr, EncodedTriple, TermDictionary


class Capture(NamedTuple):
    """``(alpha, phi)``: project ``attr`` from triples satisfying ``condition``."""

    attr: Attr
    condition: Condition

    @classmethod
    def make(cls, attr: Attr, condition: Condition) -> "Capture":
        """Build a capture, enforcing that ``attr`` is not constrained."""
        if attr in condition.attrs:
            raise ValueError(
                f"projection attribute {attr.name} may not appear in the condition"
            )
        return cls(attr, condition)

    def value_of(self, triple: EncodedTriple) -> Optional[int]:
        """The projected value if the triple satisfies the condition."""
        if self.condition.matches(triple):
            return triple[int(self.attr)]
        return None

    @property
    def is_unary(self) -> bool:
        """True if the embedded condition is unary."""
        return is_unary(self.condition)

    @property
    def is_binary(self) -> bool:
        """True if the embedded condition is binary."""
        return is_binary(self.condition)

    def unary_relaxations(self) -> Iterator["Capture"]:
        """Captures with one conjunct of a binary condition dropped."""
        if is_binary(self.condition):
            for part in self.condition.unary_parts():
                yield Capture(self.attr, part)

    def render(self, dictionary: TermDictionary) -> str:
        """Paper-style rendering, e.g. ``(s, p=rdf:type ∧ o=gradStudent)``."""
        return f"({self.attr.symbol}, {self.condition.render(dictionary)})"


class CIND(NamedTuple):
    """``dependent ⊆ referenced`` over captures (Definition 2.3)."""

    dependent: Capture
    referenced: Capture

    def is_trivial(self) -> bool:
        """True when the inclusion holds on every dataset.

        That is the case when both captures project the same attribute and
        the dependent condition implies the referenced condition (e.g.
        ``(s, p=a ∧ o=b) ⊆ (s, p=a)`` or a capture included in itself).
        Trivial CINDs carry no information, so RDFind never reports them.
        """
        return self.dependent.attr == self.referenced.attr and implies(
            self.dependent.condition, self.referenced.condition
        )

    def render(self, dictionary: TermDictionary) -> str:
        """Paper-style rendering, e.g. ``(s, p=a) ⊆ (s, p=b)``."""
        return (
            f"{self.dependent.render(dictionary)} ⊆ "
            f"{self.referenced.render(dictionary)}"
        )


class SupportedCIND(NamedTuple):
    """A CIND together with its support (Definition 3.1)."""

    cind: CIND
    support: int

    def render(self, dictionary: TermDictionary) -> str:
        """Rendering including the support."""
        return f"{self.cind.render(dictionary)}  [support={self.support}]"


class AssociationRule(NamedTuple):
    """An exact association rule ``lhs → rhs`` between unary conditions.

    Exactness (confidence 1) means every triple satisfying ``lhs`` also
    satisfies ``rhs``; the rule's support is the number of such triples.
    """

    lhs: UnaryCondition
    rhs: UnaryCondition

    @property
    def binary_condition(self) -> BinaryCondition:
        """The conjunction of both sides (equal in extent to ``lhs``)."""
        return BinaryCondition.make(
            self.lhs.attr, self.lhs.value, self.rhs.attr, self.rhs.value
        )

    def implied_cinds(self, projection_attrs: Set[Attr]) -> Iterator[CIND]:
        """The CINDs ``(γ, lhs) ⊆ (γ, lhs ∧ rhs)`` this rule implies.

        One CIND per in-scope projection attribute γ not used by either
        side of the rule (Section 3.2).
        """
        used = {self.lhs.attr, self.rhs.attr}
        binary = self.binary_condition
        for attr in sorted(projection_attrs):
            if attr not in used:
                yield CIND(Capture(attr, self.lhs), Capture(attr, binary))

    def render(self, dictionary: TermDictionary) -> str:
        """Paper-style rendering, e.g. ``o=gradStudent → p=rdf:type``."""
        return f"{self.lhs.render(dictionary)} → {self.rhs.render(dictionary)}"


class SupportedAR(NamedTuple):
    """An association rule together with its support."""

    rule: AssociationRule
    support: int

    def render(self, dictionary: TermDictionary) -> str:
        """Rendering including the support."""
        return f"{self.rule.render(dictionary)}  [support={self.support}]"


def decode_condition(condition: Condition, dictionary: TermDictionary) -> Condition:
    """Clone a condition with term ids replaced by term strings.

    The clone reuses the same NamedTuple classes with string values;
    structural operations (implication, unary parts, equality) behave
    identically, which is what downstream consumers (query minimizer,
    ontology reports) need.
    """
    if isinstance(condition, UnaryCondition):
        return UnaryCondition(condition.attr, dictionary.decode(condition.value))
    return BinaryCondition(
        condition.attr1,
        dictionary.decode(condition.value1),
        condition.attr2,
        dictionary.decode(condition.value2),
    )


def decode_capture(capture: Capture, dictionary: TermDictionary) -> Capture:
    """Clone a capture with a string-valued condition."""
    return Capture(capture.attr, decode_condition(capture.condition, dictionary))


def decode_cind(cind: CIND, dictionary: TermDictionary) -> CIND:
    """Clone a CIND with string-valued captures."""
    return CIND(
        decode_capture(cind.dependent, dictionary),
        decode_capture(cind.referenced, dictionary),
    )
