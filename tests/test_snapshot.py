"""Tests for the mmap snapshot format (repro.storage.snapshot)."""

import json
import os
import pickle

import pytest

from repro.cli import main
from repro.core.discovery import RDFind, RDFindConfig
from repro.core.serialization import result_to_dict
from repro.dataflow.checkpoint import dataset_digest
from repro.rdf.ntriples import write_ntriples_file
from repro.storage.columnar import EncodedDataset
from repro.storage.dictionary import INT32_MAX, TermDictionary
from repro.storage.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotError,
    SnapshotFormatError,
    SnapshotTermDictionary,
    load_snapshot,
    load_with_snapshot_cache,
    save_snapshot,
    snapshot_cache_fields,
    snapshot_info,
)
from tests.conftest import random_rdf
from tests.test_storage import UNICODE_TERMS


def roundtrip(tmp_path, encoded, **save_kwargs):
    path = str(tmp_path / "data.snap")
    header = save_snapshot(encoded, path, **save_kwargs)
    return path, header, load_snapshot(path)


class TestRoundTrip:
    def test_columns_terms_and_name_identical(self, tmp_path):
        encoded = random_rdf(41, n_triples=150).encode()
        encoded.name = "roundtrip"
        path, header, loaded = roundtrip(tmp_path, encoded)
        assert loaded.name == "roundtrip"
        assert list(loaded) == list(encoded)
        assert loaded.columns[0].typecode == encoded.columns[0].typecode
        assert list(loaded.dictionary.terms()) == list(encoded.dictionary.terms())
        assert header["triples"] == len(encoded)
        assert header["terms"] == len(encoded.dictionary)
        assert snapshot_info(path) == header

    def test_unicode_terms_roundtrip(self, tmp_path):
        encoded = EncodedDataset.from_terms(
            [(UNICODE_TERMS[i % 6] or "empty", "p", UNICODE_TERMS[(i + 1) % 6] or "empty")
             for i in range(12)]
        )
        _path, _header, loaded = roundtrip(tmp_path, encoded)
        assert list(loaded.dictionary.terms()) == list(encoded.dictionary.terms())
        assert loaded.dictionary.nbytes() == encoded.dictionary.nbytes()

    def test_empty_dataset_roundtrip(self, tmp_path):
        _path, _header, loaded = roundtrip(tmp_path, EncodedDataset())
        assert len(loaded) == 0
        assert len(loaded.dictionary) == 0

    def test_dataset_digest_matches_source(self, tmp_path):
        # checkpoint resume keys on this digest: snapshot loading must
        # reproduce the exact integer coding, not just the triples
        encoded = random_rdf(42, n_triples=90).encode()
        _path, _header, loaded = roundtrip(tmp_path, encoded)
        assert dataset_digest(loaded) == dataset_digest(encoded)

    def test_remap_preserves_triples_not_ids(self, tmp_path):
        encoded = random_rdf(43, n_triples=120).encode()
        path = str(tmp_path / "remap.snap")
        header = save_snapshot(encoded, path, remap=True)
        assert header["remapped"] is True
        loaded = load_snapshot(path)
        assert sorted(map(tuple, loaded.decode())) == sorted(
            map(tuple, encoded.decode())
        )

    def test_widen_boundary_at_int32_max(self, tmp_path):
        # ids beyond INT32_MAX force 'q' columns; the snapshot must
        # carry the typecode and round-trip the wide ids exactly
        encoded = EncodedDataset(dictionary=TermDictionary())
        encoded.append_ids(INT32_MAX, 0, 1)
        encoded.append_ids(INT32_MAX + 1, 2, 3)
        assert encoded.columns[0].typecode == "q"
        path = str(tmp_path / "wide.snap")
        header = save_snapshot(encoded, path)
        assert header["typecode"] == "q"
        loaded = load_snapshot(path)
        assert loaded.columns[0].typecode == "q"
        assert list(loaded) == list(encoded)


class TestLazyDictionary:
    def test_decode_is_lazy_then_cached(self, tmp_path):
        encoded = random_rdf(44, n_triples=60).encode()
        _path, _header, loaded = roundtrip(tmp_path, encoded)
        dictionary = loaded.dictionary
        assert isinstance(dictionary, SnapshotTermDictionary)
        assert dictionary._id_to_term.count(None) == len(dictionary)
        term = dictionary.decode(3)
        assert term == encoded.dictionary.decode(3)
        assert dictionary._id_to_term[3] == term
        # untouched entries stay unmaterialized
        assert None in dictionary._id_to_term

    def test_string_lookups_build_the_index(self, tmp_path):
        encoded = random_rdf(45, n_triples=60).encode()
        _path, _header, loaded = roundtrip(tmp_path, encoded)
        dictionary = loaded.dictionary
        some_term = encoded.dictionary.decode(0)
        assert dictionary.lookup(some_term) == 0
        assert some_term in dictionary
        assert dictionary.encode_existing(some_term) == 0
        assert dictionary.lookup("never-seen") is None

    def test_encode_new_term_after_load(self, tmp_path):
        encoded = random_rdf(46, n_triples=30).encode()
        _path, _header, loaded = roundtrip(tmp_path, encoded)
        new_id = loaded.dictionary.encode("fresh-term")
        assert new_id == len(encoded.dictionary)
        assert loaded.dictionary.decode(new_id) == "fresh-term"
        assert len(loaded.dictionary) == len(encoded.dictionary) + 1

    def test_pickles_to_plain_dictionary(self, tmp_path):
        # the process executor pickles operator state; mmap views can't
        # cross that boundary, so the lazy dictionary ships eagerly
        encoded = random_rdf(47, n_triples=40).encode()
        _path, _header, loaded = roundtrip(tmp_path, encoded)
        clone = pickle.loads(pickle.dumps(loaded.dictionary))
        assert type(clone) is TermDictionary
        assert list(clone.terms()) == list(encoded.dictionary.terms())

    def test_materialize(self, tmp_path):
        encoded = random_rdf(48, n_triples=40).encode()
        _path, _header, loaded = roundtrip(tmp_path, encoded)
        eager = loaded.dictionary.materialize()
        assert type(eager) is TermDictionary
        assert list(eager.terms()) == list(encoded.dictionary.terms())


class TestCorruptionRecovery:
    def test_flipped_byte_raises_snapshot_error(self, tmp_path):
        encoded = random_rdf(51, n_triples=80).encode()
        path, _header, _loaded = roundtrip(tmp_path, encoded)
        raw = bytearray(open(path, "rb").read())
        for position in (10, len(raw) // 2, len(raw) - 3):
            corrupt = bytes(raw[:position]) + bytes([raw[position] ^ 0xFF]) + bytes(
                raw[position + 1 :]
            )
            bad = str(tmp_path / "bad.snap")
            with open(bad, "wb") as stream:
                stream.write(corrupt)
            with pytest.raises(SnapshotError):
                load_snapshot(bad)

    def test_truncation_raises_snapshot_error(self, tmp_path):
        encoded = random_rdf(52, n_triples=80).encode()
        path, _header, _loaded = roundtrip(tmp_path, encoded)
        raw = open(path, "rb").read()
        for keep in (4, len(raw) // 3, len(raw) - 1):
            bad = str(tmp_path / "trunc.snap")
            with open(bad, "wb") as stream:
                stream.write(raw[:keep])
            with pytest.raises(SnapshotError):
                load_snapshot(bad)

    def test_alien_file_raises_format_error(self, tmp_path):
        bad = str(tmp_path / "alien.snap")
        with open(bad, "wb") as stream:
            stream.write(b"this is not a snapshot at all, not even close")
        with pytest.raises(SnapshotFormatError):
            load_snapshot(bad)
        with pytest.raises(SnapshotError):
            load_snapshot(str(tmp_path / "missing.snap"))

    def test_empty_file_raises(self, tmp_path):
        bad = str(tmp_path / "empty.snap")
        open(bad, "wb").close()
        with pytest.raises(SnapshotError):
            load_snapshot(bad)

    def test_unsupported_version_raises(self, tmp_path):
        encoded = random_rdf(53, n_triples=10).encode()
        path, _header, _loaded = roundtrip(tmp_path, encoded)
        raw = bytearray(open(path, "rb").read())
        # rewrite the header frame with a future version, CRC intact
        import struct
        import zlib

        from repro.core.framing import FRAME_HEADER

        offset = len(SNAPSHOT_MAGIC)
        length, _crc = FRAME_HEADER.unpack_from(raw, offset)
        start = offset + FRAME_HEADER.size
        header = json.loads(raw[start : start + length].decode("utf-8"))
        header["version"] = 99
        payload = json.dumps(header, sort_keys=True).encode("utf-8")
        rebuilt = (
            bytes(raw[:offset])
            + FRAME_HEADER.pack(len(payload), zlib.crc32(payload))
            + payload
            + bytes(raw[start + length :])
        )
        bad = str(tmp_path / "future.snap")
        with open(bad, "wb") as stream:
            stream.write(rebuilt)
        with pytest.raises(SnapshotFormatError, match="version"):
            load_snapshot(bad)

    def test_cache_warns_and_reparses_on_damage(self, tmp_path, capsys):
        # "never silent wrong answers": a damaged cache entry is
        # reported, discarded, and replaced by a fresh parse
        encoded = random_rdf(54, n_triples=60).encode()
        cache_dir = str(tmp_path / "snapshots")
        fields = {"spec": "unit-test", "scale": 1.0}
        loader_calls = []

        def loader():
            loader_calls.append(1)
            return random_rdf(54, n_triples=60).encode()

        first, hit = load_with_snapshot_cache(cache_dir, fields, loader)
        assert not hit and loader_calls == [1]
        again, hit = load_with_snapshot_cache(cache_dir, fields, loader)
        assert hit and loader_calls == [1]
        assert list(again) == list(encoded)
        # now damage the cached snapshot
        (cached,) = os.listdir(cache_dir)
        cached_path = os.path.join(cache_dir, cached)
        raw = bytearray(open(cached_path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        with open(cached_path, "wb") as stream:
            stream.write(bytes(raw))
        recovered, hit = load_with_snapshot_cache(cache_dir, fields, loader)
        assert not hit and loader_calls == [1, 1]
        assert list(recovered) == list(encoded)
        assert "re-parsing" in capsys.readouterr().err
        # ...and the cache was repopulated with a good snapshot
        final, hit = load_with_snapshot_cache(cache_dir, fields, loader)
        assert hit and loader_calls == [1, 1]
        assert list(final) == list(encoded)

    def test_cache_fields_track_file_identity(self, tmp_path):
        source = str(tmp_path / "input.nt")
        write_ntriples_file(random_rdf(55, n_triples=20), source)
        before = snapshot_cache_fields(source)
        os.utime(source, ns=(1, 1))
        after = snapshot_cache_fields(source)
        assert before != after
        # registry refs are deterministic: no stat fields
        assert "st_mtime_ns" not in snapshot_cache_fields("dataset:Countries")


def discovery_json(dataset, executor):
    config = RDFindConfig(
        support_threshold=5, parallelism=2, executor=executor
    )
    result = RDFind(config).discover(dataset)
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestDiscoveryByteIdentity:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_snapshot_loaded_discovery_is_byte_identical(self, tmp_path, executor):
        dataset = random_rdf(61, n_triples=120)
        encoded = dataset.encode()
        reference = discovery_json(encoded, executor)
        path = str(tmp_path / "d.snap")
        save_snapshot(encoded, path)
        loaded = load_snapshot(path)
        assert discovery_json(loaded, executor) == reference


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestCliAndWorker:
    def test_snapshot_save_load_info(self, tmp_path, capsys):
        snap = str(tmp_path / "c.snap")
        out = run_cli(
            capsys, "snapshot", "save", "dataset:Countries",
            "--scale", "0.1", "-o", snap,
        )
        assert "wrote" in out and "triples" in out
        out = run_cli(capsys, "snapshot", "info", snap)
        assert "version" in out and "triples" in out
        out = run_cli(capsys, "snapshot", "load", snap)
        assert "loaded" in out and "ms" in out

    def test_discover_accepts_snap_input(self, tmp_path, capsys):
        snap = str(tmp_path / "c.snap")
        run_cli(
            capsys, "snapshot", "save", "dataset:Countries",
            "--scale", "0.1", "-o", snap,
        )
        source_json = str(tmp_path / "source.json")
        snap_json = str(tmp_path / "snap.json")
        run_cli(
            capsys, "discover", "dataset:Countries", "--scale", "0.1",
            "-s", "5", "-o", source_json,
        )
        run_cli(capsys, "discover", snap, "-s", "5", "-o", snap_json)
        assert open(source_json, "rb").read() == open(snap_json, "rb").read()

    def test_worker_load_dataset_uses_snapshot_cache(self, tmp_path):
        from repro.server.store import JobRequest, JobStore
        from repro.server.worker import _load_dataset

        store = JobStore(str(tmp_path / "jobs"))
        request = JobRequest(
            dataset="dataset:Countries", scale=0.1, support_threshold=5
        )
        first = _load_dataset(request, snapshot_dir=store.snapshot_dir())
        assert os.listdir(store.snapshot_dir())  # cache populated
        second = _load_dataset(request, snapshot_dir=store.snapshot_dir())
        assert isinstance(second.dictionary, SnapshotTermDictionary)
        assert list(first) == list(second)
        assert dataset_digest(first) == dataset_digest(second)
