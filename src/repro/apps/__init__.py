"""Use-case applications built on discovered CINDs (paper Appendix B).

* :mod:`repro.apps.ontology` — ontology reverse engineering: class and
  predicate hierarchies, predicate domains and ranges.
* :mod:`repro.apps.knowledge` — knowledge discovery: instance-level facts
  (value co-occurrence rules, equivalences) mined from CINDs.
* :mod:`repro.apps.advisor` — support-threshold recommendation (the
  paper's first future-work item, Section 10).
* :mod:`repro.apps.ranking` — meaningful-vs-spurious CIND scoring under a
  local-closed-world reading (the paper's second future-work item).
* :mod:`repro.apps.profile_report` — everything above behind one call, in
  the spirit of the ProLOD++ profiling suite the paper relates to (§9).
* :mod:`repro.apps.materialize` — emit the mined schema hints as RDFS/OWL
  triples.
* :mod:`repro.apps.integration` — cross-dataset CINDs for data
  integration (join paths and schema correspondences between sources).
"""

from repro.apps.advisor import (
    ThresholdRecommendation,
    ThresholdReport,
    recommend_support_threshold,
)
from repro.apps.integration import (
    CrossCIND,
    IntegrationReport,
    discover_cross_cinds,
)
from repro.apps.knowledge import KnowledgeFact, discover_knowledge
from repro.apps.materialize import materialize_ontology, subclass_closure
from repro.apps.ontology import OntologyHint, reverse_engineer_ontology
from repro.apps.profile_report import ProfileReport, profile_dataset
from repro.apps.ranking import ScoredCIND, rank_cinds, spurious

__all__ = [
    "ThresholdRecommendation",
    "ThresholdReport",
    "recommend_support_threshold",
    "CrossCIND",
    "IntegrationReport",
    "discover_cross_cinds",
    "KnowledgeFact",
    "discover_knowledge",
    "materialize_ontology",
    "subclass_closure",
    "OntologyHint",
    "reverse_engineer_ontology",
    "ProfileReport",
    "profile_dataset",
    "ScoredCIND",
    "rank_cinds",
    "spurious",
]
