"""Fault-hardened SPARQL 1.1 protocol client (stdlib only).

The paper's data-integration story (Section 1: CINDs linking DrugBank to
Diseasome) assumes the triples are already local; this client is how
they get there from *live* endpoints — which time out, rate-limit, drop
connections, and return partial pages.  Every defence is deterministic
and offline-testable against :mod:`repro.federation.mock`:

* **per-request deadlines** — every HTTP call carries ``timeout``; a
  stalled endpoint costs one timeout, not a hung job;
* **typed error taxonomy** — failures classify into
  transient / permanent / malformed-response
  (:mod:`repro.federation.errors`); only the retryable kinds burn
  retry budget;
* **bounded retries with seeded jitter** — the shared
  :class:`repro.core.retry.RetryPolicy` (same machinery as the dataflow
  engine's task retries), keyed on the endpoint URL so a fixed seed
  reproduces the exact delay sequence; ``Retry-After`` hints from
  429/503 responses are honored (bounded by the policy cap);
* **GET→POST fallback** — queries are sent as protocol GETs until the
  encoded URL outgrows ``get_url_limit`` (or the server answers 414),
  then as form-encoded POSTs, per SPARQL 1.1 Protocol §2.1;
* **a per-endpoint circuit breaker** — repeated transients trip it so a
  dead source fails fast instead of stalling a multi-endpoint job
  (:mod:`repro.federation.breaker`).

The client speaks the standard JSON results format
(``application/sparql-results+json``); bindings convert to this repo's
stored term strings via :mod:`repro.rdf.ntriples` part helpers, so a
fetched triple is byte-identical to the same triple parsed locally.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Callable, Dict, List, Optional

from repro.core.retry import RetryPolicy
from repro.federation.breaker import CircuitBreaker
from repro.federation.errors import (
    EndpointError,
    MalformedResponseError,
    PermanentEndpointError,
    TransientEndpointError,
)
from repro.rdf.ntriples import make_literal

__all__ = ["DEFAULT_RETRY_POLICY", "SparqlEndpointClient", "binding_to_term"]

#: HTTP statuses that indicate a recoverable server/path condition.
_TRANSIENT_STATUSES = frozenset({408, 429, 502, 503, 504})

#: The client's default schedule: 4 retries, 0.2s → 1.6s with ±50%
#: seeded jitter.  Deterministic for a fixed seed (see repro.core.retry).
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_retries=4,
    backoff_seconds=0.2,
    backoff_factor=2.0,
    max_backoff_seconds=10.0,
    jitter=0.5,
    seed=0,
)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """``Retry-After`` as seconds; ``None`` for absent/unparseable.

    Only the delta-seconds form is supported — the HTTP-date form would
    need wall-clock comparison, and every server this client is built
    for (including our own job server) sends seconds.
    """
    if value is None:
        return None
    try:
        return max(0.0, float(value.strip()))
    except (ValueError, AttributeError):
        return None


def binding_to_term(binding: Dict[str, Any]) -> str:
    """One SPARQL-JSON RDF term as this repo's stored term string.

    ``uri`` values are stored bare, ``bnode`` labels get their ``_:``
    prefix back, and ``literal``/``typed-literal`` values re-enter the
    canonical stored form via :func:`repro.rdf.ntriples.make_literal` —
    the exact bytes the N-Triples parser would have produced locally.
    """
    try:
        kind = binding["type"]
        value = binding["value"]
    except (TypeError, KeyError) as error:
        raise MalformedResponseError(f"binding missing {error}: {binding!r}")
    if not isinstance(value, str):
        raise MalformedResponseError(f"binding value is not a string: {binding!r}")
    if kind == "uri":
        return value
    if kind == "bnode":
        return f"_:{value}"
    if kind in ("literal", "typed-literal"):
        language = binding.get("xml:lang") or None
        datatype = binding.get("datatype") or None
        if language is not None and datatype is not None:
            raise MalformedResponseError(
                f"binding carries both language and datatype: {binding!r}"
            )
        return make_literal(value, language=language, datatype=datatype)
    raise MalformedResponseError(f"unknown binding type {kind!r}: {binding!r}")


class SparqlEndpointClient:
    """One endpoint's resilient query channel.

    Parameters
    ----------
    endpoint_url:
        The SPARQL protocol endpoint (``http://host:port/sparql``).
    timeout:
        Per-request deadline in seconds (connect + read).
    retry:
        The shared backoff policy; defaults to :data:`DEFAULT_RETRY_POLICY`.
    breaker:
        The endpoint's circuit breaker; a default 5-failure/30 s one is
        built when not supplied.  Pass an explicit breaker to share its
        state across clients or to drive its clock from a test.
    get_url_limit:
        Encoded-URL length above which queries go as POSTs (servers and
        proxies commonly cap request lines around 2-8 KiB).
    sleeper:
        Injected ``time.sleep`` for the backoff waits (tests pass a
        recorder, so fault torture runs instantly).
    opener:
        Injected ``urllib.request.urlopen``-compatible callable (tests
        can fail requests without a socket).
    """

    def __init__(
        self,
        endpoint_url: str,
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        get_url_limit: int = 2048,
        sleeper: Callable[[float], None] = time.sleep,
        opener: Optional[Callable[..., Any]] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if get_url_limit < 1:
            raise ValueError(f"get_url_limit must be >= 1, got {get_url_limit}")
        self.endpoint_url = endpoint_url.rstrip()
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(endpoint=self.endpoint_url)
        )
        self.get_url_limit = get_url_limit
        self._sleep = sleeper
        self._open = opener if opener is not None else urllib.request.urlopen
        # -- observability (read by reports/benchmarks) ----------------
        self.requests_sent = 0
        self.retries = 0
        self.get_to_post_fallbacks = 0
        self.backoff_seconds_slept = 0.0

    # -- public API ----------------------------------------------------

    def select(self, query: str) -> List[Dict[str, str]]:
        """Run a SELECT; returns the rows as ``{var: stored-term}`` dicts.

        The full resilience stack applies: circuit-breaker gate, typed
        classification, bounded jittered retries honoring ``Retry-After``,
        GET→POST fallback.  Raises the *last* typed error once the retry
        budget is exhausted (or immediately for permanent errors).
        """
        retry_number = 0
        while True:
            self.breaker.check()
            try:
                rows = self._select_once(query)
            except EndpointError as error:
                if error.retryable:
                    self.breaker.record_failure()
                    retry_number += 1
                    if retry_number <= self.retry.max_retries:
                        self.retries += 1
                        hint = getattr(error, "retry_after", None)
                        delay = self.retry.delay_with_hint(
                            retry_number, key=self.endpoint_url, hint=hint
                        )
                        self.backoff_seconds_slept += delay
                        self._sleep(delay)
                        continue
                raise
            else:
                self.breaker.record_success()
                return rows

    # -- one attempt ---------------------------------------------------

    def _select_once(self, query: str) -> List[Dict[str, str]]:
        body = self._request_body(self._build_request(query))
        payload = self._decode_results(body)
        return self._rows_of(payload)

    def _build_request(self, query: str) -> urllib.request.Request:
        """A protocol GET, or a form POST when the URL would be too long."""
        encoded = urllib.parse.urlencode({"query": query})
        get_url = f"{self.endpoint_url}?{encoded}"
        headers = {"Accept": "application/sparql-results+json"}
        if len(get_url) <= self.get_url_limit:
            return urllib.request.Request(get_url, headers=headers, method="GET")
        self.get_to_post_fallbacks += 1
        headers["Content-Type"] = "application/x-www-form-urlencoded"
        return urllib.request.Request(
            self.endpoint_url,
            data=encoded.encode("ascii"),
            headers=headers,
            method="POST",
        )

    def _request_body(self, request: urllib.request.Request) -> bytes:
        """Send one request; classify every failure mode into the taxonomy."""
        self.requests_sent += 1
        try:
            with self._open(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            status = error.code
            detail = f"{request.get_method()} {self.endpoint_url} -> HTTP {status}"
            if status == 414 and request.get_method() == "GET":
                # The server caps URLs tighter than get_url_limit: fall
                # back to POST immediately (no retry budget consumed).
                self.get_to_post_fallbacks += 1
                encoded = urllib.parse.urlsplit(request.full_url).query
                return self._request_body(
                    urllib.request.Request(
                        self.endpoint_url,
                        data=encoded.encode("ascii"),
                        headers={
                            "Accept": "application/sparql-results+json",
                            "Content-Type": "application/x-www-form-urlencoded",
                        },
                        method="POST",
                    )
                )
            if status in _TRANSIENT_STATUSES:
                raise TransientEndpointError(
                    detail,
                    endpoint=self.endpoint_url,
                    retry_after=_parse_retry_after(
                        error.headers.get("Retry-After")
                    ),
                    status=status,
                ) from None
            raise PermanentEndpointError(
                f"{detail}: {error.reason}",
                endpoint=self.endpoint_url,
                status=status,
            ) from None
        except (socket.timeout, TimeoutError) as error:
            raise TransientEndpointError(
                f"request to {self.endpoint_url} timed out after "
                f"{self.timeout}s: {error}",
                endpoint=self.endpoint_url,
            ) from None
        except http.client.IncompleteRead as error:
            raise MalformedResponseError(
                f"{self.endpoint_url} sent a truncated body "
                f"({len(error.partial)} bytes received): {error}",
                endpoint=self.endpoint_url,
            ) from None
        except urllib.error.URLError as error:
            reason = getattr(error, "reason", error)
            if isinstance(reason, (socket.timeout, TimeoutError)):
                raise TransientEndpointError(
                    f"request to {self.endpoint_url} timed out after "
                    f"{self.timeout}s: {reason}",
                    endpoint=self.endpoint_url,
                ) from None
            raise TransientEndpointError(
                f"cannot reach {self.endpoint_url}: {reason}",
                endpoint=self.endpoint_url,
            ) from None
        except (http.client.HTTPException, ConnectionError, OSError) as error:
            raise TransientEndpointError(
                f"connection to {self.endpoint_url} failed: "
                f"{type(error).__name__}: {error}",
                endpoint=self.endpoint_url,
            ) from None

    def _decode_results(self, body: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise MalformedResponseError(
                f"{self.endpoint_url} returned unparseable results "
                f"({len(body)} bytes): {error}",
                endpoint=self.endpoint_url,
            ) from None
        if not isinstance(payload, dict) or "results" not in payload:
            raise MalformedResponseError(
                f"{self.endpoint_url} returned JSON that is not a SPARQL "
                f"result document",
                endpoint=self.endpoint_url,
            )
        return payload

    def _rows_of(self, payload: Dict[str, Any]) -> List[Dict[str, str]]:
        results = payload.get("results")
        bindings = results.get("bindings") if isinstance(results, dict) else None
        if not isinstance(bindings, list):
            raise MalformedResponseError(
                f"{self.endpoint_url} result document has no bindings list",
                endpoint=self.endpoint_url,
            )
        rows: List[Dict[str, str]] = []
        for binding in bindings:
            if not isinstance(binding, dict):
                raise MalformedResponseError(
                    f"{self.endpoint_url} sent a non-object binding: "
                    f"{binding!r}",
                    endpoint=self.endpoint_url,
                )
            rows.append(
                {var: binding_to_term(term) for var, term in binding.items()}
            )
        return rows

    # -- convenience ---------------------------------------------------

    def count_triples(self) -> int:
        """Total triples at the endpoint (drives pagination/completeness)."""
        rows = self.select(
            "SELECT (COUNT(*) AS ?count) WHERE { ?s ?p ?o }"
        )
        if len(rows) != 1 or "count" not in rows[0]:
            raise MalformedResponseError(
                f"{self.endpoint_url} returned a malformed COUNT result",
                endpoint=self.endpoint_url,
            )
        from repro.rdf.ntriples import is_literal, literal_parts

        term = rows[0]["count"]
        raw = literal_parts(term)[0] if is_literal(term) else term
        try:
            return int(raw)
        except ValueError:
            raise MalformedResponseError(
                f"{self.endpoint_url} COUNT value is not an integer: {term!r}",
                endpoint=self.endpoint_url,
            ) from None

    def __repr__(self) -> str:
        return (
            f"<SparqlEndpointClient {self.endpoint_url}: "
            f"{self.requests_sent} requests, {self.retries} retries, "
            f"breaker {self.breaker.state}>"
        )
