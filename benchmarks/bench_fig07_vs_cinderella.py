"""Figure 7: RDFind vs (optimized) Cinderella on MySQL and PostgreSQL.

The paper compares single-node RDFind against four Cinderella setups on
Countries and Diseasome for h in {5, 10, 50, 100, 500, 1000}, reporting
(a) that standard Cinderella fails every Diseasome run and the optimized
variant fails at h in {5, 10} because of memory, and (b) speedups of up
to 419x for the successful runs.

The memory budget below is this reproduction's "4 GB node": it is
calibrated between the deterministic peak footprints of the variants so
the *failure pattern* reproduces exactly (std > budget always on
Diseasome; opt > budget only at h<=10; everything fits on Countries).
Runtime magnitudes are compressed relative to the paper because both
systems run in-process here (see EXPERIMENTS.md).
"""

import time

import pytest

from repro.baselines import Cinderella, CinderellaConfig
from repro.dataflow.engine import SimulatedOutOfMemory

#: Countries sweeps the paper's full range; Diseasome starts at 10 — at
#: h=5 the synthetic Diseasome's per-entity fan-out makes every
#: per-disease subject condition frequent and the pertinent set explodes
#: to 18.6M CINDs (measured), which no single process can hold next to
#: the rest of the suite.  The paper's qualitative claims are unaffected.
H_VALUES_BY_DATASET = {
    "Countries": (5, 10, 50, 100, 500, 1000),
    "Diseasome": (10, 50, 100, 500, 1000),
}

#: Cells (materialized rows + condition-state entries) a 4 GB node holds.
MEMORY_BUDGET = 28_300

VARIANTS = (
    ("Cin/Pos", dict(backend="postgresql", optimized=False)),
    ("Cin*/Pos", dict(backend="postgresql", optimized=True)),
    ("Cin/My", dict(backend="mysql", optimized=False)),
    ("Cin*/My", dict(backend="mysql", optimized=True)),
)


def _run_all(dataset_name, cache):
    rows = []
    dataset = cache.dataset(dataset_name).decode()
    for h in H_VALUES_BY_DATASET[dataset_name]:
        _result, rdfind_seconds = cache.run(dataset_name, h)
        cells = {"RDFind": f"{rdfind_seconds:7.2f}s"}
        for label, options in VARIANTS:
            config = CinderellaConfig(h=h, memory_budget=MEMORY_BUDGET, **options)
            started = time.perf_counter()
            try:
                Cinderella(config).discover(dataset)
                cells[label] = f"{time.perf_counter() - started:7.2f}s"
            except SimulatedOutOfMemory:
                cells[label] = f">{time.perf_counter() - started:6.2f}s!"
        rows.append((h, cells))
    return rows


@pytest.mark.parametrize("dataset_name", ["Countries", "Diseasome"])
def test_fig07_rdfind_vs_cinderella(dataset_name, benchmark, report, cache):
    def body():
        return _run_all(dataset_name, cache)

    rows = benchmark.pedantic(body, rounds=1, iterations=1)

    section = report.section(
        f"Figure 7 — RDFind vs Cinderella, {dataset_name} "
        f"(budget={MEMORY_BUDGET:,} cells; '!' = failed, time is a lower bound)"
    )
    header = f"{'h':>6} | {'RDFind':>9}" + "".join(
        f" | {label:>9}" for label, _ in VARIANTS
    )
    section.row(header)
    failures = {label: 0 for label, _ in VARIANTS}
    for h, cells in rows:
        section.row(
            f"{h:>6} | {cells['RDFind']:>9}"
            + "".join(f" | {cells[label]:>9}" for label, _ in VARIANTS)
        )
        for label, _ in VARIANTS:
            if cells[label].endswith("!"):
                failures[label] += 1

    h_values = H_VALUES_BY_DATASET[dataset_name]
    if dataset_name == "Diseasome":
        # The paper's failure pattern: standard Cinderella fails every
        # Diseasome run; the optimized variant fails at the low end
        # (paper: h=5 and h=10; here h=10, the sweep's low end).
        assert failures["Cin/Pos"] == len(h_values)
        assert failures["Cin/My"] == len(h_values)
        assert failures["Cin*/Pos"] == 1
        assert failures["Cin*/My"] == 1
    else:
        assert all(count == 0 for count in failures.values())
