"""Compressed resident forms of the columnar storage layer.

This is the "storage v2" layer from the compressed vertical-partitioning
line of work cited in PAPERS.md ("Compressed Vertical Partitioning for
Full-In-Memory RDF Management", "Compressed k²-Triples"): the id columns
of :class:`~repro.storage.columnar.EncodedDataset` and the posting lists
of :class:`~repro.storage.vertical.VerticalPartitionStore` keep their
exact logical content but drop to a fraction of the bytes.

Three building blocks:

* **Delta + zigzag + varint posting lists** (:class:`FrozenPostingList`)
  — a posting list is stored as LEB128 varints of zigzag-coded deltas
  between consecutive entries, in the original insertion order.  RDF
  posting lists are runs of near-consecutive row offsets within one
  predicate partition, so most deltas fit one byte (vs the 8-byte ``'q'``
  slots of the mutable form).
* **Bit-packed columns** (:class:`BitPackedColumn`) — a fixed-width
  packing of a non-negative id column at exactly the bits the largest
  value needs, chunked so random access stays O(1).
* **Frequency-ordered term codes** (:func:`frequency_order`,
  :func:`remap_by_frequency`, :class:`CompressedDataset`) — term ids are
  re-ranked by descending occurrence count so the hottest terms (RDF's
  few predicates, popular objects) get the shortest codes; the predicate
  column of a typical dataset then packs at well under a byte per entry.

:class:`CompressedDataset` combines the latter two into a compressed
twin of an ``EncodedDataset`` that iterates the *original* term ids (the
permutation is inverted on the way out), so anything downstream sees the
same triples while the resident set shrinks by the ~2-3x measured in
``benchmarks/bench_storage_encoding.py``.

Everything here is content-preserving: compression may never change a
discovered byte, only where the bytes live.
"""

from __future__ import annotations

from array import array
from collections import Counter
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.storage.columnar import EncodedDataset, packed_column_nbytes
from repro.storage.dictionary import EncodedTriple, TermDictionary

__all__ = [
    "BitPackedColumn",
    "CompressedDataset",
    "FrozenPostingList",
    "frequency_order",
    "frequency_rank",
    "remap_by_frequency",
]


# ----------------------------------------------------------------------
# varint / zigzag codecs
# ----------------------------------------------------------------------


def _zigzag(value: int) -> int:
    """Map a signed int to an unsigned one with small-magnitude bias."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    """Inverse of :func:`_zigzag`."""
    return (value >> 1) ^ -(value & 1)


def _write_uvarint(out: bytearray, value: int) -> None:
    """Append one LEB128 varint (7 payload bits per byte)."""
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data, pos: int) -> Tuple[int, int]:
    """Decode one LEB128 varint at ``pos``; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7


class FrozenPostingList:
    """An immutable posting list as zigzag-delta varints.

    Entry order is exactly the mutable ``array('q')`` order it was frozen
    from, so every scan that iterated the mutable list yields the same
    sequence — compression is invisible to
    :meth:`~repro.storage.vertical.VerticalPartitionStore.match`.
    """

    __slots__ = ("_data", "_count")

    def __init__(self, data: bytes, count: int) -> None:
        self._data = data
        self._count = count

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "FrozenPostingList":
        """Freeze a sequence of (possibly unordered) 64-bit ints."""
        out = bytearray()
        previous = 0
        count = 0
        for value in values:
            _write_uvarint(out, _zigzag(value - previous))
            previous = value
            count += 1
        return cls(bytes(out), count)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[int]:
        data = self._data
        pos = 0
        value = 0
        for _ in range(self._count):
            delta, pos = _read_uvarint(data, pos)
            value += _unzigzag(delta)
            yield value

    def tolist(self) -> List[int]:
        return list(self)

    def nbytes(self) -> int:
        """Resident payload bytes of the packed deltas."""
        return len(self._data)

    def __repr__(self) -> str:
        return f"<FrozenPostingList: {self._count} entries, {len(self._data)} bytes>"


# ----------------------------------------------------------------------
# bit-packed columns
# ----------------------------------------------------------------------

#: Values per packing chunk: large enough to amortize the Python-level
#: big-int shifting, small enough that decoding one chunk for a point
#: read stays cheap.
_CHUNK = 1024


class BitPackedColumn:
    """A read-only id column packed at a fixed bit width.

    Values are packed big-endian into per-chunk big integers of
    :data:`_CHUNK` values each, every chunk padded up to a byte boundary,
    so ``column[i]`` touches only the few bytes its value spans.  Widths
    are whatever the column's maximum needs (not rounded to a power of
    two) — the whole point is the sub-byte predicate columns that
    frequency-ordered codes produce.
    """

    __slots__ = ("_data", "_count", "_width", "_stride")

    def __init__(self, data: bytes, count: int, width: int) -> None:
        self._data = data
        self._count = count
        self._width = width
        self._stride = (_CHUNK * width + 7) // 8

    @classmethod
    def pack(cls, values: Sequence[int], width: int = None) -> "BitPackedColumn":
        """Pack a sequence of non-negative ints at ``width`` bits each."""
        count = len(values)
        if count:
            low = min(values)
            if low < 0:
                raise ValueError(f"cannot bit-pack negative value {low}")
            needed = max(1, max(values).bit_length())
        else:
            needed = 1
        if width is None:
            width = needed
        elif needed > width:
            raise ValueError(
                f"values need {needed} bits, packing width is {width}"
            )
        out = bytearray()
        for start in range(0, count, _CHUNK):
            chunk = values[start : start + _CHUNK]
            acc = 0
            for value in chunk:
                acc = (acc << width) | value
            out += acc.to_bytes((len(chunk) * width + 7) // 8, "big")
        return cls(bytes(out), count, width)

    def __len__(self) -> int:
        return self._count

    @property
    def width(self) -> int:
        """Bits per value."""
        return self._width

    def _chunk_values(self, chunk_index: int) -> int:
        base = chunk_index * _CHUNK
        return min(_CHUNK, self._count - base)

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError("BitPackedColumn index out of range")
        chunk_index, offset = divmod(index, _CHUNK)
        width = self._width
        values = self._chunk_values(chunk_index)
        chunk_bytes = (values * width + 7) // 8
        pad = chunk_bytes * 8 - values * width
        bit = pad + offset * width
        first, last = bit // 8, (bit + width - 1) // 8
        base = chunk_index * self._stride
        window = int.from_bytes(self._data[base + first : base + last + 1], "big")
        shift = (last + 1) * 8 - (bit + width)
        return (window >> shift) & ((1 << width) - 1)

    def __iter__(self) -> Iterator[int]:
        width = self._width
        mask = (1 << width) - 1
        data = self._data
        stride = self._stride
        chunks = (self._count + _CHUNK - 1) // _CHUNK
        for chunk_index in range(chunks):
            values = self._chunk_values(chunk_index)
            base = chunk_index * stride
            acc = int.from_bytes(
                data[base : base + (values * width + 7) // 8], "big"
            )
            decoded = [0] * values
            for offset in range(values - 1, -1, -1):
                decoded[offset] = acc & mask
                acc >>= width
            yield from decoded

    def to_array(self, typecode: str = "q") -> array:
        """Unpack back to a mutable ``array`` column."""
        return array(typecode, self)

    def nbytes(self) -> int:
        """Resident payload bytes of the packed buffer."""
        return len(self._data)

    def __repr__(self) -> str:
        return (
            f"<BitPackedColumn: {self._count} values x {self._width} bits, "
            f"{len(self._data)} bytes>"
        )


# ----------------------------------------------------------------------
# frequency-ordered term codes
# ----------------------------------------------------------------------


def frequency_order(encoded: EncodedDataset) -> List[int]:
    """Term ids ordered by descending occurrence count (ties: old id).

    The returned list maps *new code -> old id*; every id the dictionary
    has assigned appears exactly once, including ids that no longer occur
    in any column (they sink to the tail).
    """
    counts = Counter()
    for column in encoded.columns:
        counts.update(column)
    return sorted(
        range(len(encoded.dictionary)),
        key=lambda term_id: (-counts[term_id], term_id),
    )


def frequency_rank(order: Sequence[int]) -> array:
    """Invert a :func:`frequency_order` permutation to *old id -> new code*."""
    rank = array("q", bytes(8 * len(order)))
    for code, term_id in enumerate(order):
        rank[term_id] = code
    return rank


def remap_by_frequency(encoded: EncodedDataset) -> EncodedDataset:
    """A new dataset whose ids are frequency-ordered codes.

    The dictionary's terms are re-interned in rank order (hot terms get
    ids 0, 1, ...), and every column value is rewritten through the same
    permutation, so the *decoded string triples are identical* — only the
    integer coding changes.  Used by snapshot saving (``--remap``) and by
    :class:`CompressedDataset`, which additionally inverts the map on
    iteration.
    """
    order = frequency_order(encoded)
    rank = frequency_rank(order)
    decode = encoded.dictionary.decode
    dictionary = TermDictionary()
    for term_id in order:
        dictionary.encode(decode(term_id))
    remapped = EncodedDataset(dictionary=dictionary, name=encoded.name)
    append = remapped.append_ids
    for s, p, o in zip(*encoded.columns):
        append(rank[s], rank[p], rank[o])
    return remapped


class CompressedDataset:
    """The compressed resident twin of an :class:`EncodedDataset`.

    Internally the three columns hold frequency-ordered codes at their
    per-column bit width; iteration inverts the permutation, so consumers
    see exactly the original ``EncodedTriple`` ids and the shared
    :class:`TermDictionary` keeps decoding them.  ``nbytes()`` prices the
    packed column payload — the number comparable to
    ``EncodedDataset.nbytes()`` (both exclude dictionary-side state, see
    :meth:`total_nbytes`).
    """

    __slots__ = ("_s", "_p", "_o", "_order", "dictionary", "name")

    def __init__(
        self,
        columns: Tuple[BitPackedColumn, BitPackedColumn, BitPackedColumn],
        order: array,
        dictionary: TermDictionary,
        name: str = "",
    ) -> None:
        self._s, self._p, self._o = columns
        self._order = order
        self.dictionary = dictionary
        self.name = name

    @classmethod
    def from_encoded(cls, encoded: EncodedDataset) -> "CompressedDataset":
        """Compress a columnar dataset (shares its dictionary)."""
        order = frequency_order(encoded)
        rank = frequency_rank(order)
        packed = []
        for column in encoded.columns:
            remapped = array("q", (rank[value] for value in column))
            packed.append(BitPackedColumn.pack(remapped))
        return cls(
            (packed[0], packed[1], packed[2]),
            array("q", order),
            encoded.dictionary,
            name=encoded.name,
        )

    def __len__(self) -> int:
        return len(self._s)

    def __iter__(self) -> Iterator[EncodedTriple]:
        order = self._order
        for s, p, o in zip(self._s, self._p, self._o):
            yield EncodedTriple(order[s], order[p], order[o])

    @property
    def columns(self) -> Tuple[BitPackedColumn, BitPackedColumn, BitPackedColumn]:
        """The packed (s, p, o) code columns (codes, not original ids)."""
        return self._s, self._p, self._o

    @property
    def budget_cells(self) -> int:
        """Record-budget price: 3 cells per triple, same as encoded."""
        return 3 * len(self._s)

    def nbytes(self) -> int:
        """Packed column payload — comparable to ``EncodedDataset.nbytes()``."""
        return self._s.nbytes() + self._p.nbytes() + self._o.nbytes()

    def total_nbytes(self) -> int:
        """Columns plus the code->id permutation (dictionary-sized)."""
        return self.nbytes() + self._order.itemsize * len(self._order)

    def to_encoded(self) -> EncodedDataset:
        """Decompress back to a plain :class:`EncodedDataset`."""
        restored = EncodedDataset(dictionary=self.dictionary, name=self.name)
        append = restored.append_ids
        for triple in self:
            append(*triple)
        return restored

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        widths = "/".join(str(c.width) for c in self.columns)
        return (
            f"<CompressedDataset{label}: {len(self)} triples, "
            f"{widths}-bit columns, {self.nbytes():,} bytes>"
        )
