"""Cross-dataset CINDs: the data-integration use case.

The paper motivates CINDs with data-integration systems (Section 1) and
names data integration first among the research directions CINDs enable
(Section 10).  The concrete primitive those systems need is the
*cross-dataset* variant of the inclusion: a capture over dataset A whose
interpretation is contained in a capture over dataset B,

    I(A, c) ⊆ I(B, c'),

which reveals join paths and schema correspondences *between* sources —
e.g. "the objects of A's ``capital`` predicate all occur as subjects of
B's ``rdf:type City`` statements" says A.capital joins against B's city
entities.

Discovery mirrors the single-dataset extraction: both datasets are
encoded against a shared term dictionary, each contributes capture groups
(value -> captures), and a dependent capture from A is included in every
B-capture that occurs in B's group of *every* A-value (Lemma 3, applied
across the pair).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple, Union

from repro.core.cind import Capture, decode_capture
from repro.core.conditions import ConditionScope, conditions_of_triple
from repro.rdf.model import Attr, Dataset, TermDictionary


class CrossCIND(NamedTuple):
    """``(A, dependent) ⊆ (B, referenced)`` with its support."""

    dependent: Capture
    referenced: Capture
    support: int


@dataclass
class IntegrationReport:
    """Cross-dataset inclusions between two sources."""

    left_name: str
    right_name: str
    cinds: List[CrossCIND]
    dictionary: TermDictionary

    def render(self, row: CrossCIND) -> str:
        """Human-readable form with dataset labels."""
        return (
            f"[{self.left_name}] {row.dependent.render(self.dictionary)} ⊆ "
            f"[{self.right_name}] {row.referenced.render(self.dictionary)}  "
            f"[support={row.support}]"
        )

    def join_paths(self) -> List[CrossCIND]:
        """The subset that suggests join paths: object-side dependents
        contained in subject-side references (A's values are B's
        entities)."""
        return [
            row
            for row in self.cinds
            if row.dependent.attr is Attr.O and row.referenced.attr is Attr.S
        ]

    def describe(self, limit: int = 15) -> str:
        """Multi-line report."""
        lines = [
            f"{len(self.cinds)} cross-dataset CINDs "
            f"({self.left_name} -> {self.right_name}); "
            f"{len(self.join_paths())} join-path candidates"
        ]
        lines.extend("  " + self.render(row) for row in self.cinds[:limit])
        return "\n".join(lines)


def _capture_interpretations(
    dataset: Dataset,
    dictionary: TermDictionary,
    h: int,
    scope: ConditionScope,
) -> Dict[Capture, Set[int]]:
    """Interpretations of all captures over h-frequent conditions."""
    encoded = [dictionary.encode_triple(t) for t in dataset]
    frequencies: Counter = Counter()
    for triple in encoded:
        frequencies.update(conditions_of_triple(triple, scope))
    frequent = {c for c, n in frequencies.items() if n >= h}

    values: Dict[Capture, Set[int]] = {}
    for triple in encoded:
        for condition in conditions_of_triple(triple, scope):
            if condition not in frequent:
                continue
            used = set(condition.attrs)
            for attr in scope.projection_attrs:
                if attr not in used:
                    values.setdefault(Capture(attr, condition), set()).add(
                        triple[int(attr)]
                    )
    return values


def discover_cross_cinds(
    left: Dataset,
    right: Dataset,
    h: int = 25,
    scope: Optional[ConditionScope] = None,
    dictionary: Optional[TermDictionary] = None,
) -> IntegrationReport:
    """All cross-dataset CINDs ``(left, c) ⊆ (right, c')`` with support >= h.

    Both datasets share one term dictionary, so the same URI or literal
    in either source denotes the same value.  Only captures over
    conditions frequent *within their own dataset* participate (the same
    Lemma 1 pruning as single-dataset discovery), and trivial
    self-comparisons do not arise because the two sides come from
    different sources.
    """
    if h < 1:
        raise ValueError(f"support threshold must be >= 1, got {h}")
    scope = scope if scope is not None else ConditionScope.full()
    dictionary = dictionary if dictionary is not None else TermDictionary()

    left_values = _capture_interpretations(left, dictionary, h, scope)
    right_values = _capture_interpretations(right, dictionary, h, scope)

    # Group the right side by value (Lemma 3's structure).
    right_groups: Dict[int, Set[Capture]] = {}
    for capture, values in right_values.items():
        for value in values:
            right_groups.setdefault(value, set()).add(capture)

    cinds: List[CrossCIND] = []
    for dependent, values in left_values.items():
        if len(values) < h:
            continue
        iterator = iter(values)
        first = right_groups.get(next(iterator))
        if not first:
            continue
        refs = set(first)
        for value in iterator:
            group = right_groups.get(value)
            if not group:
                refs.clear()
                break
            refs &= group
            if not refs:
                break
        for referenced in refs:
            cinds.append(CrossCIND(dependent, referenced, len(values)))

    cinds.sort(key=lambda row: (-row.support, row.dependent, row.referenced))
    return IntegrationReport(
        left_name=left.name or "left",
        right_name=right.name or "right",
        cinds=cinds,
        dictionary=dictionary,
    )
