"""Tests for the broad-to-pertinent minimality consolidation."""

import pytest

from repro.core.cind import CIND, Capture
from repro.core.conditions import BinaryCondition, UnaryCondition
from repro.core.minimality import broad_cind_list, consolidate_pertinent
from repro.core.validation import NaiveProfiler
from repro.rdf.model import Attr
from tests.conftest import random_rdf


def s_unary(attr, value):
    return Capture(Attr.S, UnaryCondition(attr, value))


def s_binary(v1, v2):
    return Capture(Attr.S, BinaryCondition.make(Attr.P, v1, Attr.O, v2))


def adjacency(*cinds_with_support):
    """Build the extractor's adjacency form from (dep, ref, support) rows."""
    broad = {}
    for dependent, referenced, support in cinds_with_support:
        refs, _support = broad.get(dependent, (frozenset(), support))
        broad[dependent] = (refs | {referenced}, support)
    return broad


class TestImplicationRules:
    def test_dependent_implication_removes_tighter_cind(self):
        """Figure 1: ψ1 minimal, ψ3 implied by it via dependent implication."""
        ref = s_unary(Attr.O, 99)
        unary_dep = s_unary(Attr.P, 1)
        binary_dep = s_binary(1, 2)
        broad = adjacency(
            (unary_dep, ref, 5),
            (binary_dep, ref, 3),
        )
        pertinent = {sc.cind for sc in consolidate_pertinent(broad)}
        assert CIND(unary_dep, ref) in pertinent
        assert CIND(binary_dep, ref) not in pertinent

    def test_referenced_implication_removes_looser_cind(self):
        dep = s_unary(Attr.O, 99)
        unary_ref = s_unary(Attr.P, 1)
        binary_ref = s_binary(1, 2)
        broad = adjacency(
            (dep, binary_ref, 4),
            (dep, unary_ref, 4),
        )
        pertinent = {sc.cind for sc in consolidate_pertinent(broad)}
        assert CIND(dep, binary_ref) in pertinent
        assert CIND(dep, unary_ref) not in pertinent

    def test_unrelated_cinds_all_survive(self):
        broad = adjacency(
            (s_unary(Attr.P, 1), s_unary(Attr.P, 2), 5),
            (s_unary(Attr.P, 2), s_unary(Attr.O, 3), 4),
        )
        assert len(consolidate_pertinent(broad)) == 2

    def test_trivial_cinds_dropped(self):
        binary = s_binary(1, 2)
        relaxation = s_unary(Attr.P, 1)
        broad = adjacency((binary, relaxation, 3))
        assert consolidate_pertinent(broad) == []

    def test_psi_1_2_always_minimal(self):
        """Unary dependent + binary referenced cannot be implied."""
        broad = adjacency((s_unary(Attr.O, 7), s_binary(1, 2), 3))
        assert len(consolidate_pertinent(broad)) == 1

    def test_chain_of_implications(self):
        """ψ2:1 implied through both available one-step impliers."""
        ref_unary = s_unary(Attr.P, 9)
        ref_binary = Capture(Attr.S, BinaryCondition.make(Attr.P, 9, Attr.O, 8))
        dep_unary = s_unary(Attr.O, 1)
        dep_binary = Capture(Attr.S, BinaryCondition.make(Attr.O, 1, Attr.P, 2))
        broad = adjacency(
            (dep_unary, ref_binary, 5),   # Ψ1:2 — minimal
            (dep_unary, ref_unary, 5),    # Ψ1:1 — implied by the Ψ1:2
            (dep_binary, ref_binary, 3),  # Ψ2:2 — implied by the Ψ1:2
            (dep_binary, ref_unary, 3),   # Ψ2:1 — implied twice over
        )
        pertinent = {sc.cind for sc in consolidate_pertinent(broad)}
        assert pertinent == {CIND(dep_unary, ref_binary)}

    def test_support_carried_through(self):
        broad = adjacency((s_unary(Attr.P, 1), s_unary(Attr.P, 2), 17))
        (row,) = consolidate_pertinent(broad)
        assert row.support == 17


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("h", [1, 2])
    def test_matches_naive_minimality(self, seed, h):
        encoded = random_rdf(seed + 150, n_triples=35).encode()
        profiler = NaiveProfiler(encoded)
        broad = profiler.broad_cinds(h)
        # convert the oracle's flat dict into the adjacency form
        adjacency_form = {}
        for cind, support in broad.items():
            refs, _support = adjacency_form.get(
                cind.dependent, (frozenset(), support)
            )
            adjacency_form[cind.dependent] = (refs | {cind.referenced}, support)
        got = {(sc.cind, sc.support) for sc in consolidate_pertinent(adjacency_form)}
        want = {(sc.cind, sc.support) for sc in profiler.pertinent_cinds(h)}
        assert got == want


class TestBroadList:
    def test_flattening_drops_trivial(self):
        binary = s_binary(1, 2)
        broad = adjacency(
            (binary, s_unary(Attr.P, 1), 3),  # trivial
            (binary, s_unary(Attr.S, 9), 3),  # impossible projection but non-trivial
        )
        rows = broad_cind_list(broad)
        assert len(rows) == 1

    def test_sorted_by_support_desc(self):
        broad = adjacency(
            (s_unary(Attr.P, 1), s_unary(Attr.P, 2), 2),
            (s_unary(Attr.P, 3), s_unary(Attr.P, 4), 9),
        )
        rows = broad_cind_list(broad)
        assert [row.support for row in rows] == [9, 2]
