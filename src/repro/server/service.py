"""Job lifecycle management: admission, queueing, workers, result cache.

The :class:`JobService` sits between the HTTP surface and the store.  It
owns the only scheduling loop in the server:

* **admission** — `submit` validates the request, consults the
  fingerprint-keyed result cache (a finished twin ⇒ served without
  recompute; an in-flight twin ⇒ joined, not duplicated), and bounds the
  backlog: more than ``max_queued_jobs`` waiting jobs is an
  :class:`OverCapacityError`, which the routes layer renders as HTTP 429
  with a ``Retry-After`` hint.
* **execution** — a scheduler thread starts queued jobs oldest-first
  whenever a slot is free (``max_concurrent_jobs`` bounds the worker
  pool), each as a :mod:`repro.server.worker` subprocess with
  checkpointing on.  A worker that dies without writing its outcome is
  requeued (its next attempt *resumes* from the durable checkpoint) up
  to ``max_attempts``, then declared failed.
* **recovery** — `start` rescans the store: jobs left ``running`` by a
  dead server are requeued (their checkpoints survive, so the rerun
  picks up at the last boundary), orphaned finished workers have their
  outcome adopted.
* **shutdown** — `stop` (the SIGTERM/SIGINT path) stops admitting,
  SIGTERMs in-flight workers, and puts their jobs back in the queue so
  the next start resumes them; the job dir is registered with
  :mod:`repro.dataflow.workspace` for the whole service lifetime, so a
  hard death still gets its ``*.tmp`` litter swept like a spill tree.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.dataflow import workspace
from repro.datasets.registry import DATASETS
from repro.server.store import (
    ACTIVE_STATES,
    JobRecord,
    JobRequest,
    JobStore,
    TERMINAL_STATES,
)

__all__ = [
    "JobService",
    "JobServiceError",
    "BadRequestError",
    "ConflictError",
    "NotAdmittingError",
    "OverCapacityError",
    "UnknownJobError",
    "ServiceConfig",
]


class JobServiceError(RuntimeError):
    """Base class for service-level failures the routes layer maps to HTTP."""


class BadRequestError(JobServiceError):
    """The submission is malformed (HTTP 400)."""


class UnknownJobError(JobServiceError):
    """No such job id (HTTP 404)."""


class ConflictError(JobServiceError):
    """The job is not in a state that allows the operation (HTTP 409)."""


class OverCapacityError(JobServiceError):
    """The queue is full (HTTP 429 + Retry-After)."""

    def __init__(self, message: str, retry_after_seconds: int) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class NotAdmittingError(JobServiceError):
    """The server is draining for shutdown (HTTP 503)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Operating limits of one :class:`JobService`.

    ``RDFIND_MAX_CONCURRENT_JOBS`` / ``RDFIND_MAX_QUEUED_JOBS`` /
    ``RDFIND_JOB_DIR`` supply the CLI's defaults (see ``rdfind serve``).
    """

    job_dir: str
    max_concurrent_jobs: int = 2
    max_queued_jobs: int = 8
    max_attempts: int = 3
    retry_after_seconds: int = 5
    poll_interval_seconds: float = 0.05
    terminate_grace_seconds: float = 5.0

    def __post_init__(self) -> None:
        if not self.job_dir:
            raise ValueError("job_dir is required")
        if self.max_concurrent_jobs < 1:
            raise ValueError(
                f"max_concurrent_jobs must be >= 1, got {self.max_concurrent_jobs}"
            )
        if self.max_queued_jobs < 0:
            raise ValueError(
                f"max_queued_jobs must be >= 0, got {self.max_queued_jobs}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")


def _worker_environment() -> Dict[str, str]:
    """The subprocess environment, with this package importable.

    The server may run from a checkout via ``PYTHONPATH=src``; the
    worker must resolve :mod:`repro` the same way regardless of how the
    parent found it, so the package's own root is prepended explicitly.
    """
    env = dict(os.environ)
    package_root = os.path.dirname(  # .../src, three levels above this file
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
    return env


class JobService:
    """Runs discovery jobs for the HTTP surface; see the module docstring."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.store = JobStore(config.job_dir)
        self._lock = threading.Lock()
        self._procs: Dict[str, subprocess.Popen] = {}
        self._logs: Dict[str, object] = {}
        self._admitting = False
        self._stop_event = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        self._workspace_token: Optional[int] = None
        self.started_jobs = 0  # lifetime spawn count (cache-efficacy telemetry)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Recover orphaned jobs, open admission, start the scheduler."""
        if self._scheduler is not None:
            raise RuntimeError("service already started")
        # Durable artifacts in the job dir are published tmp-then-rename,
        # so like a checkpoint dir it is swept TMP_ONLY: litter dies with
        # the process, records/results/checkpoints survive it.
        self._workspace_token = workspace.register(
            self.store.directory, kind=workspace.TMP_ONLY
        )
        self._recover_orphans()
        self._admitting = True
        self._stop_event.clear()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="job-scheduler", daemon=True
        )
        self._scheduler.start()

    def stop(self, graceful: bool = True) -> None:
        """Drain and shut down.

        ``graceful`` (the SIGTERM path): running workers are SIGTERMed
        and their jobs requeued — the checkpoint dirs stay, so the next
        `start` resumes them at their last durable boundary.  With
        ``graceful=False`` the workers are killed and the records left
        exactly as they are — the test double for the server dying
        mid-job (recovery then happens in the next `start`).
        """
        self._admitting = False
        self._stop_event.set()
        if self._scheduler is not None:
            self._scheduler.join(timeout=10.0)
            self._scheduler = None
        with self._lock:
            procs = dict(self._procs)
        for job_id, proc in procs.items():
            self._terminate(proc)
            if graceful:
                record = self.store.get(job_id)
                if record is not None and record.state == "running":
                    outcome = self.store.outcome(job_id)
                    if outcome is None:
                        self.store.requeue(record)
                    else:
                        self._adopt_outcome(record, outcome)
        with self._lock:
            self._procs.clear()
            for log in self._logs.values():
                try:
                    log.close()  # type: ignore[attr-defined]
                except Exception:  # noqa: BLE001
                    pass
            self._logs.clear()
        if self._workspace_token is not None:
            workspace.unregister(self._workspace_token)
            self._workspace_token = None
        if graceful:
            # The sweep a hard death would have gotten from the registry.
            workspace.cleanup_registered()
            self._sweep_tmp_litter()

    def stop_admitting(self) -> None:
        """First phase of graceful shutdown: reject new submissions."""
        self._admitting = False

    @property
    def admitting(self) -> bool:
        return self._admitting

    def _sweep_tmp_litter(self) -> None:
        for dirpath, _dirnames, filenames in os.walk(self.store.directory):
            for filename in filenames:
                if filename.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(dirpath, filename))
                    except OSError:
                        pass

    def _recover_orphans(self) -> None:
        """Reconcile records left behind by a dead server.

        A ``running`` record with a worker outcome on disk finished just
        as (or after) the server died — adopt the verdict.  One without
        an outcome lost its worker — requeue it; its checkpoint dir is
        intact, so the retry resumes rather than recomputes.
        """
        for record in self.store.list_records():
            if record.state != "running":
                continue
            outcome = self.store.outcome(record.id)
            if outcome is not None:
                self._adopt_outcome(record, outcome)
            elif record.cancel_requested:
                self._finish(record, "cancelled", error="cancelled by client")
            else:
                self.store.requeue(record)

    # -- admission / cache ---------------------------------------------

    def submit(self, request: JobRequest) -> Tuple[JobRecord, str]:
        """Admit a request; returns ``(record, cache_status)``.

        ``cache_status`` is ``"hit"`` (a finished twin's record — its
        result is already on disk), ``"joined"`` (an identical job is
        queued or running; the caller shares it), or ``"miss"`` (a new
        job was created and queued).
        """
        if not self._admitting:
            raise NotAdmittingError("server is shutting down; not accepting jobs")
        self._validate_dataset(request)
        with self._lock:
            fingerprint = request.fingerprint()
            twin = self.store.find_by_fingerprint(fingerprint)
            if twin is not None:
                return twin, ("joined" if twin.state in ACTIVE_STATES else "hit")
            queued = sum(
                1 for record in self.store.list_records() if record.state == "queued"
            )
            if queued >= self.config.max_queued_jobs:
                raise OverCapacityError(
                    f"queue is full ({queued}/{self.config.max_queued_jobs} "
                    f"jobs waiting); retry later",
                    retry_after_seconds=self.config.retry_after_seconds,
                )
            return self.store.create(request), "miss"

    def _validate_dataset(self, request: JobRequest) -> None:
        spec = request.dataset
        if spec.startswith("endpoint:"):
            url = spec[len("endpoint:") :]
            # Admission-time sanity only — reachability is the worker's
            # problem (the endpoint may be down now and healthy at run
            # time; the federation client handles both).
            if url.startswith(("http://", "https://")):
                return
            raise BadRequestError(
                f"bad endpoint dataset {request.dataset!r}: expected "
                f"endpoint:http(s)://host[:port]/path"
            )
        if spec.startswith("dataset:"):
            spec = spec[len("dataset:") :]
        if any(key.lower() == spec.lower() for key in DATASETS):
            return
        if os.path.exists(request.dataset) and request.dataset.endswith(
            (".nt", ".ntriples", ".ttl", ".turtle")
        ):
            return
        raise BadRequestError(
            f"unknown dataset {request.dataset!r}: expected a registry name "
            f"({', '.join(DATASETS)}), a server-local N-Triples/Turtle "
            f"file, or endpoint:<SPARQL endpoint URL>"
        )

    # -- queries -------------------------------------------------------

    def record(self, job_id: str) -> JobRecord:
        record = self.store.get(job_id)
        if record is None:
            raise UnknownJobError(f"no such job {job_id!r}")
        return record

    def job_status(self, job_id: str) -> Dict[str, object]:
        """The record plus live progress, as one JSON-ready dict."""
        record = self.record(job_id)
        status: Dict[str, object] = record.to_json()
        if record.state == "running":
            status["progress"] = self.store.progress(job_id)
        elif record.state == "succeeded":
            status["progress"] = self.store.final_metrics(job_id)
        else:
            status["progress"] = None
        return status

    def list_jobs(self) -> List[Dict[str, object]]:
        return [record.to_json() for record in self.store.list_records()]

    def result_page(
        self, job_id: str, offset: int = 0, limit: Optional[int] = None
    ) -> Dict[str, object]:
        """One page of a finished job's CINDs (plus all ARs on page 0)."""
        if offset < 0:
            raise BadRequestError(f"offset must be >= 0, got {offset}")
        if limit is not None and limit < 0:
            raise BadRequestError(f"limit must be >= 0, got {limit}")
        record = self._finished_record(job_id)
        document = self.store.result_document(job_id)
        if document is None:
            raise ConflictError(f"job {job_id} result document is missing")
        cinds = document.get("cinds", [])
        page = cinds[offset:] if limit is None else cinds[offset : offset + limit]
        return {
            "id": record.id,
            "format": document.get("format"),
            "version": document.get("version"),
            "variant": document.get("variant"),
            "support_threshold": document.get("support_threshold"),
            "total_cinds": len(cinds),
            "offset": offset,
            "limit": limit,
            "cinds": page,
            "association_rules": (
                document.get("association_rules", []) if offset == 0 else []
            ),
            "total_association_rules": len(document.get("association_rules", [])),
        }

    def raw_result(self, job_id: str) -> bytes:
        """The full result document, byte-identical to ``discover -o``."""
        self._finished_record(job_id)
        raw = self.store.raw_result(job_id)
        if raw is None:
            raise ConflictError(f"job {job_id} result document is missing")
        return raw

    def _finished_record(self, job_id: str) -> JobRecord:
        record = self.record(job_id)
        if record.state != "succeeded":
            raise ConflictError(
                f"job {job_id} has no result (state {record.state!r})"
            )
        return record

    def counts(self) -> Dict[str, int]:
        return self.store.counts()

    # -- cancellation --------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued or running job; idempotent once terminal."""
        with self._lock:
            record = self.record(job_id)
            if record.state in TERMINAL_STATES:
                if record.state == "cancelled":
                    return record
                raise ConflictError(
                    f"job {job_id} already finished ({record.state})"
                )
            record = replace(record, cancel_requested=True)
            if record.state == "queued":
                record = replace(
                    record,
                    state="cancelled",
                    finished=time.time(),
                    error="cancelled by client",
                )
                self.store.save(record)
                return record
            self.store.save(record)
            proc = self._procs.get(job_id)
        # Running: the scheduler reaps the terminated worker and, seeing
        # cancel_requested, lands the record in "cancelled".
        if proc is not None:
            self._terminate(proc)
        return self.record(job_id)

    def _terminate(self, proc: subprocess.Popen) -> None:
        if proc.poll() is not None:
            return
        try:
            proc.terminate()
            proc.wait(timeout=self.config.terminate_grace_seconds)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=self.config.terminate_grace_seconds)
        except OSError:
            pass

    # -- scheduling ----------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop_event.wait(self.config.poll_interval_seconds):
            try:
                self._reap_finished()
                self._start_queued()
            except Exception as error:  # noqa: BLE001 - the loop must survive
                print(f"server: scheduler error: {error}", file=sys.stderr)

    def _reap_finished(self) -> None:
        with self._lock:
            done = [
                (job_id, proc)
                for job_id, proc in self._procs.items()
                if proc.poll() is not None
            ]
            for job_id, _proc in done:
                del self._procs[job_id]
                log = self._logs.pop(job_id, None)
                if log is not None:
                    try:
                        log.close()  # type: ignore[attr-defined]
                    except Exception:  # noqa: BLE001
                        pass
        for job_id, proc in done:
            record = self.store.get(job_id)
            if record is None or record.state != "running":
                continue
            outcome = self.store.outcome(job_id)
            if outcome is not None:
                self._adopt_outcome(record, outcome)
            elif record.cancel_requested:
                self._finish(record, "cancelled", error="cancelled by client")
            elif record.attempts < self.config.max_attempts:
                # Crash without a verdict: requeue; the checkpoint dir is
                # durable, so the retry resumes at the last boundary.
                self.store.requeue(record)
            else:
                self._finish(
                    record,
                    "failed",
                    error=(
                        f"worker died (exit code {proc.returncode}) after "
                        f"{record.attempts} attempts"
                    ),
                )

    def _adopt_outcome(self, record: JobRecord, outcome: Dict[str, object]) -> None:
        state = str(outcome.get("state", "failed"))
        if state not in TERMINAL_STATES:
            state = "failed"
        self._finish(
            record,
            state,
            error=outcome.get("error"),
            result_summary=outcome.get("summary"),
        )

    def _finish(
        self,
        record: JobRecord,
        state: str,
        error=None,
        result_summary=None,
    ) -> None:
        self.store.save(
            replace(
                record,
                state=state,
                finished=time.time(),
                error=error,
                result_summary=result_summary,
            )
        )

    def _start_queued(self) -> None:
        with self._lock:
            free = self.config.max_concurrent_jobs - len(self._procs)
            if free <= 0:
                return
            queued = [
                record
                for record in self.store.list_records()
                if record.state == "queued" and record.id not in self._procs
            ]
            for record in queued[:free]:
                self._spawn(record)

    def _spawn(self, record: JobRecord) -> None:
        """Launch one worker subprocess (caller holds the lock)."""
        job_dir = self.store.job_dir(record.id)
        # Stale artifacts from a previous attempt must not be readable as
        # this attempt's verdict; checkpoints, of course, stay.
        for path in (
            self.store.outcome_path(record.id),
            self.store.progress_path(record.id),
        ):
            try:
                os.unlink(path)
            except OSError:
                pass
        log = open(self.store.log_path(record.id), "ab")
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.server.worker", job_dir],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=_worker_environment(),
                cwd=self.store.directory,
            )
        except OSError as error:
            log.close()
            self._finish(record, "failed", error=f"could not spawn worker: {error}")
            return
        self._procs[record.id] = proc
        self._logs[record.id] = log
        self.started_jobs += 1
        self.store.save(
            replace(
                record,
                state="running",
                started=time.time(),
                attempts=record.attempts + 1,
            )
        )
