"""Figure 2: the CIND search-space funnel on Diseasome (h=10).

Paper numbers for 72,445 triples at support 10:

    all CIND candidates          > 50 billion
    all CINDs                    > 1.3 billion
    minimal CINDs                > 219 million
    candidates w/ freq. cond.    > 77 million
    broad CIND candidates        > 21 million
    broad CINDs                  915,647
    pertinent CINDs              879,637
    (broad) association rules    690

The full-size funnel reproduces the *candidate* counts and the discovered
broad/pertinent/AR counts; the exhaustive all-valid/all-minimal counts are
computed on a scaled-down Diseasome (they are the very quantities whose
intractability the paper demonstrates — >10^9 at full size).
"""

from repro.core.stats import search_space_funnel
from repro.datasets import diseasome
from benchmarks.conftest import once

PAPER_FUNNEL = {
    "all CIND candidates": 50_000_000_000,
    "CIND candidates w/ frequent conditions": 77_000_000,
    "broad CIND candidates": 21_000_000,
    "broad CINDs": 915_647,
    "pertinent CINDs": 879_637,
    "(broad) association rules": 690,
}


def test_fig02_full_diseasome_funnel(benchmark, report):
    dataset = diseasome().encode()
    funnel = once(benchmark, search_space_funnel, dataset, 10)

    section = report.section("Figure 2 — search-space funnel, Diseasome h=10")
    for label, count in funnel.rows():
        paper = PAPER_FUNNEL.get(label)
        paper_text = f"(paper: {paper:,})" if paper else "(paper: n/a at full size)"
        section.row(f"{label:<44} {count:>16,}  {paper_text}")

    # Shape assertions: each funnel layer strictly shrinks, by orders of
    # magnitude at the top (the paper's pruning story).
    assert funnel.all_cind_candidates > 100 * funnel.frequent_condition_candidates
    assert funnel.frequent_condition_candidates >= funnel.broad_cind_candidates
    assert funnel.broad_cind_candidates > funnel.broad_cinds
    assert funnel.broad_cinds >= funnel.pertinent_cinds
    assert funnel.pertinent_cinds > funnel.association_rules


def test_fig02_exhaustive_funnel_scaled(benchmark, report):
    dataset = diseasome(scale=0.012).encode()
    funnel = once(benchmark, search_space_funnel, dataset, 2, None, True)

    section = report.section(
        f"Figure 2 (exhaustive layers) — Diseasome scaled to "
        f"{funnel.triples:,} triples, h=2"
    )
    for label, count in funnel.rows():
        section.row(f"{label:<44} {count:>16,}")

    assert funnel.valid_cinds is not None and funnel.minimal_cinds is not None
    # The paper's containments: candidates > valid > minimal > broad ∩ minimal.
    assert funnel.all_cind_candidates > funnel.valid_cinds
    assert funnel.valid_cinds > funnel.minimal_cinds
    assert funnel.minimal_cinds > funnel.pertinent_cinds
