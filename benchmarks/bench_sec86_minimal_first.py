"""Section 8.6: why not minimal CINDs first?

The paper prototyped a multi-pass strategy that extracts only potentially
minimal CINDs per pass and found it "up to 3 times slower even than
RDFind-DE", concluding that extract-then-consolidate is the right design.
This bench reruns that comparison (the outputs are identical — the test
suite asserts so — only the runtimes differ).
"""

import time

import pytest

from repro.baselines import minimal_first_discover

SETTINGS = (("Countries", 10), ("Countries", 100), ("Diseasome", 100))


@pytest.mark.parametrize(
    "dataset_name,h", SETTINGS, ids=[f"{n}-h{h}" for n, h in SETTINGS]
)
def test_sec86_minimal_first_vs_rdfind(dataset_name, h, benchmark, report, cache):
    encoded = cache.dataset(dataset_name)

    def body():
        _result, rdfind_seconds = cache.run(dataset_name, h)
        _de_result, de_seconds = cache.run(dataset_name, h, variant="de")
        started = time.perf_counter()
        mf_result = minimal_first_discover(encoded, h=h, parallelism=4)
        mf_seconds = time.perf_counter() - started
        return rdfind_seconds, de_seconds, mf_seconds, len(mf_result.cinds)

    rdfind_seconds, de_seconds, mf_seconds, n_cinds = benchmark.pedantic(
        body, rounds=1, iterations=1
    )

    section = report.section(
        f"Section 8.6 — minimal-first strategy, {dataset_name} h={h} "
        "(paper: up to 3x slower than RDFind-DE)"
    )
    section.row(
        f"RDFind {rdfind_seconds:6.2f}s | RDFind-DE {de_seconds:6.2f}s | "
        f"minimal-first {mf_seconds:6.2f}s "
        f"({mf_seconds / max(de_seconds, 1e-9):.2f}x of DE) | "
        f"{n_cinds:,} pertinent CINDs (identical output)"
    )

    # Shape: the multi-pass strategy never beats the production design.
    assert mf_seconds > de_seconds * 0.9
