"""Tests for the stage planner and the vectorized batch kernels.

The central contract: every plan the planner can pick — batch kernels,
combiner off, spill escalation, batch re-slicing — produces output
byte-identical to the planner-off record-at-a-time oracle, on both
executor backends and both shuffle planes.
"""

from __future__ import annotations

import gc
import json
import sys

import pytest

from repro.core.capture_groups import create_capture_groups
from repro.core.conditions import Attr, ConditionScope, UnaryCondition
from repro.core.discovery import RDFind, RDFindConfig
from repro.core.frequent_conditions import (
    _columnar_binary_counts,
    _columnar_unary_counts,
    detect_frequent_conditions,
)
from repro.core.serialization import result_to_dict
from repro.dataflow.bloom import BloomFilter
from repro.dataflow.engine import ExecutionEnvironment, record_cells
from repro.dataflow.gcpause import gc_paused, stage_gc_pause
from repro.dataflow.kernels import (
    batch_dataset,
    binary_counts_kernel,
    unary_counts_kernel,
)
from repro.dataflow.metrics import JobMetrics, StageMetrics
from repro.dataflow.planner import (
    COMBINE_OFF_RATIO,
    DEFAULT_MIN_KERNEL_RECORDS,
    PLANNER_MODES,
    SKEW_SPLIT_THRESHOLD,
    StagePlanner,
)
from repro.dataflow.shuffle import record_bytes
from repro.storage.columnar import (
    TripleBatch,
    build_triple_batches,
    packed_column_nbytes,
)
from repro.storage.compressed import BitPackedColumn

from tests.conftest import random_rdf


def result_digest(result) -> str:
    """Canonical JSON of everything a discovery run produced."""
    return json.dumps(result_to_dict(result), sort_keys=True)


def discover(planner="off", executor="serial", shuffle="inline", seed=7, h=2, **kwargs):
    dataset = random_rdf(seed, n_triples=120, n_subjects=8, n_objects=8)
    config = RDFindConfig(
        support_threshold=h,
        parallelism=3,
        planner=planner,
        executor=executor,
        shuffle=shuffle,
        **kwargs,
    )
    return RDFind(config).discover(dataset.encode())


# ----------------------------------------------------------------------
# planner unit behaviour
# ----------------------------------------------------------------------


class TestStagePlannerDecisions:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            StagePlanner("aggressive")

    def test_modes_tuple_is_the_contract(self):
        assert PLANNER_MODES == ("off", "static", "adaptive")

    def test_off_mode_keeps_record_path(self):
        plan = StagePlanner("off").plan_kernel("fc/unary-columnar", 10**6)
        assert not plan.use_kernel
        assert plan.choice == "record"

    def test_static_mode_forces_kernel_even_on_tiny_input(self):
        plan = StagePlanner("static").plan_kernel("fc/unary-columnar", 1)
        assert plan.use_kernel
        assert plan.choice == "kernel"

    def test_adaptive_floor_keeps_record_path_on_small_input(self):
        planner = StagePlanner("adaptive")
        plan = planner.plan_kernel("cg/group-by-value", DEFAULT_MIN_KERNEL_RECORDS - 1)
        assert not plan.use_kernel
        assert "small input" in plan.reason

    def test_adaptive_engages_kernel_above_floor(self):
        planner = StagePlanner("adaptive")
        plan = planner.plan_kernel("cg/group-by-value", DEFAULT_MIN_KERNEL_RECORDS)
        assert plan.use_kernel

    def test_record_memory_budget_disables_kernels(self):
        planner = StagePlanner("static", allow_kernels=False)
        plan = planner.plan_kernel("fc/unary-columnar", 10**6)
        assert not plan.use_kernel
        assert "budget" in plan.reason

    def test_combine_stays_on_without_evidence(self):
        planner = StagePlanner("adaptive")
        plan = planner.plan_combine("fc/unary-aggregate", 10**5, order_insensitive=True)
        assert plan.combine is None
        assert plan.choice == "combine"

    def test_combine_off_needs_order_insensitivity(self):
        planner = StagePlanner("adaptive")
        planner.observe(
            StageMetrics(
                name="cg/group-by-value",
                partition_seconds=[0.1],
                records_in=[1000],
                records_out=[1000],
            )
        )
        plan = planner.plan_combine("cg/group-by-value", 1000, order_insensitive=False)
        assert plan.combine is None  # set-valued folds keep their combiner

    def test_combine_switched_off_when_not_aggregating(self):
        planner = StagePlanner("adaptive")
        planner.observe(
            StageMetrics(
                name="ex/capture-support",
                partition_seconds=[0.1],
                records_in=[1000],
                records_out=[990],  # ratio 0.99 > COMBINE_OFF_RATIO
            )
        )
        plan = planner.plan_combine("ex/capture-support", 1000, order_insensitive=True)
        assert plan.combine is False
        assert plan.choice == "combine-off"

    def test_spill_environment_is_sticky(self):
        planner = StagePlanner("adaptive", env_shuffle="spill")
        plan = planner.plan_shuffle("cg/group-by-value", 10)
        assert plan.shuffle == "spill"
        assert "sticky" in plan.reason

    def test_shuffle_escalates_when_projection_exceeds_budget(self):
        planner = StagePlanner("adaptive", memory_budget_bytes=1024)
        big = planner.plan_shuffle("cg/group-by-value", 10**6)
        small = planner.plan_shuffle("cg/group-by-value", 2)
        assert big.shuffle == "spill"
        assert small.shuffle is None and small.choice == "inline"

    def test_skew_splits_counting_batches(self):
        planner = StagePlanner("adaptive", parallelism=4)
        planner.observe(
            StageMetrics(
                name="fc/binary-columnar",
                partition_seconds=[4.0, 0.1, 0.1, 0.1],  # skew >> threshold
                records_in=[100, 100, 100, 100],
                records_out=[10, 10, 10, 10],
            )
        )
        assert planner.costs_for("fc/binary-columnar").skew > SKEW_SPLIT_THRESHOLD
        plan = planner.plan_partitions("fc/binary-columnar", 400)
        assert plan.partitions == 8
        assert plan.choice == "split-batches"

    def test_balanced_stage_keeps_parallelism_batches(self):
        planner = StagePlanner("adaptive", parallelism=4)
        plan = planner.plan_partitions("fc/unary-columnar", 400)
        assert plan.partitions == 4

    def test_observe_job_warms_cost_model(self):
        metrics = JobMetrics()
        stage = metrics.new_stage("fc/unary-columnar")
        stage.partition_seconds = [0.5]
        stage.records_in = [10000]
        stage.records_out = [100]
        planner = StagePlanner("adaptive")
        planner.observe_job(metrics)
        costs = planner.costs_for("fc/unary-columnar")
        assert costs.runs == 1
        assert costs.seconds_per_record == pytest.approx(0.5 / 10000)
        assert costs.reduction_ratio == pytest.approx(0.01)
        plan = planner.plan_kernel("fc/unary-columnar", DEFAULT_MIN_KERNEL_RECORDS)
        assert plan.use_kernel
        assert "observed" in plan.reason

    def test_ewma_folds_repeat_observations(self):
        planner = StagePlanner("adaptive")
        fast = StageMetrics(
            name="s", partition_seconds=[0.1], records_in=[1000], records_out=[10]
        )
        slow = StageMetrics(
            name="s", partition_seconds=[0.3], records_in=[1000], records_out=[10]
        )
        planner.observe(fast)
        planner.observe(slow)
        costs = planner.costs_for("s")
        assert costs.runs == 2
        assert 0.1 / 1000 < costs.seconds_per_record < 0.3 / 1000

    def test_record_stamps_and_appends_decisions(self):
        planner = StagePlanner("static")
        stage = StageMetrics(name="cg/group-by-value")
        planner.record(stage, planner.plan_kernel("cg/group-by-value", 100))
        assert stage.planner_choice == "kernel"
        assert stage.planner_reason == "static mode"
        planner.record(stage, planner.plan_combine("cg/group-by-value", 100))
        assert stage.planner_choice == "kernel+combine"
        assert "; " in stage.planner_reason

    def test_annotate_targets_most_recent_stage(self):
        planner = StagePlanner("static")
        metrics = JobMetrics()
        first = metrics.new_stage("cg/group-by-value")
        second = metrics.new_stage("cg/group-by-value")
        planner.annotate(metrics, "cg/group-by-value", planner.plan_kernel("x", 1))
        assert second.planner_choice == "kernel"
        assert first.planner_choice == ""


# ----------------------------------------------------------------------
# batch layout and pricing honesty
# ----------------------------------------------------------------------


class TestTripleBatches:
    def test_batches_reproduce_round_robin_partitioning(self):
        encoded = random_rdf(3, n_triples=50).encode()
        count = 4
        batches = build_triple_batches(encoded, count)
        rows = list(encoded)
        for index, batch in enumerate(batches):
            expected = rows[index::count]
            assert len(batch) == len(expected)
            assert list(zip(*batch.columns)) == [tuple(t) for t in expected]

    def test_batch_dataset_matches_from_collection_layout(self):
        encoded = random_rdf(4, n_triples=40).encode()
        env = ExecutionEnvironment(parallelism=3)
        triples = env.from_collection(encoded)
        batches = batch_dataset(env, encoded)
        record_partitions = triples.partitions
        for index, partition in enumerate(batches.partitions):
            (batch,) = partition
            assert list(zip(*batch.columns)) == [
                tuple(t) for t in record_partitions[index]
            ]

    def test_oversliced_batches_round_robin_onto_workers(self):
        encoded = random_rdf(5, n_triples=30).encode()
        env = ExecutionEnvironment(parallelism=2)
        batches = batch_dataset(env, encoded, batch_count=5)
        partitions = batches.partitions
        assert [len(p) for p in partitions] == [3, 2]  # batches 0,2,4 / 1,3
        total = sum(len(batch) for p in partitions for batch in p)
        assert total == len(encoded)

    def test_record_budget_prices_batches_like_triples(self):
        encoded = random_rdf(6, n_triples=33).encode()
        batches = build_triple_batches(encoded, 4)
        assert sum(record_cells(b) for b in batches) == encoded.cells
        assert all(b.budget_cells == 3 * len(b) for b in batches)

    def test_byte_budget_pricing_is_honest(self):
        """nbytes prices the batch at its bit-packed column size."""
        encoded = random_rdf(8, n_triples=2000, n_subjects=40, n_objects=40).encode()
        (batch,) = build_triple_batches(encoded, 1)
        priced = record_bytes(batch)
        assert priced == sys.getsizeof(batch) + batch.nbytes()
        assert batch.nbytes() == sum(
            packed_column_nbytes(column) for column in batch.columns
        )
        # Never over the real mutable-array footprint...
        actual = sys.getsizeof(batch) + sum(
            sys.getsizeof(column) for column in batch.columns
        )
        assert priced <= actual
        # ...and the packed size matches what BitPackedColumn produces.
        for column in batch.columns:
            assert packed_column_nbytes(column) == BitPackedColumn.pack(column).nbytes()

    def test_invalid_batch_count_rejected(self):
        encoded = random_rdf(9, n_triples=10).encode()
        with pytest.raises(ValueError):
            build_triple_batches(encoded, 0)


# ----------------------------------------------------------------------
# kernels vs their record/driver oracles
# ----------------------------------------------------------------------


def kernel_env(executor="serial"):
    return ExecutionEnvironment(parallelism=3, executor=executor)


class TestKernelOracles:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_unary_counts_match_driver_columnar_scan(self, executor):
        encoded = random_rdf(11, n_triples=90).encode()
        scope = ConditionScope.full()
        oracle_env, env = kernel_env(), kernel_env(executor)
        oracle = _columnar_unary_counts(oracle_env, encoded, scope, 2)
        batches = batch_dataset(env, encoded)
        assert unary_counts_kernel(env, batches, scope, 2) == oracle

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_binary_counts_match_driver_columnar_scan(self, executor):
        encoded = random_rdf(12, n_triples=90).encode()
        scope = ConditionScope.full()
        oracle_env, env = kernel_env(), kernel_env(executor)
        unary = _columnar_unary_counts(oracle_env, encoded, scope, 2)
        bloom = BloomFilter.from_items(unary, capacity=max(1, len(unary)))
        oracle = _columnar_binary_counts(oracle_env, encoded, scope, bloom, 2)
        batches = batch_dataset(env, encoded)
        assert binary_counts_kernel(env, batches, scope, bloom, 2) == oracle

    def test_split_batches_do_not_change_counts(self):
        # The FC kernels are order-insensitive: the planner's skew split
        # (more batches than workers) must leave the counts unchanged.
        encoded = random_rdf(13, n_triples=90).encode()
        scope = ConditionScope.full()
        env = kernel_env()
        baseline = unary_counts_kernel(env, batch_dataset(env, encoded), scope, 2)
        split = unary_counts_kernel(
            env, batch_dataset(env, encoded, batch_count=7), scope, 2
        )
        assert split == baseline

    @pytest.mark.parametrize("executor", ["serial", "process"])
    @pytest.mark.parametrize("pruned", [False, True])
    def test_capture_groups_match_record_path(self, executor, pruned):
        encoded = random_rdf(14, n_triples=120, n_subjects=8, n_objects=8).encode()
        scope = ConditionScope.full()
        frequent = None
        if pruned:
            frequent = detect_frequent_conditions(
                kernel_env(),
                kernel_env().from_collection(encoded),
                h=2,
                scope=scope,
                columns=encoded,
            )
        oracle_env = kernel_env(executor)
        oracle = create_capture_groups(
            oracle_env, oracle_env.from_collection(encoded), scope, frequent
        ).partitions
        env = kernel_env(executor)
        triples = env.from_collection(encoded)
        kernel = create_capture_groups(
            env, triples, scope, frequent, batches=batch_dataset(env, encoded)
        ).partitions
        # Identical partitions, not just identical contents: the kernel
        # feeds the same shuffle routing as the record path.
        assert kernel == oracle

    def test_capture_group_kernel_with_restricted_scope(self):
        encoded = random_rdf(15, n_triples=80).encode()
        scope = ConditionScope.predicates_only()
        env1, env2 = kernel_env(), kernel_env()
        oracle = create_capture_groups(
            env1, env1.from_collection(encoded), scope, None
        ).partitions
        kernel = create_capture_groups(
            env2,
            env2.from_collection(encoded),
            scope,
            None,
            batches=batch_dataset(env2, encoded),
        ).partitions
        assert kernel == oracle


class TestBloomIntKeyFastPath:
    def test_agrees_with_contains_for_int_tuple_keys(self):
        bloom = BloomFilter.for_capacity(256, 0.01)
        members = [UnaryCondition(Attr.P, v) for v in range(0, 200, 3)]
        bloom.update(members)
        probes = [UnaryCondition(Attr.P, v) for v in range(200)] + [
            (a, b) for a in range(10) for b in range(10)
        ]
        for key in probes:
            assert bloom.contains_int_key(key) == (key in bloom)

    def test_plain_int_keys(self):
        bloom = BloomFilter.from_items(range(0, 100, 7), capacity=20)
        for value in range(100):
            assert bloom.contains_int_key(value) == (value in bloom)


# ----------------------------------------------------------------------
# end-to-end byte identity and decision visibility
# ----------------------------------------------------------------------


class TestPlannerByteIdentity:
    @pytest.fixture(scope="class")
    def oracle_digest(self):
        return result_digest(discover(planner="off"))

    @pytest.mark.parametrize("planner", ["static", "adaptive"])
    @pytest.mark.parametrize("shuffle", ["inline", "spill"])
    def test_serial_identical_to_oracle(self, planner, shuffle, oracle_digest):
        result = discover(planner=planner, shuffle=shuffle)
        assert result_digest(result) == oracle_digest

    @pytest.mark.parametrize("planner", ["static", "adaptive"])
    def test_process_identical_to_oracle(self, planner, oracle_digest):
        result = discover(planner=planner, executor="process")
        assert result_digest(result) == oracle_digest

    def test_planner_survives_strings_storage(self, oracle_digest):
        # STRINGS storage has no columns, hence no kernels — the planner
        # must degrade to a no-op, not crash.
        result = discover(planner="static", storage="strings")
        assert result_digest(result) == oracle_digest


class TestPlannerVisibility:
    def test_static_run_stamps_kernel_decisions(self):
        result = discover(planner="static")
        metrics = result.metrics
        assert metrics.planner == "static"
        assert metrics.planner_decisions >= 3
        stamped = {
            stage.name: stage.planner_choice
            for stage in metrics.stages
            if stage.planner_choice
        }
        assert stamped.get("cg/group-by-value", "").startswith("kernel")
        assert any(name.startswith("fc/") for name in stamped)
        described = metrics.describe()
        assert "planner=static" in described
        assert "plan=kernel" in described

    def test_adaptive_small_input_reports_record_choice(self):
        result = discover(planner="adaptive")
        metrics = result.metrics
        assert metrics.planner == "adaptive"
        stage = metrics.stage_by_name("cg/group-by-value")
        assert stage.planner_choice == "record"
        assert "small input" in stage.planner_reason

    def test_off_run_stamps_nothing(self):
        result = discover(planner="off")
        assert result.metrics.planner == "off"
        assert result.metrics.planner_decisions == 0

    def test_decisions_in_metrics_wire_format(self):
        result = discover(planner="static")
        payload = result.metrics.to_dict()
        assert payload["summary"]["planner"] == "static"
        assert payload["summary"]["planner_decisions"] >= 3
        assert any(stage.get("planner_choice") for stage in payload["stages"])


class TestConfigPlumbing:
    def test_invalid_planner_mode_rejected(self):
        with pytest.raises(ValueError):
            RDFindConfig(planner="bogus")

    def test_env_variable_supplies_default(self, monkeypatch):
        monkeypatch.setenv("RDFIND_PLANNER", "adaptive")
        assert RDFindConfig().planner == "adaptive"
        monkeypatch.delenv("RDFIND_PLANNER")
        assert RDFindConfig().planner == "off"

    def test_record_memory_budget_run_keeps_oracle_output(self):
        # A record-count budget forces the record paths even under the
        # static planner; the run must still succeed and match.
        baseline = discover(planner="off")
        budgeted = discover(planner="static", memory_budget=100_000)
        assert result_digest(budgeted) == result_digest(baseline)
        stamped = [
            stage
            for stage in budgeted.metrics.stages
            if stage.planner_choice == "record"
        ]
        assert stamped and all(
            "budget" in stage.planner_reason for stage in stamped
        )


# ----------------------------------------------------------------------
# GC suppression accounting
# ----------------------------------------------------------------------


class TestGcPause:
    def test_gc_paused_restores_previous_state(self):
        was_enabled = gc.isenabled()
        try:
            gc.enable()
            with gc_paused():
                assert not gc.isenabled()
            assert gc.isenabled()
            gc.disable()
            with gc_paused():
                assert not gc.isenabled()
            assert not gc.isenabled()
        finally:
            gc.enable() if was_enabled else gc.disable()

    def test_stage_pause_counts_suppressed_passes(self):
        threshold0 = gc.get_threshold()[0] or 700
        with stage_gc_pause() as pause:
            # Keep the allocations alive through __exit__: the gen-0
            # counter is allocations minus deallocations, so freeing
            # inside the block would cancel the delta being measured.
            garbage = [[] for _ in range(3 * threshold0)]
        assert pause.suppressed >= 1
        del garbage

    def test_quiet_stage_suppresses_nothing(self):
        with stage_gc_pause() as pause:
            pass
        assert pause.suppressed == 0

    def test_job_metrics_aggregate_suppressed_collections(self):
        result = discover(planner="off")
        total = result.metrics.total_gc_suppressed_collections
        assert total == sum(
            stage.gc_suppressed_collections for stage in result.metrics.stages
        )
        assert total >= 0
