"""Checkpoint compaction: bound the replay cost of a streaming restart.

Without compaction a restart replays the whole changelog; with it, the
maintainer's full state is periodically persisted and a restart replays
only the changelog *suffix* past the snapshot.  The format mirrors
:mod:`repro.dataflow.checkpoint`'s manifests:

* ``manifest.json`` — written atomically (tmp + fsync + rename) with a
  BLAKE2b ``fingerprint_fields`` key over ``(h, scope)`` plus the
  changelog position (``seq``) the payload captures and the payload's
  own BLAKE2b digest;
* ``state-<seq>.bin`` — a CRC-framed header + pickled maintainer.

Loads validate fingerprint, framing, and digest; *any* mismatch is
answered with a warning and ``None`` — the session then rebuilds from a
full changelog replay, because a checkpoint is a cache, never the source
of truth.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import tempfile
import warnings
from typing import Optional, Tuple

from repro.core.conditions import ConditionScope
from repro.core.framing import FrameError, read_frame, write_frame
from repro.dataflow.checkpoint import fingerprint_fields
from repro.streaming.maintainer import StreamingRDFind

__all__ = ["StreamCheckpointer", "scope_signature"]

CHECKPOINT_MAGIC = "rdfind-stream-checkpoint"
CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Matches the dataflow checkpoint writer: protocol 4 keeps payloads
#: loadable across every supported interpreter.
_PICKLE_PROTOCOL = 4


def scope_signature(scope: ConditionScope) -> str:
    """A canonical, hash-order-independent rendering of a scope.

    ``fingerprint_fields`` reprs its values, and frozensets repr in
    iteration order — fine for ints, but spelled out here so the
    signature is readable in the manifest and immune to enum repr
    changes.
    """
    projection = ",".join(sorted(attr.name for attr in scope.projection_attrs))
    condition = ",".join(sorted(attr.name for attr in scope.condition_attrs))
    return f"proj={projection};cond={condition};binary={scope.allow_binary}"


class StreamCheckpointer:
    """Saves/loads maintainer snapshots keyed on (position, h, scope)."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def fingerprint(self, h: int, scope: ConditionScope) -> str:
        return fingerprint_fields(
            magic=CHECKPOINT_MAGIC,
            version=CHECKPOINT_VERSION,
            h=h,
            scope=scope_signature(scope),
        )

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    # -- saving --------------------------------------------------------

    def save(self, maintainer: StreamingRDFind, seq: int) -> str:
        """Persist the maintainer as of changelog position ``seq``.

        Returns the payload path.  The payload lands fully (fsync) before
        the manifest flips to it — a crash between the two leaves the
        previous checkpoint intact.
        """
        buffer = io.BytesIO()
        header = json.dumps(
            {
                "magic": CHECKPOINT_MAGIC,
                "version": CHECKPOINT_VERSION,
                "seq": seq,
                "fingerprint": self.fingerprint(maintainer.h, maintainer.scope),
            },
            sort_keys=True,
        ).encode("utf-8")
        write_frame(buffer, header)
        write_frame(
            buffer, pickle.dumps(maintainer, protocol=_PICKLE_PROTOCOL)
        )
        payload = buffer.getvalue()
        digest = hashlib.blake2b(payload, digest_size=16).hexdigest()

        payload_name = f"state-{seq:012d}.bin"
        payload_path = os.path.join(self.directory, payload_name)
        self._write_atomic(payload_path, payload)
        manifest = {
            "format": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint(maintainer.h, maintainer.scope),
            "h": maintainer.h,
            "scope": scope_signature(maintainer.scope),
            "seq": seq,
            "triples": maintainer.triples,
            "payload": payload_name,
            "payload_digest": digest,
        }
        self._write_atomic(
            self.manifest_path,
            json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8"),
        )
        self._sweep(keep=payload_name)
        return payload_path

    def _write_atomic(self, path: str, data: bytes) -> None:
        handle, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=os.path.basename(path), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _sweep(self, keep: str) -> None:
        """Drop superseded payloads (the manifest points at one only)."""
        for name in os.listdir(self.directory):
            if (
                name.startswith("state-")
                and name.endswith(".bin")
                and name != keep
            ):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - concurrent sweep
                    pass

    # -- loading -------------------------------------------------------

    def load(
        self, h: int, scope: ConditionScope
    ) -> Optional[Tuple[StreamingRDFind, int]]:
        """``(maintainer, seq)`` from the latest matching checkpoint.

        ``None`` when there is no checkpoint, the fingerprint does not
        match the requested ``(h, scope)``, or the payload fails any
        integrity check — each non-empty miss warns, so a silently slow
        full replay is at least a *visible* decision.
        """
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            warnings.warn(
                f"{self.manifest_path}: unreadable checkpoint manifest "
                f"({error}); rebuilding from full changelog replay",
                stacklevel=2,
            )
            return None
        expected = self.fingerprint(h, scope)
        if manifest.get("fingerprint") != expected:
            warnings.warn(
                f"{self.manifest_path}: checkpoint fingerprint mismatch "
                f"(saved for h={manifest.get('h')}, "
                f"scope={manifest.get('scope')!r}); rebuilding from full "
                "changelog replay",
                stacklevel=2,
            )
            return None
        payload_path = os.path.join(self.directory, str(manifest.get("payload")))
        try:
            with open(payload_path, "rb") as stream:
                payload = stream.read()
        except OSError as error:
            warnings.warn(
                f"{payload_path}: unreadable checkpoint payload ({error}); "
                "rebuilding from full changelog replay",
                stacklevel=2,
            )
            return None
        digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
        if digest != manifest.get("payload_digest"):
            warnings.warn(
                f"{payload_path}: checkpoint payload digest mismatch; "
                "rebuilding from full changelog replay",
                stacklevel=2,
            )
            return None
        try:
            stream = io.BytesIO(payload)
            header = json.loads(read_frame(stream).decode("utf-8"))
            if (
                header.get("magic") != CHECKPOINT_MAGIC
                or header.get("version") != CHECKPOINT_VERSION
                or header.get("fingerprint") != expected
            ):
                raise ValueError(f"checkpoint header mismatch: {header}")
            maintainer = pickle.loads(read_frame(stream))
            seq = int(header["seq"])
        except (FrameError, ValueError, KeyError, pickle.PickleError, EOFError, AttributeError) as error:
            warnings.warn(
                f"{payload_path}: corrupt checkpoint payload ({error}); "
                "rebuilding from full changelog replay",
                stacklevel=2,
            )
            return None
        return maintainer, seq
