"""Freebase stand-in: the triple-scaling workload (paper Figure 8).

The paper streams up to 3 billion Freebase triples through RDFind with a
support threshold of 1,000 and conditions restricted to predicates.  This
generator produces a Freebase-shaped graph of any requested size: topics
carrying ``/type/object/type`` statements over a deep type hierarchy and
property triples drawn from a Zipf-weighted predicate vocabulary whose
domains create predicate-subsumption CINDs at scale.

Because the experiment sweeps the *number of triples*, the generator takes
``n_triples`` directly instead of a scale factor.
"""

from __future__ import annotations

from typing import List

from repro.datasets.synth import GraphBuilder
from repro.rdf.model import Dataset, EncodedDataset

#: Domains of the synthetic Freebase schema and their property counts.
_DOMAINS = (
    ("people.person", 14),
    ("film.film", 12),
    ("music.artist", 12),
    ("location.location", 10),
    ("book.book", 8),
    ("sports.athlete", 8),
    ("organization.organization", 8),
    ("biology.organism", 6),
    ("astronomy.celestial_object", 6),
    ("computer.software", 6),
)


def freebase(n_triples: int = 200_000, seed: int = 808, encoded: bool = False) -> "Dataset | EncodedDataset":
    """Generate a Freebase-like dataset with roughly ``n_triples`` triples.

    Every topic belongs to one domain; it receives one or two type
    statements (the domain type and, for half the topics, a subtype whose
    instances are exactly a subset — the structure behind the predicate
    CINDs Figure 8 counts) plus properties from its domain vocabulary.
    """
    builder = GraphBuilder(f"Freebase[{n_triples}]", seed)
    rng = builder.rng

    predicates_by_domain: List[List[str]] = []
    for domain, prop_count in _DOMAINS:
        predicates_by_domain.append(
            [f"/{domain.replace('.', '/')}/prop{index}" for index in range(prop_count)]
        )
    domain_chooser = builder.zipf(range(len(_DOMAINS)), alpha=0.8)

    # ~7 triples per topic on average.
    n_topics = max(10, n_triples // 7)
    object_pool = [f"/m/{index:07x}" for index in range(max(64, n_topics // 8))]
    object_chooser = builder.zipf(object_pool, alpha=1.0)

    topic_index = 0
    while len(builder) < n_triples:
        topic = f"/m/{topic_index:08x}"
        topic_index += 1
        domain_index = domain_chooser.choice()
        domain, _prop_count = _DOMAINS[domain_index]
        predicates = predicates_by_domain[domain_index]

        builder.add(topic, "/type/object/type", f"/{domain.replace('.', '/')}")
        if rng.random() < 0.5:
            subtype = rng.randrange(3)
            builder.add(
                topic, "/type/object/type",
                f"/{domain.replace('.', '/')}/sub{subtype}",
            )
        builder.add(topic, "/type/object/name", f'"Topic {topic_index}"')

        # Rare cross-references to *schema terms*: a type URI used as a
        # plain object violates the "o=<type> → p=/type/object/type"
        # association rules once it appears — so the AR count rises while
        # the data is small and erodes as it grows, the dynamic behind
        # Figure 8's AR peak-and-decline.
        if rng.random() < 0.0004:
            victim_domain, _count = _DOMAINS[rng.randrange(len(_DOMAINS))]
            builder.add(
                topic, "/common/topic/notable_for",
                f"/{victim_domain.replace('.', '/')}",
            )

        # Domain-specific properties: the first two predicates of each
        # domain apply to every instance (high-frequency conditions), the
        # rest follow a coin-flip long tail.
        builder.add(topic, predicates[0], object_chooser.choice())
        builder.add(topic, predicates[1], f'"{rng.randint(0, 10_000)}"')
        for predicate in predicates[2:]:
            if rng.random() < 0.35:
                target = (
                    object_chooser.choice()
                    if rng.random() < 0.6
                    else f'"literal {rng.randint(0, 10**6)}"'
                )
                builder.add(topic, predicate, target)

    return builder.build_encoded() if encoded else builder.build()
