"""RDFind facade: configuration, the end-to-end pipeline, and results.

This is the public entry point of the library::

    from repro import RDFind, RDFindConfig
    result = RDFind(RDFindConfig(support_threshold=25)).discover(dataset)
    for cind in result.cinds[:10]:
        print(result.render(cind))

The facade wires the three paper components together — FCDetector
(Section 5), CGCreator (Section 6), CINDExtractor + minimality
consolidation (Section 7) — on top of the simulated dataflow engine, and
exposes the ablation variants of Section 8.5 as configuration presets:

* :meth:`RDFindConfig.direct_extraction` — RDFind-DE: no capture-support
  pruning, no load balancing, no approximate-validate extraction.
* :meth:`RDFindConfig.no_frequent_conditions` — RDFind-NF: additionally
  skips everything related to frequent conditions (and hence ARs).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.capture_groups import create_capture_groups
from repro.core.cind import (
    CIND,
    AssociationRule,
    Capture,
    SupportedAR,
    SupportedCIND,
)
from repro.core.conditions import ConditionScope
from repro.core.extraction import (
    DEFAULT_CANDIDATE_BLOOM_BITS,
    DEFAULT_CANDIDATE_BLOOM_HASHES,
    ExtractionConfig,
    ExtractionStats,
    extract_broad_cinds,
)
from repro.core.frequent_conditions import (
    DEFAULT_FP_RATE,
    FrequentConditions,
    detect_frequent_conditions,
)
from repro.core.minimality import broad_cind_list, consolidate_pertinent
from repro.dataflow.checkpoint import (
    CHECKPOINT_MODES,
    CheckpointManager,
    dataset_digest,
    fingerprint_fields,
)
from repro.dataflow.engine import ExecutionEnvironment, record_cells
from repro.dataflow.planner import PLANNER_MODES, StagePlanner
from repro.dataflow.shuffle import SHUFFLE_MODES
from repro.dataflow.executors import EXECUTOR_NAMES
from repro.dataflow.faults import CRASH_MOMENTS, FaultPlan, RetryPolicy
from repro.dataflow.gcpause import gc_paused
from repro.dataflow.metrics import JobMetrics
from repro.rdf.model import Dataset, EncodedDataset, TermDictionary


@dataclass(frozen=True)
class RDFindConfig:
    """Configuration of a discovery run.

    Parameters
    ----------
    support_threshold:
        The broadness threshold ``h`` (Definition 3.1).  The paper
        recommends ~1000 for query minimization and ~25 for knowledge
        discovery.
    parallelism:
        Number of simulated workers.
    scope:
        Projection/condition attribute restrictions;
        :meth:`ConditionScope.predicates_only` reproduces the paper's
        Freebase setting.
    prune_infrequent_conditions:
        First lazy-pruning phase (FCDetector).  ``False`` = RDFind-NF.
    prune_capture_support / balance_dominant_groups:
        Second lazy-pruning phase and the dominant-group machinery.
        Both ``False`` = RDFind-DE.
    bloom_fp_rate:
        False-positive rate of the frequent-condition Bloom filters.
    candidate_bloom_bits / candidate_bloom_hashes:
        Geometry of the per-dominant-group candidate filters (the paper's
        64-byte setting is the default).
    memory_budget:
        Optional per-worker record budget; exceeding it raises
        :class:`~repro.dataflow.engine.SimulatedOutOfMemory` (used to
        reproduce the paper's reported algorithm failures).
    keep_broad_cinds:
        Also materialize the full broad (pre-minimality) CIND list on the
        result object.
    storage:
        Physical layout of the triple source: ``"encoded"`` (default)
        runs the counting stages directly over the dictionary-encoded id
        columns and charges the source against the memory budget by
        cell cost; ``"strings"`` keeps the record-at-a-time dataflow
        paths.  Both produce identical results.
    executor:
        Dataflow backend: ``"serial"`` (default) runs partition tasks
        inline; ``"process"`` runs them concurrently on a persistent
        process pool — real multi-core execution with byte-identical
        output.  Defaults from the ``RDFIND_EXECUTOR`` environment
        variable when set (how the CLI and CI propagate the choice).
    workers:
        Pool size for the ``process`` executor (defaults to
        ``min(parallelism, available cores)``; ``RDFIND_WORKERS``
        overrides when set).
    fault_seed:
        When set, build a seeded deterministic
        :class:`~repro.dataflow.faults.FaultPlan` and inject faults into
        every stage's tasks (transient errors, worker crashes,
        stragglers).  Recovery must reproduce the fault-free output
        byte-for-byte.  ``RDFIND_FAULTS`` supplies the default.
    fault_plan:
        An explicit plan (overrides ``fault_seed``); lets tests force
        specific faults at specific stages.
    max_retries:
        Retry budget per task (``RetryPolicy.max_retries``).  ``None``
        keeps the policy default.  ``RDFIND_MAX_RETRIES`` supplies the
        default.
    oom_recovery:
        Adaptive out-of-memory degradation: when a stage's task exceeds
        the ``memory_budget``, the engine splits the offending partition
        state by key hash (or spills the combiner) and retries at higher
        effective parallelism instead of failing the run.  Off by
        default — the paper's reported OOM failures stay reproducible.
        ``RDFIND_OOM_RECOVERY`` supplies the default.
    shuffle:
        Data plane for keyed operators: ``"inline"`` (in-memory buckets,
        the default and reference) or ``"spill"`` (disk-backed sorted
        runs under a byte-accurate budget, merged reduce-side; see
        :mod:`repro.dataflow.shuffle`).  Output is byte-identical either
        way.  ``RDFIND_SHUFFLE`` supplies the default.
    memory_budget_bytes:
        Per-worker byte cap on spill-mode shuffle state; overflowing
        state is cut to a sorted run on disk.  Only meaningful with
        ``shuffle="spill"``.  ``RDFIND_MEMORY_BUDGET_BYTES`` supplies the
        default.
    spill_dir:
        Directory under which spill workspaces are created (a fresh
        ``mkdtemp`` per run, removed when the run finishes — success or
        failure).  Defaults to the system temp dir; ``RDFIND_SPILL_DIR``
        supplies the default.
    checkpoint:
        Durable checkpointing granularity: ``"off"`` (default),
        ``"phase"`` (persist each of the three pipeline phases at its
        boundary), or ``"stage"`` (additionally persist sub-stage
        boundaries inside FCDetector and CINDExtractor).  See
        :mod:`repro.dataflow.checkpoint`.  ``RDFIND_CHECKPOINT`` supplies
        the default.
    checkpoint_dir:
        Where the job manifest and step files live.  Required when
        ``checkpoint`` is not ``"off"``; checkpoints are durable — they
        survive the run.  ``RDFIND_CHECKPOINT_DIR`` supplies the default.
    resume:
        Continue a killed job from its last durable boundary: the
        manifest in ``checkpoint_dir`` is validated against this
        config's fingerprint (mismatch is a typed error), completed
        steps are loaded instead of recomputed, and the final output is
        byte-identical to an uninterrupted run.  ``RDFIND_RESUME``
        supplies the default.
    crash_points:
        Injected *driver* crash points, each ``"<moment>:<step>"`` with
        moment ``before`` or ``after`` (e.g. ``"after:fc"``): the
        process aborts at that checkpoint boundary, once — the attempt
        count is persisted in the manifest, so the resumed run passes.
        ``RDFIND_CRASH_POINT`` supplies the default (comma-separated).
    task_timeout_seconds:
        Per-task wall-clock bound under the ``process`` executor; a hung
        task becomes a retryable transient fault instead of hanging the
        job.  Off by default; ignored by ``serial``.
        ``RDFIND_TASK_TIMEOUT_SECONDS`` supplies the default.
    planner:
        Cost-based stage planning: ``"off"`` (default) always runs the
        record-at-a-time/driver-columnar defaults; ``"static"`` always
        picks the vectorized batch kernels; ``"adaptive"`` chooses per
        stage from input sizes and calibrated per-stage costs (kernel vs
        record path, combiner on/off, inline vs spill shuffle, batch
        count).  Every choice is byte-identical on the wire — the
        planner only trades wall-clock.  Decisions are stamped into the
        stage metrics (``summary()`` shows what was picked and why).
        ``RDFIND_PLANNER`` supplies the default.
    """

    support_threshold: int = 25
    parallelism: int = 4
    scope: ConditionScope = field(default_factory=ConditionScope.full)
    prune_infrequent_conditions: bool = True
    prune_capture_support: bool = True
    balance_dominant_groups: bool = True
    bloom_fp_rate: float = DEFAULT_FP_RATE
    candidate_bloom_bits: int = DEFAULT_CANDIDATE_BLOOM_BITS
    candidate_bloom_hashes: int = DEFAULT_CANDIDATE_BLOOM_HASHES
    memory_budget: Optional[int] = None
    keep_broad_cinds: bool = False
    storage: str = "encoded"
    executor: str = field(
        default_factory=lambda: os.environ.get("RDFIND_EXECUTOR", "serial")
    )
    workers: Optional[int] = field(
        default_factory=lambda: (
            int(os.environ["RDFIND_WORKERS"])
            if os.environ.get("RDFIND_WORKERS")
            else None
        )
    )
    fault_seed: Optional[int] = field(
        default_factory=lambda: (
            int(os.environ["RDFIND_FAULTS"])
            if os.environ.get("RDFIND_FAULTS")
            else None
        )
    )
    fault_plan: Optional[FaultPlan] = None
    max_retries: Optional[int] = field(
        default_factory=lambda: (
            int(os.environ["RDFIND_MAX_RETRIES"])
            if os.environ.get("RDFIND_MAX_RETRIES")
            else None
        )
    )
    oom_recovery: bool = field(
        default_factory=lambda: os.environ.get("RDFIND_OOM_RECOVERY", "").lower()
        in ("1", "true", "yes", "on")
    )
    shuffle: str = field(
        default_factory=lambda: os.environ.get("RDFIND_SHUFFLE", "inline")
    )
    memory_budget_bytes: Optional[int] = field(
        default_factory=lambda: (
            int(os.environ["RDFIND_MEMORY_BUDGET_BYTES"])
            if os.environ.get("RDFIND_MEMORY_BUDGET_BYTES")
            else None
        )
    )
    spill_dir: Optional[str] = field(
        default_factory=lambda: os.environ.get("RDFIND_SPILL_DIR") or None
    )
    checkpoint: str = field(
        default_factory=lambda: os.environ.get("RDFIND_CHECKPOINT", "off")
    )
    checkpoint_dir: Optional[str] = field(
        default_factory=lambda: os.environ.get("RDFIND_CHECKPOINT_DIR") or None
    )
    resume: bool = field(
        default_factory=lambda: os.environ.get("RDFIND_RESUME", "").lower()
        in ("1", "true", "yes", "on")
    )
    crash_points: Tuple[str, ...] = field(
        default_factory=lambda: tuple(
            point
            for point in os.environ.get("RDFIND_CRASH_POINT", "").split(",")
            if point
        )
    )
    task_timeout_seconds: Optional[float] = field(
        default_factory=lambda: (
            float(os.environ["RDFIND_TASK_TIMEOUT_SECONDS"])
            if os.environ.get("RDFIND_TASK_TIMEOUT_SECONDS")
            else None
        )
    )
    planner: str = field(
        default_factory=lambda: os.environ.get("RDFIND_PLANNER", "off")
    )

    def __post_init__(self) -> None:
        if self.support_threshold < 1:
            raise ValueError(
                f"support threshold must be >= 1, got {self.support_threshold}"
            )
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.storage not in ("strings", "encoded"):
            raise ValueError(
                f"storage must be 'strings' or 'encoded', got {self.storage!r}"
            )
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_NAMES}, got {self.executor!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.shuffle not in SHUFFLE_MODES:
            raise ValueError(
                f"shuffle must be one of {SHUFFLE_MODES}, got {self.shuffle!r}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ValueError(
                f"memory_budget_bytes must be >= 1, got {self.memory_budget_bytes}"
            )
        if self.checkpoint not in CHECKPOINT_MODES:
            raise ValueError(
                f"checkpoint must be one of {CHECKPOINT_MODES}, "
                f"got {self.checkpoint!r}"
            )
        if self.checkpoint != "off" and not self.checkpoint_dir:
            raise ValueError(
                "checkpoint_dir is required when checkpointing is on "
                "(set --checkpoint-dir / RDFIND_CHECKPOINT_DIR)"
            )
        if self.resume and self.checkpoint == "off":
            raise ValueError(
                "resume requires checkpointing "
                "(set --checkpoint phase|stage)"
            )
        for point in self.crash_points:
            moment, _separator, step = point.partition(":")
            if moment not in CRASH_MOMENTS or not step:
                raise ValueError(
                    f"bad crash point {point!r} "
                    f"(expected '<{'|'.join(CRASH_MOMENTS)}>:<step>')"
                )
        if self.crash_points and self.checkpoint == "off":
            raise ValueError(
                "crash points fire at checkpoint boundaries; "
                "they require --checkpoint phase|stage"
            )
        if self.task_timeout_seconds is not None and self.task_timeout_seconds <= 0:
            raise ValueError(
                f"task_timeout_seconds must be > 0, got {self.task_timeout_seconds}"
            )
        if self.planner not in PLANNER_MODES:
            raise ValueError(
                f"planner must be one of {PLANNER_MODES}, got {self.planner!r}"
            )

    def effective_fault_plan(self) -> Optional[FaultPlan]:
        """The plan to inject: explicit plan wins, else seeded, else none.

        Configured ``crash_points`` are merged into the plan's forced
        driver crashes either way — they are how the CLI (and CI's
        crash-resume smoke leg) kill a driver at a specific boundary
        without also turning on task-level fault rates.
        """
        plan = self.fault_plan
        if plan is None and self.fault_seed is not None:
            plan = FaultPlan(seed=self.fault_seed)
        crashes = tuple(
            (point.partition(":")[0], point.partition(":")[2])
            for point in self.crash_points
        )
        if crashes:
            if plan is None:
                plan = FaultPlan(
                    seed=0,
                    transient_rate=0.0,
                    crash_rate=0.0,
                    straggler_rate=0.0,
                    driver_crashes=crashes,
                )
            else:
                plan = replace(
                    plan, driver_crashes=plan.driver_crashes + crashes
                )
        return plan

    def effective_retry_policy(self) -> Optional[RetryPolicy]:
        """A policy honouring ``max_retries``, or ``None`` for the default."""
        if self.max_retries is None:
            return None
        return RetryPolicy(max_retries=self.max_retries)

    @classmethod
    def direct_extraction(cls, **overrides) -> "RDFindConfig":
        """The RDFind-DE ablation (Section 8.5): direct extraction."""
        overrides.setdefault("prune_capture_support", False)
        overrides.setdefault("balance_dominant_groups", False)
        return cls(**overrides)

    @classmethod
    def no_frequent_conditions(cls, **overrides) -> "RDFindConfig":
        """The RDFind-NF ablation: DE plus no frequent-condition pruning."""
        overrides.setdefault("prune_infrequent_conditions", False)
        return cls.direct_extraction(**overrides)

    def with_support(self, h: int) -> "RDFindConfig":
        """A copy with a different support threshold."""
        return replace(self, support_threshold=h)

    @property
    def variant_name(self) -> str:
        """Human-readable algorithm variant label."""
        if not self.prune_infrequent_conditions:
            return "RDFind-NF"
        if not (self.prune_capture_support or self.balance_dominant_groups):
            return "RDFind-DE"
        return "RDFind"


@dataclass
class DiscoveryStats:
    """Headline counts of a discovery run."""

    num_triples: int = 0
    num_frequent_unary: int = 0
    num_frequent_binary: int = 0
    num_association_rules: int = 0
    num_capture_groups: int = 0
    num_broad_cinds: int = 0
    num_pertinent_cinds: int = 0
    extraction: ExtractionStats = field(default_factory=ExtractionStats)


@dataclass
class DiscoveryResult:
    """Everything a discovery run produced.

    ``cinds`` are the pertinent CINDs (broad and minimal, trivial and
    AR-implied ones excluded); ``association_rules`` complement them — an
    AR stands in for the CINDs it implies (Section 3.3).
    """

    cinds: List[SupportedCIND]
    association_rules: List[SupportedAR]
    dictionary: TermDictionary
    config: RDFindConfig
    stats: DiscoveryStats
    metrics: JobMetrics
    elapsed_seconds: float = 0.0
    broad_cinds: Optional[List[SupportedCIND]] = None

    @property
    def support_threshold(self) -> int:
        """The ``h`` the run used."""
        return self.config.support_threshold

    def render(self, item: Union[SupportedCIND, SupportedAR, CIND, AssociationRule, Capture]) -> str:
        """Render any result item with this run's term dictionary."""
        return item.render(self.dictionary)

    def render_cinds(self, limit: Optional[int] = None) -> List[str]:
        """Rendered pertinent CINDs (most supported first)."""
        rows = self.cinds if limit is None else self.cinds[:limit]
        return [self.render(row) for row in rows]

    def render_association_rules(self, limit: Optional[int] = None) -> List[str]:
        """Rendered association rules (most supported first)."""
        rows = (
            self.association_rules
            if limit is None
            else self.association_rules[:limit]
        )
        return [self.render(row) for row in rows]

    def cinds_with_min_support(self, h: int) -> List[SupportedCIND]:
        """Pertinent CINDs whose support is at least ``h``."""
        return [row for row in self.cinds if row.support >= h]

    def summary(self) -> Dict[str, float]:
        """Headline numbers (handy as a benchmark row)."""
        return {
            "variant": self.config.variant_name,
            "h": self.support_threshold,
            "triples": self.stats.num_triples,
            "pertinent_cinds": len(self.cinds),
            "association_rules": len(self.association_rules),
            "broad_cinds": self.stats.num_broad_cinds,
            "elapsed_seconds": self.elapsed_seconds,
            "simulated_parallel_seconds": self.metrics.simulated_parallel_seconds,
            "executor": self.config.executor,
            "workers": self.metrics.workers,
        }

    def __repr__(self) -> str:
        return (
            f"<DiscoveryResult {self.config.variant_name} h={self.support_threshold}: "
            f"{len(self.cinds)} pertinent CINDs, "
            f"{len(self.association_rules)} ARs in {self.elapsed_seconds:.2f}s>"
        )


class RDFind:
    """The RDFind discovery system (paper Figure 3)."""

    def __init__(self, config: Optional[RDFindConfig] = None) -> None:
        self.config = config if config is not None else RDFindConfig()

    def discover(
        self,
        dataset: Union[Dataset, EncodedDataset, Sequence],
        h: Optional[int] = None,
        metrics: Optional[JobMetrics] = None,
    ) -> DiscoveryResult:
        """Discover all pertinent CINDs and ARs in ``dataset``.

        ``h`` overrides the configured support threshold for this run.
        Accepts a :class:`Dataset`, an :class:`EncodedDataset`, or any
        sequence of ``(s, p, o)`` string tuples.  ``metrics`` optionally
        supplies the :class:`JobMetrics` the run accumulates into, so an
        observer holding the same object can watch progress live (the
        job server's worker streams it as ``progress.json``); the result
        carries the same instance either way.
        """
        config = self.config if h is None else self.config.with_support(h)
        encoded = _as_encoded(dataset)
        with gc_paused():
            return self._discover_encoded(encoded, config, metrics=metrics)

    def _discover_encoded(
        self,
        encoded: EncodedDataset,
        config: RDFindConfig,
        metrics: Optional[JobMetrics] = None,
    ) -> DiscoveryResult:
        started = time.perf_counter()
        env = ExecutionEnvironment(
            parallelism=config.parallelism,
            memory_budget=config.memory_budget,
            name=f"{config.variant_name}(h={config.support_threshold})",
            executor=config.executor,
            workers=config.workers,
            fault_plan=config.effective_fault_plan(),
            retry_policy=config.effective_retry_policy(),
            oom_recovery=config.oom_recovery,
            shuffle=config.shuffle,
            memory_budget_bytes=config.memory_budget_bytes,
            spill_dir=config.spill_dir,
            task_timeout_seconds=config.task_timeout_seconds,
            metrics=metrics,
        )
        if config.planner != "off":
            # The planner only trades wall-clock: every path it may pick
            # is byte-identical to the default, so it is deliberately NOT
            # part of the checkpoint fingerprint.  Kernels are disabled
            # under a record-count memory budget — the record path is the
            # oracle those budget semantics are defined against.
            env.planner = StagePlanner(
                config.planner,
                parallelism=env.parallelism,
                env_shuffle=config.shuffle,
                memory_budget_bytes=config.memory_budget_bytes,
                allow_kernels=config.memory_budget is None,
            )
            env.metrics.planner = config.planner
        manager: Optional[CheckpointManager] = None
        try:
            if config.checkpoint != "off":
                manager = CheckpointManager(
                    config.checkpoint_dir,
                    config.checkpoint,
                    fingerprint=checkpoint_fingerprint(config, encoded),
                    resume=config.resume,
                    fault_plan=config.effective_fault_plan(),
                    metrics=env.metrics,
                )
                manager.open()
                env.checkpoint = manager

            use_columns = config.storage == "encoded"
            triples = env.from_collection(
                encoded,
                name="source/triples",
                cost_fn=record_cells if use_columns else None,
            )

            def compute_frequent() -> FrequentConditions:
                return detect_frequent_conditions(
                    env,
                    triples,
                    h=config.support_threshold,
                    scope=config.scope,
                    fp_rate=config.bloom_fp_rate,
                    columns=encoded if use_columns else None,
                )

            frequent: Optional[FrequentConditions] = None
            if config.prune_infrequent_conditions:
                if manager is not None:
                    frequent = manager.step("fc", "phase", compute_frequent)
                else:
                    frequent = compute_frequent()

            extraction_config = ExtractionConfig(
                h=config.support_threshold,
                prune_capture_support=config.prune_capture_support,
                balance_dominant_groups=config.balance_dominant_groups,
                candidate_bloom_bits=config.candidate_bloom_bits,
                candidate_bloom_hashes=config.candidate_bloom_hashes,
            )

            def compute_groups():
                batches = None
                plan = None
                planner = env.planner
                if planner is not None and use_columns:
                    plan = planner.plan_kernel("cg/group-by-value", len(encoded))
                    if plan.use_kernel:
                        from repro.dataflow.kernels import batch_dataset

                        # Pinned to `parallelism` batches: batch i is
                        # partition i of the triples dataset, so the
                        # kernel's emission order is the record path's.
                        batches = batch_dataset(env, encoded, name="cg/batches")
                groups = create_capture_groups(
                    env,
                    triples,
                    scope=config.scope,
                    frequent=frequent,
                    batches=batches,
                )
                if plan is not None and batches is None:
                    # The kernel path stamps its decision inside
                    # create_capture_groups; record the "stay on the
                    # record path" verdict too, so summaries show why.
                    planner.annotate(env.metrics, "cg/group-by-value", plan)
                return groups

            def compute_extraction():
                # Nesting the cg boundary inside the ex compute means a
                # resume whose ex checkpoint is intact never touches
                # CGCreator at all — the whole prefix is skipped.
                if manager is not None:
                    groups = manager.step_dataset(
                        "cg", "phase", env, compute_groups
                    )
                else:
                    groups = compute_groups()
                return extract_broad_cinds(env, groups, extraction_config)

            if manager is not None:
                broad, extraction_stats = manager.step(
                    "ex", "phase", compute_extraction
                )
            else:
                broad, extraction_stats = compute_extraction()
            pertinent = consolidate_pertinent(broad)
        finally:
            if manager is not None:
                manager.close()
                env.checkpoint = None
            env.close()

        elapsed = time.perf_counter() - started
        stats = DiscoveryStats(
            num_triples=len(encoded),
            num_frequent_unary=len(frequent.unary_counts) if frequent else 0,
            num_frequent_binary=len(frequent.binary_counts) if frequent else 0,
            num_association_rules=len(frequent.association_rules) if frequent else 0,
            num_capture_groups=extraction_stats.groups_total,
            num_broad_cinds=_count_non_trivial_broad(broad),
            num_pertinent_cinds=len(pertinent),
            extraction=extraction_stats,
        )
        return DiscoveryResult(
            cinds=pertinent,
            association_rules=list(frequent.association_rules) if frequent else [],
            dictionary=encoded.dictionary,
            config=config,
            stats=stats,
            metrics=env.metrics,
            elapsed_seconds=elapsed,
            broad_cinds=broad_cind_list(broad) if config.keep_broad_cinds else None,
        )


def checkpoint_fingerprint(config: RDFindConfig, encoded: EncodedDataset) -> str:
    """The job identity a checkpoint belongs to (manifest fingerprint).

    Covers everything that shapes the persisted boundary values: the
    dataset content (id columns + dictionary), ``h``, the scope, the
    variant flags, bloom geometry, partitioning, storage layout, the
    executor backend, and the task-fault seed/rates.  Deliberately
    excluded: driver crash points (the resume launch legitimately drops
    ``--crash-point``), retry/backoff knobs, the spill plane, and the
    stage planner — none of them change any boundary's value (every
    planner path is byte-identical to the default).
    """
    plan = config.effective_fault_plan()
    injects_task_faults = plan is not None and (
        plan.transient_rate
        or plan.crash_rate
        or plan.straggler_rate
        or plan.oom_rate
        or plan.forced
    )
    fault_key = ""
    if injects_task_faults:
        # A plan synthesized purely to carry --crash-point injects no task
        # faults and must fingerprint like no plan at all, or the resume
        # launch (which drops --crash-point) would be rejected.
        fault_key = repr(
            (
                plan.seed,
                plan.transient_rate,
                plan.crash_rate,
                plan.straggler_rate,
                plan.oom_rate,
                plan.fire_attempts,
                plan.forced,
            )
        )
    scope = config.scope
    scope_key = repr(
        (
            sorted(str(attr) for attr in scope.projection_attrs),
            sorted(str(attr) for attr in scope.condition_attrs),
            scope.allow_binary,
        )
    )
    return fingerprint_fields(
        dataset=dataset_digest(encoded),
        h=config.support_threshold,
        parallelism=config.parallelism,
        scope=scope_key,
        prune_infrequent_conditions=config.prune_infrequent_conditions,
        prune_capture_support=config.prune_capture_support,
        balance_dominant_groups=config.balance_dominant_groups,
        bloom_fp_rate=config.bloom_fp_rate,
        candidate_bloom_bits=config.candidate_bloom_bits,
        candidate_bloom_hashes=config.candidate_bloom_hashes,
        memory_budget=config.memory_budget,
        storage=config.storage,
        executor=config.executor,
        faults=fault_key,
    )


def _count_non_trivial_broad(broad) -> int:
    count = 0
    for dependent, (refs, _support) in broad.items():
        for referenced in refs:
            if not CIND(dependent, referenced).is_trivial():
                count += 1
    return count


def _as_encoded(dataset: Union[Dataset, EncodedDataset, Sequence]) -> EncodedDataset:
    if isinstance(dataset, EncodedDataset):
        return dataset
    if isinstance(dataset, Dataset):
        return dataset.encode()
    return Dataset.from_tuples(dataset).encode()


def find_pertinent_cinds(
    dataset: Union[Dataset, EncodedDataset, Sequence],
    support_threshold: int = 25,
    **config_overrides,
) -> DiscoveryResult:
    """One-call convenience wrapper around :class:`RDFind`.

    >>> result = find_pertinent_cinds(triples, support_threshold=2)
    """
    config = RDFindConfig(support_threshold=support_threshold, **config_overrides)
    return RDFind(config).discover(dataset)
