"""Execution metrics for the simulated dataflow engine.

Each operator application is a *stage*.  A stage records, per simulated
worker (partition), how many records went in and out and how long the
worker's share took on the real CPU.  From these we derive:

* ``simulated_parallel_seconds`` — the wall-clock a real cluster with that
  many workers would need, modelled as the sum over stages of the slowest
  partition.  This is the quantity plotted in the paper's scale-out
  experiment (Figure 9): skewed stages do not get faster with more
  workers, balanced ones do.
* ``wall_clock_seconds`` — the *real* elapsed time the driver measured
  around each stage's executor run.  Under the ``serial`` backend this
  tracks ``total_cpu_seconds``; under the ``process`` backend it shrinks
  toward ``simulated_parallel_seconds`` as tasks actually overlap on real
  cores — the difference between the two is the observable speedup.
* ``total_cpu_seconds`` — the aggregate work, independent of parallelism.
* ``shuffled_records`` / ``broadcast_records`` — network volume proxies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class StageMetrics:
    """Per-partition accounting for one operator application."""

    name: str
    partition_seconds: List[float] = field(default_factory=list)
    records_in: List[int] = field(default_factory=list)
    records_out: List[int] = field(default_factory=list)
    shuffled_records: int = 0
    broadcast_records: int = 0
    #: Largest combine-state cost any worker reached (fused operators).
    peak_state_cost: int = 0
    #: Real elapsed driver time for this stage's executor run(s).
    wall_seconds: float = 0.0
    #: Task re-executions the executor performed for this stage
    #: (transient failures, worker crashes — see repro.dataflow.faults).
    retries: int = 0
    #: Faults a seeded FaultPlan injected into this stage's tasks.
    faults_injected: int = 0
    #: Times the engine recovered this stage from a SimulatedOutOfMemory
    #: by splitting partitions / spilling the combiner (--oom-recovery).
    recovered_oom_splits: int = 0
    #: Sorted runs this stage's workers cut to disk (--shuffle spill).
    spilled_runs: int = 0
    #: Bytes written to spill-run files by this stage's workers.
    spilled_bytes: int = 0
    #: Intermediate merge passes the reduce side needed when a partition
    #: held more runs than the merge fan-in (0 = single-pass merge).
    merge_passes: int = 0
    #: Largest estimated in-memory state, in bytes, any spill-mode worker
    #: held before cutting a run (bounded by the byte budget).
    peak_state_bytes: int = 0
    #: Execution strategy the stage planner chose for this stage
    #: ("kernel", "record", "combine-off", ...; empty = no planner).
    planner_choice: str = ""
    #: Why the planner chose it (cost evidence or rule).
    planner_reason: str = ""
    #: Gen-0 GC passes the stage's gc-pause wrapper suppressed across
    #: all of its workers (repro.dataflow.gcpause.stage_gc_pause).
    gc_suppressed_collections: int = 0

    @property
    def parallel_seconds(self) -> float:
        """Time the slowest partition spent — the stage's simulated latency."""
        return max(self.partition_seconds, default=0.0)

    @property
    def cpu_seconds(self) -> float:
        """Total CPU time across all partitions."""
        return sum(self.partition_seconds)

    @property
    def total_in(self) -> int:
        """Records consumed across all partitions."""
        return sum(self.records_in)

    @property
    def total_out(self) -> int:
        """Records produced across all partitions."""
        return sum(self.records_out)

    @property
    def skew(self) -> float:
        """Max/mean partition time; 1.0 means perfectly balanced."""
        times = [t for t in self.partition_seconds if t > 0]
        if not times:
            return 1.0
        mean = sum(times) / len(times)
        if mean == 0:
            return 1.0
        return max(times) / mean

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering of the stage (raw fields plus deriveds).

        This is the wire format the job server streams as live progress
        (``GET /jobs/<id>`` → ``progress.stages``): every value is a
        plain int/float/str/list, so ``json.dumps`` works directly and
        no consumer ever needs to parse :meth:`describe` strings.
        """
        return {
            "name": self.name,
            "partition_seconds": list(self.partition_seconds),
            "records_in": list(self.records_in),
            "records_out": list(self.records_out),
            "shuffled_records": self.shuffled_records,
            "broadcast_records": self.broadcast_records,
            "peak_state_cost": self.peak_state_cost,
            "wall_seconds": self.wall_seconds,
            "retries": self.retries,
            "faults_injected": self.faults_injected,
            "recovered_oom_splits": self.recovered_oom_splits,
            "spilled_runs": self.spilled_runs,
            "spilled_bytes": self.spilled_bytes,
            "merge_passes": self.merge_passes,
            "peak_state_bytes": self.peak_state_bytes,
            "planner_choice": self.planner_choice,
            "planner_reason": self.planner_reason,
            "gc_suppressed_collections": self.gc_suppressed_collections,
            "parallel_seconds": self.parallel_seconds,
            "cpu_seconds": self.cpu_seconds,
            "total_in": self.total_in,
            "total_out": self.total_out,
            "skew": self.skew,
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"{self.name}: in={self.total_in} out={self.total_out} "
            f"par={self.parallel_seconds * 1000:.1f}ms cpu={self.cpu_seconds * 1000:.1f}ms "
            f"wall={self.wall_seconds * 1000:.1f}ms "
            f"skew={self.skew:.2f} shuffle={self.shuffled_records} "
            f"bcast={self.broadcast_records}"
        )
        if self.faults_injected or self.retries or self.recovered_oom_splits:
            line += (
                f" faults={self.faults_injected} retries={self.retries} "
                f"oom-splits={self.recovered_oom_splits}"
            )
        if self.spilled_runs or self.merge_passes:
            line += (
                f" spills={self.spilled_runs} "
                f"spill-bytes={self.spilled_bytes} "
                f"merge-passes={self.merge_passes}"
            )
        if self.gc_suppressed_collections:
            line += f" gc-suppressed={self.gc_suppressed_collections}"
        if self.planner_choice:
            line += f" plan={self.planner_choice} ({self.planner_reason})"
        return line


@dataclass
class JobMetrics:
    """Accumulated metrics for one dataflow job."""

    job_name: str = ""
    parallelism: int = 1
    #: Executor backend the job ran on ("serial" or "process").
    executor: str = "serial"
    #: Worker-process count of the backend (1 for serial).
    workers: int = 1
    #: Framed bytes written to checkpoint step files (--checkpoint).
    checkpoint_bytes: int = 0
    #: Driver time spent persisting and restoring checkpoints.
    checkpoint_seconds: float = 0.0
    #: Pipeline boundaries restored from a checkpoint instead of
    #: recomputed (--resume) — the proof that completed work was skipped.
    resumed_stages: int = 0
    #: Stage-planner mode the job ran under ("off", "static", "adaptive").
    planner: str = "off"
    stages: List[StageMetrics] = field(default_factory=list)

    def new_stage(self, name: str) -> StageMetrics:
        """Open (and register) a stage record."""
        stage = StageMetrics(name=name)
        self.stages.append(stage)
        return stage

    @property
    def simulated_parallel_seconds(self) -> float:
        """Simulated cluster wall-clock: sum of slowest-partition times."""
        return sum(stage.parallel_seconds for stage in self.stages)

    @property
    def wall_clock_seconds(self) -> float:
        """Real elapsed time across all stages (driver-measured)."""
        return sum(stage.wall_seconds for stage in self.stages)

    @property
    def total_cpu_seconds(self) -> float:
        """Total CPU time across all stages and partitions."""
        return sum(stage.cpu_seconds for stage in self.stages)

    @property
    def shuffled_records(self) -> int:
        """Total records moved across simulated workers."""
        return sum(stage.shuffled_records for stage in self.stages)

    @property
    def broadcast_records(self) -> int:
        """Total record-copies broadcast to workers."""
        return sum(stage.broadcast_records for stage in self.stages)

    @property
    def total_retries(self) -> int:
        """Task re-executions across all stages (fault recovery)."""
        return sum(stage.retries for stage in self.stages)

    @property
    def total_faults_injected(self) -> int:
        """Injected faults across all stages (seeded FaultPlan)."""
        return sum(stage.faults_injected for stage in self.stages)

    @property
    def total_recovered_oom_splits(self) -> int:
        """Adaptive OOM recoveries across all stages (--oom-recovery)."""
        return sum(stage.recovered_oom_splits for stage in self.stages)

    @property
    def total_spilled_runs(self) -> int:
        """Sorted runs cut to disk across all stages (--shuffle spill)."""
        return sum(stage.spilled_runs for stage in self.stages)

    @property
    def total_spilled_bytes(self) -> int:
        """Bytes written to spill-run files across all stages."""
        return sum(stage.spilled_bytes for stage in self.stages)

    @property
    def total_merge_passes(self) -> int:
        """Intermediate merge passes across all reduce-side stages."""
        return sum(stage.merge_passes for stage in self.stages)

    @property
    def max_peak_state_bytes(self) -> int:
        """Largest estimated spill-mode worker state over all stages."""
        return max((stage.peak_state_bytes for stage in self.stages), default=0)

    @property
    def max_skew(self) -> float:
        """Worst max/mean partition-time ratio over all stages."""
        return max((stage.skew for stage in self.stages), default=1.0)

    @property
    def planner_decisions(self) -> int:
        """Stages the planner stamped a decision onto."""
        return sum(1 for stage in self.stages if stage.planner_choice)

    @property
    def total_gc_suppressed_collections(self) -> int:
        """GC passes suppressed by stage pauses across all stages."""
        return sum(stage.gc_suppressed_collections for stage in self.stages)

    def stage_by_name(self, name: str) -> Optional[StageMetrics]:
        """First stage with the given name, if any."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def merge_prefixed(self, other: "JobMetrics", prefix: str) -> None:
        """Absorb another job's stages under a name prefix."""
        for stage in other.stages:
            absorbed = StageMetrics(
                name=f"{prefix}{stage.name}",
                partition_seconds=list(stage.partition_seconds),
                records_in=list(stage.records_in),
                records_out=list(stage.records_out),
                shuffled_records=stage.shuffled_records,
                broadcast_records=stage.broadcast_records,
                peak_state_cost=stage.peak_state_cost,
                wall_seconds=stage.wall_seconds,
                retries=stage.retries,
                faults_injected=stage.faults_injected,
                recovered_oom_splits=stage.recovered_oom_splits,
                spilled_runs=stage.spilled_runs,
                spilled_bytes=stage.spilled_bytes,
                merge_passes=stage.merge_passes,
                peak_state_bytes=stage.peak_state_bytes,
                planner_choice=stage.planner_choice,
                planner_reason=stage.planner_reason,
                gc_suppressed_collections=stage.gc_suppressed_collections,
            )
            self.stages.append(absorbed)

    def to_dict(self) -> Dict[str, object]:
        """The whole job as a JSON-safe dict: identity, totals, stages.

        ``summary`` holds the flat headline numbers (same keys
        :meth:`summary` has always returned); ``stages`` renders every
        :class:`StageMetrics` through its own :meth:`StageMetrics.to_dict`.
        The job server persists and streams exactly this structure
        (``progress.json`` / ``metrics.json``), so progress consumers
        never parse human-oriented :meth:`describe` output.
        """
        return {
            "job_name": self.job_name,
            "summary": {
                "parallelism": self.parallelism,
                "executor": self.executor,
                "workers": self.workers,
                "stages": len(self.stages),
                "simulated_parallel_seconds": self.simulated_parallel_seconds,
                "wall_clock_seconds": self.wall_clock_seconds,
                "total_cpu_seconds": self.total_cpu_seconds,
                "shuffled_records": self.shuffled_records,
                "broadcast_records": self.broadcast_records,
                "skew": self.max_skew,
                "retries": self.total_retries,
                "faults_injected": self.total_faults_injected,
                "recovered_oom_splits": self.total_recovered_oom_splits,
                "spilled_runs": self.total_spilled_runs,
                "spilled_bytes": self.total_spilled_bytes,
                "merge_passes": self.total_merge_passes,
                "peak_state_bytes": self.max_peak_state_bytes,
                "checkpoint_bytes": self.checkpoint_bytes,
                "checkpoint_seconds": self.checkpoint_seconds,
                "resumed_stages": self.resumed_stages,
                "planner": self.planner,
                "planner_decisions": self.planner_decisions,
                "gc_suppressed_collections": self.total_gc_suppressed_collections,
            },
            "stages": [stage.to_dict() for stage in self.stages],
        }

    def summary(self) -> Dict[str, float]:
        """Headline numbers as a dict (useful for benchmark rows).

        ``executor`` and ``workers`` identify the backend a row was
        measured on (serial and process rows are otherwise
        indistinguishable in benchmark JSON); ``skew`` is the worst
        per-stage max/mean partition-time ratio.  This is the
        ``summary`` block of :meth:`to_dict`.
        """
        return dict(self.to_dict()["summary"])

    def describe(self) -> str:
        """Multi-line report of all stages plus totals."""
        lines = [
            f"job {self.job_name!r} (parallelism={self.parallelism}, "
            f"executor={self.executor}, workers={self.workers})"
        ]
        lines.extend("  " + stage.describe() for stage in self.stages)
        total = (
            f"  TOTAL: par={self.simulated_parallel_seconds * 1000:.1f}ms "
            f"cpu={self.total_cpu_seconds * 1000:.1f}ms "
            f"wall={self.wall_clock_seconds * 1000:.1f}ms "
            f"shuffle={self.shuffled_records} bcast={self.broadcast_records}"
        )
        if (
            self.total_faults_injected
            or self.total_retries
            or self.total_recovered_oom_splits
        ):
            total += (
                f" faults={self.total_faults_injected} "
                f"retries={self.total_retries} "
                f"oom-splits={self.total_recovered_oom_splits}"
            )
        if self.total_spilled_runs or self.total_merge_passes:
            total += (
                f" spills={self.total_spilled_runs} "
                f"spill-bytes={self.total_spilled_bytes} "
                f"merge-passes={self.total_merge_passes}"
            )
        if self.checkpoint_bytes or self.resumed_stages:
            total += (
                f" ckpt-bytes={self.checkpoint_bytes} "
                f"ckpt-seconds={self.checkpoint_seconds:.3f} "
                f"resumed={self.resumed_stages}"
            )
        if self.planner != "off" or self.planner_decisions:
            total += (
                f" planner={self.planner} "
                f"decisions={self.planner_decisions}"
            )
        if self.total_gc_suppressed_collections:
            total += f" gc-suppressed={self.total_gc_suppressed_collections}"
        lines.append(total)
        return "\n".join(lines)
