"""Columnar dictionary-encoded datasets.

An :class:`EncodedDataset` stores an RDF dataset as three parallel
``array`` columns of term ids — the s, p, and o columns — plus the
:class:`~repro.storage.dictionary.TermDictionary` that renders ids back
to strings.  Compared to a list of per-triple objects this removes one
Python object and two pointers per triple (a triple is 12 or 24 bytes of
column payload, depending on the id width), and it lets whole-column
operations (frequency counting, distinct-value scans) run as single C
loops over the arrays instead of per-triple Python iterations.  That is
the standard design for in-memory RDF engines (dictionary encoding +
column storage, cf. the compressed vertical-partitioning literature in
PAPERS.md) and is the representation the discovery hot path consumes.

Columns start at the 32-bit typecode ``'i'`` and widen to 64-bit ``'q'``
automatically if the dictionary ever outgrows 32-bit ids.
"""

from __future__ import annotations

from array import array
from collections import Counter
from itertools import starmap
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.storage.dictionary import INT32_MAX, EncodedTriple, TermDictionary

#: Width of one encoded triple in budget "cells" (one cell per term id).
TRIPLE_CELLS = 3


def packed_column_nbytes(column: Sequence[int]) -> int:
    """Bytes a non-negative id column occupies when bit-packed.

    The fixed-width packing of
    :class:`repro.storage.compressed.BitPackedColumn`: every value at the
    bits the column maximum needs (at least 1), rounded up to whole
    bytes.  Defined here (not in ``compressed``) so pricing call sites
    can estimate packed sizes without importing the compression layer.
    """
    count = len(column)
    if not count:
        return 0
    width = max(1, max(column).bit_length())
    return (count * width + 7) // 8


class TripleBatch:
    """One worker's slice of an :class:`EncodedDataset`, kept columnar.

    A batch holds three parallel ``array`` columns — the s, p, o ids of
    the triples one dataflow partition would see record-at-a-time.  This
    is the unit the vectorized operator kernels consume
    (:mod:`repro.dataflow.kernels`): a kernel makes one pass over the id
    arrays instead of the engine materializing a Python-object record per
    triple.

    Budget accounting is duck-typed: ``budget_cells`` prices the batch
    for the record-count budget (:func:`repro.dataflow.engine.record_cells`,
    3 cells per triple — the same charge an ``EncodedTriple`` stream
    pays), and :meth:`nbytes` prices it for the byte-accurate spill
    budget (:func:`repro.dataflow.shuffle.record_bytes`).
    """

    __slots__ = ("s", "p", "o")

    def __init__(self, s: array, p: array, o: array) -> None:
        self.s = s
        self.p = p
        self.o = o

    def __len__(self) -> int:
        return len(self.s)

    def column(self, attr) -> array:
        """The id column for a triple attribute (do not mutate)."""
        return (self.s, self.p, self.o)[int(attr)]

    @property
    def columns(self) -> Tuple[array, array, array]:
        """The (s, p, o) columns (do not mutate)."""
        return self.s, self.p, self.o

    @property
    def budget_cells(self) -> int:
        """Record-budget price: one cell per id, as for encoded triples."""
        return TRIPLE_CELLS * len(self.s)

    def nbytes(self) -> int:
        """Byte-budget price of the batch: its bit-packed column size.

        Batches spend most of their life in compressed form (the packed
        columns of :mod:`repro.storage.compressed`, the framed spill
        runs), so the spill budget and the planner price them at what the
        ids pack to — per-column maximum bit width — rather than at the
        mutable arrays' fixed 4/8-byte slots."""
        return (
            packed_column_nbytes(self.s)
            + packed_column_nbytes(self.p)
            + packed_column_nbytes(self.o)
        )

    def __repr__(self) -> str:
        return f"<TripleBatch: {len(self)} triples, '{self.s.typecode}' columns>"


def build_triple_batches(encoded: "EncodedDataset", count: int) -> List[TripleBatch]:
    """Slice a dataset into ``count`` round-robin column batches.

    Batch ``i`` holds exactly the triples that
    ``ExecutionEnvironment.from_collection`` routes to partition ``i``
    (item ``j`` goes to partition ``j % count``), in the same order —
    ``column[i::count]`` *is* that routing expressed as an array slice.
    This order equivalence is what lets the batch kernels reproduce the
    record-at-a-time operators byte for byte.
    """
    if count < 1:
        raise ValueError(f"batch count must be >= 1, got {count}")
    s, p, o = encoded.columns
    return [
        TripleBatch(s[index::count], p[index::count], o[index::count])
        for index in range(count)
    ]


class EncodedDataset:
    """A dictionary-encoded RDF dataset held as three id columns.

    This is the representation the discovery pipeline consumes: iterating
    yields ``EncodedTriple`` tuples of ints and the attached
    :class:`TermDictionary` renders results back to strings.  The columns
    are exposed for whole-column fast paths (:meth:`column`,
    :meth:`values`); the :attr:`triples` property offers a materialized
    row view for code that needs random access.
    """

    __slots__ = ("_s", "_p", "_o", "dictionary", "name")

    def __init__(
        self,
        triples: Iterable[EncodedTriple] = (),
        dictionary: Optional[TermDictionary] = None,
        name: str = "",
    ) -> None:
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self.name = name
        self._s = array("i")
        self._p = array("i")
        self._o = array("i")
        for s, p, o in triples:
            self.append_ids(s, p, o)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_terms(
        cls,
        rows: Iterable[Sequence[str]],
        dictionary: Optional[TermDictionary] = None,
        name: str = "",
        deduplicate: bool = True,
    ) -> "EncodedDataset":
        """Encode ``(s, p, o)`` string rows straight into columns.

        This is the loaders' direct path: no intermediate string
        ``Dataset`` (and no per-triple ``Triple`` object) is materialized.
        With ``deduplicate`` the id-triple set semantics match
        ``Dataset``'s string-level deduplication exactly (the dictionary
        is a bijection), so ``from_terms(rows)`` equals
        ``Dataset.from_tuples(rows).encode()`` column for column.
        """
        dataset = cls(dictionary=dictionary, name=name)
        encode = dataset.dictionary.encode
        append = dataset.append_ids
        if deduplicate:
            seen = set()
            add_seen = seen.add
            for row in rows:
                ids = (encode(row[0]), encode(row[1]), encode(row[2]))
                if ids not in seen:
                    add_seen(ids)
                    append(*ids)
        else:
            for row in rows:
                append(encode(row[0]), encode(row[1]), encode(row[2]))
        return dataset

    def append_ids(self, s: int, p: int, o: int) -> None:
        """Append one encoded triple (no deduplication).

        Term ids are dictionary offsets and therefore never negative; a
        negative value here means a corrupted snapshot or a buggy caller,
        and silently storing it would round-trip garbage through the
        signed columns.  Reject it at the append boundary instead.
        """
        if s < 0 or p < 0 or o < 0:
            raise ValueError(
                f"term ids must be non-negative, got ({s}, {p}, {o})"
            )
        if self._s.typecode == "i" and (s > INT32_MAX or p > INT32_MAX or o > INT32_MAX):
            self._widen()
        self._s.append(s)
        self._p.append(p)
        self._o.append(o)

    @classmethod
    def from_columns(
        cls,
        s: array,
        p: array,
        o: array,
        dictionary: TermDictionary,
        name: str = "",
    ) -> "EncodedDataset":
        """Adopt three pre-built parallel id columns (no copy).

        The snapshot loader's constructor: columns come straight out of
        an ``array.frombytes`` and must already be consistent — same
        length, same typecode, non-negative ids.  Those invariants are
        checked here (cheap whole-column ``min`` scans) because the
        per-append validation of :meth:`append_ids` is bypassed.
        """
        if not (len(s) == len(p) == len(o)):
            raise ValueError(
                f"column lengths differ: {len(s)}/{len(p)}/{len(o)}"
            )
        if not (s.typecode == p.typecode == o.typecode):
            raise ValueError(
                "column typecodes differ: "
                f"{s.typecode!r}/{p.typecode!r}/{o.typecode!r}"
            )
        if len(s) and min(min(s), min(p), min(o)) < 0:
            raise ValueError("columns contain negative term ids")
        dataset = cls(dictionary=dictionary, name=name)
        dataset._s = s
        dataset._p = p
        dataset._o = o
        return dataset

    def append_terms(self, s: str, p: str, o: str) -> EncodedTriple:
        """Intern and append one string triple; returns its encoding."""
        encode = self.dictionary.encode
        ids = EncodedTriple(encode(s), encode(p), encode(o))
        self.append_ids(*ids)
        return ids

    def _widen(self) -> None:
        """Upgrade the columns from 32-bit to 64-bit ids."""
        self._s = array("q", self._s)
        self._p = array("q", self._p)
        self._o = array("q", self._o)

    # ------------------------------------------------------------------
    # row views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._s)

    def __iter__(self) -> Iterator[EncodedTriple]:
        return starmap(EncodedTriple, zip(self._s, self._p, self._o))

    @property
    def triples(self) -> Tuple[EncodedTriple, ...]:
        """Materialized row view (compatibility with row-oriented code)."""
        return tuple(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<EncodedDataset{label}: {len(self)} triples, "
            f"'{self._s.typecode}' columns>"
        )

    # ------------------------------------------------------------------
    # column views
    # ------------------------------------------------------------------

    def column(self, attr) -> array:
        """The id column for a triple attribute (do not mutate)."""
        return (self._s, self._p, self._o)[int(attr)]

    @property
    def columns(self) -> Tuple[array, array, array]:
        """The (s, p, o) columns (do not mutate)."""
        return self._s, self._p, self._o

    def values(self, attr) -> Counter:
        """Frequency of each term id in position ``attr`` (one C pass)."""
        return Counter(self.column(attr))

    def distinct_values(self, attr) -> set:
        """Distinct term ids occurring in position ``attr``."""
        return set(self.column(attr))

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------

    @property
    def cells(self) -> int:
        """Budget cells the dataset occupies (3 ids per triple)."""
        return TRIPLE_CELLS * len(self._s)

    def nbytes(self) -> int:
        """Resident-set proxy of the columns (record count × id width)."""
        return self._s.itemsize * len(self._s) * TRIPLE_CELLS

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def decode(self):
        """Decode back into a string :class:`~repro.rdf.model.Dataset`."""
        from repro.rdf.model import Dataset, Triple

        decode = self.dictionary.decode
        return Dataset(
            (
                Triple(decode(s), decode(p), decode(o))
                for s, p, o in zip(self._s, self._p, self._o)
            ),
            name=self.name,
        )
