"""Minimal-CINDs-first: the strategy Section 8.6 evaluates and rejects.

Instead of extracting *all* broad CINDs and consolidating afterwards,
this strategy makes multiple passes over the capture groups, extracting
one dependent/referenced arity class at a time and using each pass's
results to shrink the next pass's candidates:

1. **Pass 1 — Ψ1:2** (unary dependent, binary referenced): these can
   never be implied, so all of them are minimal.
2. **Pass 2 — Ψ1:1 and Ψ2:2**: extracted, then those implied by a pass-1
   CIND (referenced tightening for Ψ1:1, dependent relaxation for Ψ2:2)
   are discarded.
3. **Pass 3 — Ψ2:1**: extracted, then those implied by a *valid* Ψ1:1 or
   Ψ2:2 CIND are discarded.

The output equals RDFind's pertinent set (tests assert this), but the
capture groups are scanned three times and the candidate bookkeeping is
repeated per pass — which is why the paper measured it "up to 3 times
slower even than RDFind-DE" and kept the extract-then-consolidate design.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.capture_groups import create_capture_groups
from repro.core.cind import CIND, Capture, SupportedCIND
from repro.core.conditions import ConditionScope
from repro.core.discovery import DiscoveryResult, DiscoveryStats, RDFindConfig
from repro.core.frequent_conditions import detect_frequent_conditions
from repro.dataflow.engine import DataSet, ExecutionEnvironment
from repro.dataflow.gcpause import gc_paused
from repro.rdf.model import Dataset, EncodedDataset

CapturePredicate = Callable[[Capture], bool]


def _extract_class(
    groups: DataSet,
    h: int,
    dep_pred: CapturePredicate,
    ref_pred: CapturePredicate,
    pass_name: str,
) -> Dict[Capture, Tuple[FrozenSet[Capture], int]]:
    """One restricted extraction pass over the capture groups."""

    def emit(group: FrozenSet[Capture]):
        refs = frozenset(capture for capture in group if ref_pred(capture))
        for capture in group:
            if dep_pred(capture):
                yield capture, (refs - {capture}, 1)

    merged = groups.flat_map(emit, name=f"{pass_name}/candidates").reduce_by_key(
        key_fn=lambda pair: pair[0],
        value_fn=lambda pair: pair[1],
        reduce_fn=lambda a, b: (a[0] & b[0], a[1] + b[1]),
        name=f"{pass_name}/merge",
    )
    broad = merged.filter(
        lambda pair: pair[1][1] >= h, name=f"{pass_name}/broadness"
    )
    return dict(broad.collect(name=f"{pass_name}/collect"))


def minimal_first_discover(
    dataset: Union[Dataset, EncodedDataset],
    h: int,
    parallelism: int = 4,
    scope: Optional[ConditionScope] = None,
) -> DiscoveryResult:
    """Run the minimal-first strategy end to end.

    Returns a :class:`~repro.core.discovery.DiscoveryResult` whose
    ``cinds`` equal RDFind's pertinent set; only the extraction strategy
    differs (and its runtime, which is the point of Section 8.6).
    """
    if isinstance(dataset, Dataset):
        dataset = dataset.encode()
    scope = scope if scope is not None else ConditionScope.full()
    config = RDFindConfig(
        support_threshold=h,
        parallelism=parallelism,
        scope=scope,
        prune_capture_support=False,
        balance_dominant_groups=False,
    )
    started = time.perf_counter()
    with gc_paused():
        env = ExecutionEnvironment(parallelism=parallelism, name=f"minimal-first(h={h})")
        triples = env.from_collection(dataset.triples, name="source/triples")
        frequent = detect_frequent_conditions(env, triples, h=h, scope=scope)
        groups = create_capture_groups(env, triples, scope=scope, frequent=frequent)

        unary = lambda c: c.is_unary  # noqa: E731 - local arity predicates
        binary = lambda c: c.is_binary  # noqa: E731

        # Pass 1: Ψ1:2 — all minimal by construction.
        pass1 = _extract_class(groups, h, unary, binary, "mf/pass1")
        pertinent: List[SupportedCIND] = list(_materialize(pass1))

        # Pass 2: Ψ1:1 and Ψ2:2, pruned against pass 1.
        pass2_11 = _extract_class(groups, h, unary, unary, "mf/pass2-11")
        pass2_22 = _extract_class(groups, h, binary, binary, "mf/pass2-22")
        for supported in _materialize(pass2_11):
            if not _ref_tightenable(supported.cind, pass1):
                pertinent.append(supported)
        for supported in _materialize(pass2_22):
            if not _dep_relaxable(supported.cind, pass1):
                pertinent.append(supported)

        # Pass 3: Ψ2:1, pruned against the *valid* pass-2 classes.
        pass3 = _extract_class(groups, h, binary, unary, "mf/pass3")
        for supported in _materialize(pass3):
            if _dep_relaxable(supported.cind, pass2_11):
                continue
            if _ref_tightenable(supported.cind, pass2_22):
                continue
            pertinent.append(supported)

    pertinent.sort(key=lambda sc: (-sc.support, sc.cind))
    elapsed = time.perf_counter() - started
    stats = DiscoveryStats(
        num_triples=len(dataset),
        num_frequent_unary=len(frequent.unary_counts),
        num_frequent_binary=len(frequent.binary_counts),
        num_association_rules=len(frequent.association_rules),
        num_pertinent_cinds=len(pertinent),
    )
    return DiscoveryResult(
        cinds=pertinent,
        association_rules=list(frequent.association_rules),
        dictionary=dataset.dictionary,
        config=config,
        stats=stats,
        metrics=env.metrics,
        elapsed_seconds=elapsed,
    )


def _materialize(
    adjacency: Dict[Capture, Tuple[FrozenSet[Capture], int]]
):
    """Adjacency rows to non-trivial SupportedCINDs."""
    for dependent, (refs, support) in adjacency.items():
        for referenced in refs:
            cind = CIND(dependent, referenced)
            if not cind.is_trivial():
                yield SupportedCIND(cind, support)


def _dep_relaxable(
    cind: CIND, impliers: Dict[Capture, Tuple[FrozenSet[Capture], int]]
) -> bool:
    """Is some dependent relaxation of ``cind`` among ``impliers``?"""
    for relaxed in cind.dependent.unary_relaxations():
        entry = impliers.get(relaxed)
        if entry is None:
            continue
        refs, _support = entry
        implier = CIND(relaxed, cind.referenced)
        if cind.referenced in refs and not implier.is_trivial():
            return True
    return False


def _ref_tightenable(
    cind: CIND, impliers: Dict[Capture, Tuple[FrozenSet[Capture], int]]
) -> bool:
    """Is some referenced tightening of ``cind`` among ``impliers``?"""
    entry = impliers.get(cind.dependent)
    if entry is None:
        return False
    refs, _support = entry
    referenced = cind.referenced
    for capture in refs:
        if capture.attr != referenced.attr or not capture.is_binary:
            continue
        if referenced.condition in capture.condition.unary_parts():
            return True
    return False
