"""Pluggable executor backends for the dataflow engine.

The engine expresses every operator as *per-partition tasks*: module-level
functions applied to one partition's payload, returning the partition's
result plus the time the worker spent on it.  An executor backend decides
where those tasks run:

``serial``
    Runs tasks one after another in the driver process.  This is the
    reference backend — deterministic, zero overhead, no pickling
    constraints — and remains the default.

``process``
    Runs tasks concurrently on a persistent
    :class:`concurrent.futures.ProcessPoolExecutor`, giving the engine
    real multi-core execution (CPython's GIL serializes threads, so
    processes are the only way to use more than one core for the
    pure-Python operator work).  The pool is created lazily on the first
    stage and reused for the whole job, so the fork cost is paid once.
    Tasks and their payloads must be picklable: module-level functions,
    ``functools.partial`` over module-level functions, or instances of
    module-level classes — never lambdas or closures.  Exceptions raised
    inside a worker (including
    :class:`~repro.dataflow.faults.SimulatedOutOfMemory`) are pickled
    back and re-raised in the driver.

Both backends are *fault tolerant* (:mod:`repro.dataflow.faults`): tasks
are pure functions over their payloads, so a failed task is simply
re-executed under a bounded :class:`~repro.dataflow.faults.RetryPolicy`
(exponential backoff charged to a simulated clock), and a broken process
pool is rebuilt once with only the unfinished tasks replayed.  Because
results are gathered by submission index either way, a recovered run is
byte-identical to a clean one.

Both backends return task results in submission order, so downstream
concatenation — and therefore discovery output — is byte-identical
between them.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
from concurrent.futures import BrokenExecutor
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Any, Callable, List, Optional, Sequence

from repro.dataflow.faults import (
    FaultInjectingTask,
    FaultPlan,
    RetryPolicy,
    SimulatedClock,
    TaskTimeoutError,
)

#: The recognised backend names, in preference order.
EXECUTOR_NAMES = ("serial", "process")


def available_cores() -> int:
    """Number of CPU cores the current process may use."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def default_worker_count(parallelism: int) -> int:
    """Default pool size: one process per partition, capped at the cores."""
    return max(1, min(int(parallelism), available_cores()))


#: Stages whose total input is below this many records run inline even
#: under the process backend: four pipe crossings per stage cost more
#: than re-running a few thousand records' worth of work in the driver.
#: Stages that do not declare their input size (``records=None``) are
#: treated as below the threshold — an undeclared size is a single
#: payload or a driver-side stage, never a reason to pay the pool.
DEFAULT_INLINE_THRESHOLD = 2048


def _freeze_worker() -> None:
    """Process-pool initializer: move the inherited heap out of GC's way.

    A forked worker starts with the driver's whole loaded state (modules,
    the broadcast dataset, interned terms) in its young generations;
    ``gc.freeze()`` moves all of it to the permanent generation so worker
    collections never retrace objects that live for the process lifetime,
    and copy-on-write pages are not dirtied by mark bookkeeping.
    """
    gc.freeze()


def _plan_for(
    plan: Optional[FaultPlan],
    stage,
    stage_name: str,
    task_index: int,
    attempt: int,
):
    """Decide (and account) this slot's injected fault, if any."""
    if plan is None:
        return None
    injected = plan.decide(stage_name, task_index, attempt)
    if injected is not None and stage is not None:
        stage.faults_injected += 1
    return injected


def _count_retry(stage, clock: SimulatedClock, policy: RetryPolicy, retry_number: int) -> None:
    if stage is not None:
        stage.retries += 1
    clock.sleep(policy.delay(retry_number))


def _run_tasks_inline(
    task: Callable[[Any], Any],
    payloads: Sequence[Any],
    plan: Optional[FaultPlan],
    policy: RetryPolicy,
    clock: SimulatedClock,
    stage,
) -> List[Any]:
    """The shared driver-side task loop: faults injected, failures retried.

    ``stage`` is the driver's :class:`~repro.dataflow.metrics.StageMetrics`
    record (or ``None``); only its fault counters are touched here.
    """
    stage_name = stage.name if stage is not None else ""
    results: List[Any] = []
    for index, payload in enumerate(payloads):
        attempt = 0
        while True:
            injected = _plan_for(plan, stage, stage_name, index, attempt)
            runnable = (
                FaultInjectingTask(task, plan, stage_name, index, attempt)
                if plan is not None
                else task
            )
            try:
                results.append(runnable(payload))
                break
            except BaseException as error:  # noqa: BLE001 - classified below
                if attempt >= policy.max_retries or not policy.is_retryable(
                    error, injected
                ):
                    raise
                attempt += 1
                _count_retry(stage, clock, policy, attempt)
    return results


class SerialExecutor:
    """Run every task inline in the driver process (the reference)."""

    name = "serial"
    workers = 1

    def __init__(
        self,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.clock = SimulatedClock()

    def run(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
        records: Optional[int] = None,
        stage=None,
    ) -> List[Any]:
        """Apply ``task`` to each payload sequentially (with retries)."""
        return _run_tasks_inline(
            task, payloads, self.fault_plan, self.retry_policy, self.clock, stage
        )

    def close(self) -> None:
        """Nothing to release."""


class ProcessExecutor:
    """Run tasks on a persistent process pool (real multi-core execution)."""

    name = "process"

    def __init__(
        self,
        workers: int,
        inline_threshold: int = DEFAULT_INLINE_THRESHOLD,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        task_timeout_seconds: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if task_timeout_seconds is not None and task_timeout_seconds <= 0:
            raise ValueError(
                f"task_timeout_seconds must be > 0, got {task_timeout_seconds}"
            )
        self.workers = int(workers)
        self.inline_threshold = int(inline_threshold)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fault_plan = fault_plan
        #: Per-task wall-clock bound; ``None`` (the default) waits forever.
        #: A timed-out task is treated as a retryable transient fault: the
        #: pool (with its hung worker) is abandoned and the task replayed
        #: on a fresh one, up to the retry budget.  Inline-threshold
        #: stages run in the driver and are not subject to the bound.
        self.task_timeout_seconds = task_timeout_seconds
        self.clock = SimulatedClock()
        self._pool: Optional[_ProcessPool] = None

    def _ensure_pool(self) -> _ProcessPool:
        if self._pool is None:
            # fork is the cheap path on Linux: workers inherit the loaded
            # modules, so only per-stage payloads cross the pipe.
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
            context = multiprocessing.get_context(method)
            self._pool = _ProcessPool(
                max_workers=self.workers,
                mp_context=context,
                initializer=_freeze_worker,
            )
        return self._pool

    def run(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
        records: Optional[int] = None,
        stage=None,
    ) -> List[Any]:
        """Submit every payload, then gather results in submission order.

        ``records`` is the stage's total input size; stages below the
        inline threshold (or with no declared size) are run in the driver
        instead — the pool's pipe crossings would dwarf the actual work.

        Failure handling: a retryable task failure (see
        :meth:`RetryPolicy.is_retryable`) is resubmitted up to
        ``max_retries`` times; a :class:`BrokenExecutor` — real pool
        breakage or an injected
        :class:`~repro.dataflow.faults.SimulatedWorkerCrash` — tears the
        pool down, rebuilds it once, and replays only the unfinished
        tasks.  Results land by submission index, so recovered output is
        identical to a clean run's.
        """
        if records is None or records < self.inline_threshold:
            return _run_tasks_inline(
                task, payloads, self.fault_plan, self.retry_policy, self.clock, stage
            )
        plan, policy, clock = self.fault_plan, self.retry_policy, self.clock
        timeout = self.task_timeout_seconds
        stage_name = stage.name if stage is not None else ""
        total = len(payloads)
        results: List[Any] = [None] * total
        attempts = [0] * total
        pending = list(range(total))
        rebuilds = 0
        while pending:
            pool = self._ensure_pool()
            submitted = []
            for index in pending:
                injected = _plan_for(plan, stage, stage_name, index, attempts[index])
                runnable = (
                    FaultInjectingTask(task, plan, stage_name, index, attempts[index])
                    if plan is not None
                    else task
                )
                submitted.append((index, injected, pool.submit(runnable, payloads[index])))
            replay: List[int] = []
            hung: List[int] = []
            first_fatal: Optional[BaseException] = None
            broken: Optional[BaseException] = None
            for index, injected, future in submitted:
                try:
                    results[index] = future.result(timeout=timeout)
                except _FuturesTimeout as error:
                    if timeout is not None:
                        # The wait expired — the task is hung (or starved
                        # behind a hung worker); dealt with below, after
                        # every finished result has been harvested.
                        hung.append(index)
                    elif attempts[index] < policy.max_retries and policy.is_retryable(
                        error, injected
                    ):
                        # No bound configured: the *task* raised a
                        # TimeoutError of its own; classify it normally.
                        attempts[index] += 1
                        replay.append(index)
                        _count_retry(stage, clock, policy, attempts[index])
                    elif first_fatal is None:
                        first_fatal = error
                except BrokenExecutor as error:
                    # The attempt still counts (so a planned crash does
                    # not re-fire), but the replay is governed by the
                    # one-rebuild allowance, not by max_retries: the task
                    # did not fail, its worker did.
                    broken = error
                    attempts[index] += 1
                    replay.append(index)
                    if stage is not None:
                        stage.retries += 1
                except BaseException as error:  # noqa: BLE001 - classified below
                    if attempts[index] < policy.max_retries and policy.is_retryable(
                        error, injected
                    ):
                        attempts[index] += 1
                        replay.append(index)
                        _count_retry(stage, clock, policy, attempts[index])
                    elif first_fatal is None:
                        first_fatal = error
            if hung:
                # A hung worker never returns: a normal close() would
                # join it forever, so the pool is abandoned (no wait,
                # queued work cancelled, lingering workers terminated)
                # and each timed-out task becomes a retryable transient
                # fault replayed on a fresh pool, up to the retry budget.
                self._abandon_pool()
                for index in hung:
                    if attempts[index] < policy.max_retries:
                        attempts[index] += 1
                        replay.append(index)
                        _count_retry(stage, clock, policy, attempts[index])
                    elif first_fatal is None:
                        first_fatal = TaskTimeoutError(stage_name, index, timeout)
            if broken is not None:
                self.close()
                rebuilds += 1
                if rebuilds > 1:
                    raise broken
            if first_fatal is not None:
                raise first_fatal
            pending = replay
        return results

    def close(self) -> None:
        """Shut the pool down; a later run() builds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _abandon_pool(self) -> None:
        """Drop a pool that may hold hung workers, without joining them."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)
        # shutdown(wait=False) leaves a worker stuck in a task running;
        # terminate survivors so a hung task cannot outlive its retry.
        # _processes is private API, hence the defensive access.
        try:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
        except Exception:  # pragma: no cover - best-effort reaping
            pass


def create_executor(
    name: str,
    parallelism: int,
    workers: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    task_timeout_seconds: Optional[float] = None,
):
    """Build the backend ``name`` sized for ``parallelism`` partitions.

    ``task_timeout_seconds`` only binds the ``process`` backend: serial
    tasks run inline in the driver, where a wall-clock bound cannot be
    enforced without killing the driver itself.
    """
    if name == "serial":
        return SerialExecutor(retry_policy=retry_policy, fault_plan=fault_plan)
    if name == "process":
        return ProcessExecutor(
            workers if workers is not None else default_worker_count(parallelism),
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            task_timeout_seconds=task_timeout_seconds,
        )
    raise ValueError(
        f"unknown executor {name!r} (expected one of {EXECUTOR_NAMES})"
    )
