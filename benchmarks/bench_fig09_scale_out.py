"""Figure 9: scale-out on LinkedMDB.

The paper varies the worker count from 1 to 10 machines (plus 10x2
threads) across several support thresholds and reports near-linear
scaling with an average speed-up of 8.14 on 10 machines and an extra
1.38x from intra-node parallelism.

Here the engine simulates the cluster: the reported quantity is the
simulated parallel runtime (sum over stages of the slowest worker), which
is exactly what skew/balance determine.  The 20-worker column plays the
role of the paper's "10 machines x 2 threads".
"""

import statistics

from benchmarks.conftest import once

PARALLELISM = (1, 2, 4, 8, 10, 20)
H_VALUES = (25, 50, 100, 1000, 10000)


def test_fig09_scale_out(benchmark, report, cache):
    def body():
        table = {}
        for h in H_VALUES:
            row = []
            for workers in PARALLELISM:
                result, _elapsed = cache.run(
                    "LinkedMDB", h, parallelism=workers
                )
                row.append(result.metrics.simulated_parallel_seconds)
            table[h] = row
        return table

    table = benchmark.pedantic(body, rounds=1, iterations=1)

    section = report.section(
        "Figure 9 — scale-out, LinkedMDB (simulated parallel runtime; "
        "paper: avg 8.14x speed-up on 10 machines)"
    )
    header = f"{'h':>7} |" + "".join(f" {w:>7}w |" for w in PARALLELISM)
    section.row(header)
    speedups_at_10 = []
    for h, row in table.items():
        section.row(
            f"{h:>7} |" + "".join(f" {seconds:>7.2f} |" for seconds in row)
        )
        speedups_at_10.append(row[0] / row[PARALLELISM.index(10)])
    average = statistics.mean(speedups_at_10)
    section.row(
        f"average speed-up at 10 workers: {average:.2f}x (paper: 8.14x)"
    )

    # Shape: sub-linear but substantial scaling, monotone on average.
    assert average > 4.0
    for h, row in table.items():
        assert row[PARALLELISM.index(10)] < row[0]
