"""CIND-based SPARQL query minimization (Section 1, Appendix B).

The rule, from the paper's introductory example: a query triple pattern
``A`` is redundant if some other pattern ``B`` shares a variable with it
and a known CIND guarantees that every value ``B`` produces for that
variable also satisfies ``A``.  Concretely, with ``A`` binding the shared
variable at position ``α_A`` and carrying constants ``φ_A``, and ``B``
binding it at ``α_B`` with constants ``φ_B``, the CIND
``(α_B, φ_B) ⊆ (α_A, φ_A)`` proves that dropping ``A`` cannot change the
(DISTINCT) results — provided ``A`` contributes nothing else: its other
variables, if any, must be neither projected nor used by other patterns.

Inclusions are consulted from three sources: discovered pertinent CINDs,
CINDs implied by discovered association rules, and trivial inclusions
(same projection attribute, dependent condition implying the referenced
one), which hold on every dataset.

The minimizer works on *string-valued* captures; use
:meth:`QueryMinimizer.from_discovery` to decode a discovery result's
integer-encoded CINDs automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.cind import (
    CIND,
    AssociationRule,
    Capture,
    decode_capture,
    decode_cind,
    decode_condition,
)
from repro.core.conditions import (
    BinaryCondition,
    Condition,
    UnaryCondition,
    implies,
)
from repro.core.discovery import DiscoveryResult
from repro.rdf.model import ALL_ATTRS, Attr, TermDictionary
from repro.sparql.algebra import BGPQuery, TriplePattern, Var


@dataclass
class RemovedPattern:
    """One minimization step: which pattern went and why."""

    pattern: TriplePattern
    supported_by: TriplePattern
    inclusion: CIND

    def describe(self) -> str:
        """Human-readable justification."""
        return (
            f"removed [{self.pattern}] — guaranteed by [{self.supported_by}] "
            f"via {_render_string_cind(self.inclusion)}"
        )


@dataclass
class MinimizationReport:
    """Outcome of minimizing one query."""

    original: BGPQuery
    minimized: BGPQuery
    removed: List[RemovedPattern] = field(default_factory=list)

    @property
    def joins_saved(self) -> int:
        """How many joins the rewrite eliminated."""
        return len(self.removed)

    def describe(self) -> str:
        """Multi-line report."""
        lines = [
            f"original:  {self.original} ({self.original.join_count} joins)",
            f"minimized: {self.minimized} ({self.minimized.join_count} joins)",
        ]
        lines.extend("  " + step.describe() for step in self.removed)
        return "\n".join(lines)


class QueryMinimizer:
    """Removes query triple patterns proven redundant by CINDs."""

    def __init__(
        self,
        cinds: Iterable[CIND] = (),
        association_rules: Iterable[AssociationRule] = (),
    ) -> None:
        # AR equivalences: a binary condition embedding an AR selects the
        # same triples as the rule's left-hand side alone, so RDFind
        # reports CINDs in terms of the unary capture (equivalence
        # pruning, Section 5.1).  Canonicalizing through this map lets
        # query patterns like (s, p=rdf:type ∧ o=GraduateStudent) find
        # their unary twin (s, o=GraduateStudent).
        self._equivalences: Dict[Condition, Condition] = {}
        for rule in association_rules:
            self._equivalences.setdefault(rule.binary_condition, rule.lhs)

        self._inclusions: Set[Tuple[Capture, Capture]] = set()
        for cind in cinds:
            self._inclusions.add(
                (self._canonical(cind.dependent), self._canonical(cind.referenced))
            )
        for rule in association_rules:
            for implied in rule.implied_cinds(set(ALL_ATTRS)):
                self._inclusions.add(
                    (
                        self._canonical(implied.dependent),
                        self._canonical(implied.referenced),
                    )
                )

    def _canonical(self, capture: Capture) -> Capture:
        """Rewrite an AR-equivalent binary capture to its unary form."""
        replacement = self._equivalences.get(capture.condition)
        if replacement is not None and replacement.attr != capture.attr:
            return Capture(capture.attr, replacement)
        return capture

    @classmethod
    def from_discovery(cls, result: DiscoveryResult) -> "QueryMinimizer":
        """Build a minimizer from a discovery run (decodes term ids)."""
        dictionary = result.dictionary
        cinds = (decode_cind(sc.cind, dictionary) for sc in result.cinds)
        rules = (
            AssociationRule(
                decode_condition(sa.rule.lhs, dictionary),
                decode_condition(sa.rule.rhs, dictionary),
            )
            for sa in result.association_rules
        )
        return cls(cinds, rules)

    def holds(self, dependent: Capture, referenced: Capture) -> bool:
        """Is the inclusion known (discovered, AR-implied, or trivial)?"""
        dependent = self._canonical(dependent)
        referenced = self._canonical(referenced)
        if (dependent, referenced) in self._inclusions:
            return True
        # Trivial inclusions hold on every dataset.
        return dependent.attr == referenced.attr and implies(
            dependent.condition, referenced.condition
        )

    # ------------------------------------------------------------------
    # minimization
    # ------------------------------------------------------------------

    def minimize(self, query: BGPQuery) -> MinimizationReport:
        """Iteratively remove redundant patterns until a fixpoint."""
        current = query
        removed: List[RemovedPattern] = []
        progress = True
        while progress and len(current.patterns) > 1:
            progress = False
            for index in range(len(current.patterns)):
                justification = self._removable(current, query.projection, index)
                if justification is not None:
                    supporter, inclusion = justification
                    removed.append(
                        RemovedPattern(current.patterns[index], supporter, inclusion)
                    )
                    current = current.without_pattern(index)
                    progress = True
                    break
        return MinimizationReport(original=query, minimized=current, removed=removed)

    def _removable(
        self, query: BGPQuery, projection: Sequence[Var], index: int
    ) -> Optional[Tuple[TriplePattern, CIND]]:
        """Justification for removing pattern ``index``, if any."""
        target = query.patterns[index]
        target_condition = _constants_condition(target)
        if target_condition is None:
            return None

        others = [
            pattern for position, pattern in enumerate(query.patterns)
            if position != index
        ]
        used_elsewhere: Set[Var] = set(projection)
        for pattern in others:
            used_elsewhere |= pattern.variables()

        target_vars = [
            (attr, term)
            for attr, term in zip(ALL_ATTRS, target)
            if isinstance(term, Var)
        ]
        shared = [(attr, var) for attr, var in target_vars if var in used_elsewhere]
        if len(shared) != 1:
            # Zero shared variables: the pattern is an existence filter we
            # cannot remove.  Two or more: a CIND covers only one position.
            return None
        target_attr, shared_var = shared[0]
        if sum(1 for _attr, var in target_vars if var == shared_var) > 1:
            return None  # repeated variable adds an equality constraint

        referenced = Capture(target_attr, target_condition)
        for supporter in others:
            supporter_condition = _constants_condition(supporter)
            if supporter_condition is None:
                continue
            for attr, term in zip(ALL_ATTRS, supporter):
                if term != shared_var:
                    continue
                dependent = Capture(attr, supporter_condition)
                if self.holds(dependent, referenced):
                    return supporter, CIND(dependent, referenced)
        return None


def _constants_condition(pattern: TriplePattern) -> Optional[Condition]:
    """The condition a pattern's constant positions form, if 1 or 2."""
    constants = pattern.constants()
    if len(constants) == 1:
        ((attr, value),) = constants.items()
        return UnaryCondition(attr, value)
    if len(constants) == 2:
        (attr1, value1), (attr2, value2) = sorted(constants.items())
        return BinaryCondition(attr1, value1, attr2, value2)
    return None


def _render_string_cind(cind: CIND) -> str:
    """Render a string-valued CIND without a dictionary."""

    def render_condition(condition: Condition) -> str:
        if isinstance(condition, UnaryCondition):
            return f"{condition.attr.symbol}={condition.value}"
        return (
            f"{condition.attr1.symbol}={condition.value1} ∧ "
            f"{condition.attr2.symbol}={condition.value2}"
        )

    dependent, referenced = cind
    return (
        f"({dependent.attr.symbol}, {render_condition(dependent.condition)}) ⊆ "
        f"({referenced.attr.symbol}, {render_condition(referenced.condition)})"
    )
