"""Dictionary-encoded columnar triple storage.

The storage subsystem is the memory- and cache-friendly substrate the
discovery hot path runs on:

* :class:`~repro.storage.dictionary.TermDictionary` — interns every
  subject/predicate/object string to a dense integer id, with O(1)
  reverse lookup and ids that stay stable under incremental appends.
* :class:`~repro.storage.columnar.EncodedDataset` — a dataset as three
  parallel ``array('i'/'q')`` id columns (widened automatically), the
  representation loaders produce and the pipeline consumes.
* :class:`~repro.storage.vertical.VerticalPartitionStore` — (s, o)
  columns grouped by predicate id, exposing the same ``match`` primitive
  as :class:`repro.rdf.store.TripleStore` so SPARQL evaluation and query
  minimization run on either store; ``freeze()`` drops it into the
  compressed resident form.
* :mod:`repro.storage.compressed` — bit-packed columns, zigzag-delta
  varint posting lists, and frequency-ordered term codes: the same
  logical content at a fraction of the bytes.
* :mod:`repro.storage.snapshot` — a versioned, CRC-framed on-disk
  format (dictionary blob + id columns) loading via ``mmap`` with lazy
  term decode, plus the snapshot cache warm-start policy used by
  ``--resume`` and the job server.

Attributes are resolved lazily (PEP 562): :mod:`repro.rdf.model`
re-exports the dictionary layer from here, so an eager import of the
column/partition layers (which themselves use the RDF data model for
decoding) would bootstrap a cycle.
"""

from importlib import import_module

_EXPORTS = {
    "TermDictionary": "repro.storage.dictionary",
    "EncodedTriple": "repro.storage.dictionary",
    "INT32_MAX": "repro.storage.dictionary",
    "EncodedDataset": "repro.storage.columnar",
    "TRIPLE_CELLS": "repro.storage.columnar",
    "TripleBatch": "repro.storage.columnar",
    "build_triple_batches": "repro.storage.columnar",
    "packed_column_nbytes": "repro.storage.columnar",
    "VerticalPartitionStore": "repro.storage.vertical",
    "PostingOverflowError": "repro.storage.vertical",
    "BitPackedColumn": "repro.storage.compressed",
    "CompressedDataset": "repro.storage.compressed",
    "FrozenPostingList": "repro.storage.compressed",
    "frequency_order": "repro.storage.compressed",
    "remap_by_frequency": "repro.storage.compressed",
    "SNAPSHOT_SUFFIX": "repro.storage.snapshot",
    "SnapshotError": "repro.storage.snapshot",
    "SnapshotTermDictionary": "repro.storage.snapshot",
    "load_snapshot": "repro.storage.snapshot",
    "load_with_snapshot_cache": "repro.storage.snapshot",
    "save_snapshot": "repro.storage.snapshot",
    "snapshot_cache_fields": "repro.storage.snapshot",
    "snapshot_info": "repro.storage.snapshot",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
