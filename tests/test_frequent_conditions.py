"""Tests for the FCDetector (frequent conditions and association rules)."""

from collections import Counter

import pytest

from repro.core.conditions import (
    BinaryCondition,
    ConditionScope,
    UnaryCondition,
    conditions_of_triple,
    is_binary,
    is_unary,
)
from repro.core.frequent_conditions import detect_frequent_conditions
from repro.core.validation import NaiveProfiler
from repro.dataflow.engine import ExecutionEnvironment
from repro.rdf.model import Attr
from tests.conftest import random_rdf


def run_fcdetector(encoded, h, scope=None, parallelism=3):
    env = ExecutionEnvironment(parallelism=parallelism)
    triples = env.from_collection(encoded.triples)
    return detect_frequent_conditions(env, triples, h=h, scope=scope)


def naive_frequencies(encoded, scope=None):
    counts = Counter()
    for triple in encoded:
        counts.update(conditions_of_triple(triple, scope))
    return counts


class TestFrequencyCounting:
    @pytest.mark.parametrize("h", [1, 2, 3, 5])
    def test_counts_match_naive(self, table1_encoded, h):
        result = run_fcdetector(table1_encoded, h)
        expected = {
            condition: count
            for condition, count in naive_frequencies(table1_encoded).items()
            if count >= h
        }
        combined = {**result.unary_counts, **result.binary_counts}
        assert combined == expected

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_counts_match_naive_random(self, seed, parallelism):
        encoded = random_rdf(seed, n_triples=40).encode()
        result = run_fcdetector(encoded, h=2, parallelism=parallelism)
        expected = {
            condition: count
            for condition, count in naive_frequencies(encoded).items()
            if count >= 2
        }
        combined = {**result.unary_counts, **result.binary_counts}
        assert combined == expected

    def test_table1_h2_unary_examples(self, table1_encoded):
        result = run_fcdetector(table1_encoded, h=2)
        dictionary = table1_encoded.dictionary
        rdf_type = UnaryCondition(Attr.P, dictionary.encode_existing("rdf:type"))
        assert result.unary_counts[rdf_type] == 3
        grad = UnaryCondition(Attr.O, dictionary.encode_existing("gradStudent"))
        assert result.unary_counts[grad] == 2

    def test_table1_h2_binary_example(self, table1_encoded):
        result = run_fcdetector(table1_encoded, h=2)
        dictionary = table1_encoded.dictionary
        binary = BinaryCondition.make(
            Attr.P, dictionary.encode_existing("rdf:type"),
            Attr.O, dictionary.encode_existing("gradStudent"),
        )
        assert result.binary_counts[binary] == 2

    def test_apriori_property(self):
        """Every frequent binary condition has frequent unary parts."""
        encoded = random_rdf(11, n_triples=60).encode()
        result = run_fcdetector(encoded, h=2)
        for binary in result.binary_counts:
            for part in binary.unary_parts():
                assert part in result.unary_counts

    def test_invalid_threshold_rejected(self, table1_encoded):
        with pytest.raises(ValueError):
            run_fcdetector(table1_encoded, h=0)


class TestBloomFilters:
    def test_blooms_cover_all_frequent_conditions(self):
        encoded = random_rdf(3, n_triples=50).encode()
        result = run_fcdetector(encoded, h=2)
        assert all(c in result.unary_bloom for c in result.unary_counts)
        assert all(c in result.binary_bloom for c in result.binary_counts)

    def test_helper_accessors(self, table1_encoded):
        result = run_fcdetector(table1_encoded, h=2)
        some_unary = next(iter(result.unary_counts))
        assert result.is_frequent(some_unary)
        assert result.frequency(some_unary) >= 2
        absent = UnaryCondition(Attr.S, 10_000)
        assert not result.is_frequent(absent)
        assert result.frequency(absent) == 0


class TestAssociationRules:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_rules_match_oracle(self, table1_encoded, h):
        result = run_fcdetector(table1_encoded, h=h)
        oracle = NaiveProfiler(table1_encoded).association_rules(h)
        assert set(result.association_rules) == set(oracle)

    @pytest.mark.parametrize("seed", range(5))
    def test_rules_match_oracle_random(self, seed):
        encoded = random_rdf(seed + 50, n_triples=45).encode()
        result = run_fcdetector(encoded, h=2)
        oracle = NaiveProfiler(encoded).association_rules(2)
        assert set(result.association_rules) == set(oracle)

    def test_table1_gradstudent_rule(self, table1_encoded):
        result = run_fcdetector(table1_encoded, h=2)
        dictionary = table1_encoded.dictionary
        rendered = {sa.rule.render(dictionary) for sa in result.association_rules}
        assert "o=gradStudent → p=rdf:type" in rendered

    def test_rule_support_equals_lhs_frequency(self):
        encoded = random_rdf(9, n_triples=40).encode()
        result = run_fcdetector(encoded, h=1)
        for supported in result.association_rules:
            assert supported.support == result.frequency(supported.rule.lhs)
            assert supported.support == result.frequency(
                supported.rule.binary_condition
            )

    def test_rule_set_property(self, table1_encoded):
        result = run_fcdetector(table1_encoded, h=2)
        assert all(sa.rule in result.rule_set for sa in result.association_rules)


class TestScopes:
    def test_predicates_only_scope_has_no_binaries(self, table1_encoded):
        result = run_fcdetector(
            table1_encoded, h=1, scope=ConditionScope.predicates_only()
        )
        assert result.binary_counts == {}
        assert all(c.attr is Attr.P for c in result.unary_counts)

    def test_scoped_counts_match_naive(self, table1_encoded):
        scope = ConditionScope.predicates_only()
        result = run_fcdetector(table1_encoded, h=2, scope=scope)
        expected = {
            condition: count
            for condition, count in naive_frequencies(table1_encoded, scope).items()
            if count >= 2
        }
        assert result.unary_counts == expected
