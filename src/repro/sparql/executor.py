"""BGP evaluation over a triple store.

A straightforward but real engine: patterns are ordered by estimated
selectivity, the first is scanned, and every further pattern is joined in
via index lookups on its bound positions (an index-nested-loop join,
which is what RDF-3X-style stores effectively do for these plans).  The
returned :class:`EvaluationStats` counts pattern lookups and intermediate
bindings, the quantities query minimization reduces (Figure 14's speedup
is fewer joins, engine-independent)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.rdf.model import Attr
from repro.rdf.store import TripleStore
from repro.sparql.algebra import BGPQuery, TriplePattern, Var

#: A result row maps projected variables to terms.
Binding = Dict[Var, str]


@dataclass
class EvaluationStats:
    """Work accounting for one query evaluation."""

    patterns: int = 0
    joins: int = 0
    index_probes: int = 0
    intermediate_bindings: int = 0
    results: int = 0
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.patterns} patterns, {self.joins} joins, "
            f"{self.index_probes} probes, {self.intermediate_bindings} "
            f"intermediate bindings, {self.results} results, "
            f"{self.elapsed_seconds * 1000:.2f} ms"
        )


def _estimate(store: TripleStore, pattern: TriplePattern) -> int:
    """Upper bound on a pattern's matches using the store's indexes."""
    constants = pattern.constants()
    return store.cardinality_estimate(
        s=constants.get(Attr.S),
        p=constants.get(Attr.P),
        o=constants.get(Attr.O),
    )


def _substitute(pattern: TriplePattern, binding: Binding) -> TriplePattern:
    """Replace bound variables with their values."""
    return TriplePattern(
        *(
            binding.get(term, term) if isinstance(term, Var) else term
            for term in pattern
        )
    )


def _match_pattern(
    store: TripleStore, pattern: TriplePattern, stats: EvaluationStats
) -> Iterator[Binding]:
    """All bindings of a (possibly partially bound) pattern."""
    constants = pattern.constants()
    stats.index_probes += 1
    for triple in store.match(
        s=constants.get(Attr.S), p=constants.get(Attr.P), o=constants.get(Attr.O)
    ):
        binding = pattern.bind(triple)
        if binding is not None:
            yield binding


def evaluate(
    store: TripleStore, query: BGPQuery
) -> Tuple[List[Tuple[str, ...]], EvaluationStats]:
    """Evaluate a BGP query; returns projected rows plus statistics.

    Rows are tuples aligned with ``query.projection``, deduplicated and
    sorted for deterministic output (SELECT DISTINCT semantics).
    """
    stats = EvaluationStats(patterns=len(query.patterns), joins=query.join_count)
    started = time.perf_counter()

    # Order patterns by estimated selectivity, then join left to right.
    ordered = sorted(query.patterns, key=lambda p: _estimate(store, p))
    bindings: List[Binding] = [{}]
    for pattern in ordered:
        next_bindings: List[Binding] = []
        for binding in bindings:
            bound_pattern = _substitute(pattern, binding)
            for new_binding in _match_pattern(store, bound_pattern, stats):
                merged = dict(binding)
                merged.update(new_binding)
                next_bindings.append(merged)
        bindings = next_bindings
        stats.intermediate_bindings += len(bindings)
        if not bindings:
            break

    rows: Set[Tuple[str, ...]] = {
        tuple(binding[var] for var in query.projection) for binding in bindings
    }
    result = sorted(rows)
    stats.results = len(result)
    stats.elapsed_seconds = time.perf_counter() - started
    return result, stats
