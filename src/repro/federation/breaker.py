"""Per-endpoint circuit breaker: fail fast on a dead source.

Without a breaker, a multi-endpoint job pays the full
timeout × retry-budget cost on *every* page request to a dead endpoint —
a 4-retry policy against a 10 s timeout turns one dead source into
minutes of stalling per page.  The breaker converts that into one cheap
:class:`~repro.federation.errors.CircuitOpenError` per request after the
first few failures, which the cross-endpoint driver degrades into a
partial result (see :mod:`repro.federation.cross`).

Classic three-state machine:

* **closed** — requests flow; ``failure_threshold`` *consecutive*
  transient failures trip it open (a single success resets the count).
* **open** — requests are refused instantly for ``cooldown_seconds``.
* **half-open** — after the cooldown one probe request is let through:
  success closes the breaker, failure re-opens it for another cooldown.

Time is injected (``time_source``) so tests drive the cooldown with a
fake clock instead of sleeping, and every transition is appended to
:attr:`CircuitBreaker.transitions` so scripted fault sequences can
assert the exact closed→open→half-open→… path they were designed to
cause.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from repro.federation.errors import CircuitOpenError

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One endpoint's health gate.

    Not thread-safe by design: the federation client drives one breaker
    from one fetch loop.  (The job server's concurrency is process-level;
    each worker builds its own clients.)
    """

    def __init__(
        self,
        endpoint: str = "",
        failure_threshold: int = 5,
        cooldown_seconds: float = 30.0,
        time_source: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.endpoint = endpoint
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._now = time_source
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: ``(from_state, to_state)`` pairs, in order — the test surface.
        self.transitions: List[Tuple[str, str]] = []
        #: How many times the breaker has gone (back) to OPEN.
        self.opens = 0

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> str:
        """The current state, cooldown expiry applied lazily.

        The breaker has no timer thread; an OPEN breaker becomes
        HALF_OPEN the first time anyone *looks* after the cooldown.
        """
        if self._state == OPEN and (
            self._now() - self._opened_at >= self.cooldown_seconds
        ):
            self._move(HALF_OPEN)
        return self._state

    def _move(self, to_state: str) -> None:
        if to_state != self._state:
            self.transitions.append((self._state, to_state))
            self._state = to_state

    # -- the three verbs the client speaks -----------------------------

    def check(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when open."""
        if self.state == OPEN:
            retry_in = max(
                0.0, self.cooldown_seconds - (self._now() - self._opened_at)
            )
            raise CircuitOpenError(
                f"circuit open for {self.endpoint or 'endpoint'} "
                f"({self._consecutive_failures} consecutive failures); "
                f"half-opens in {retry_in:.1f}s",
                endpoint=self.endpoint,
                retry_in=retry_in,
            )

    def record_success(self) -> None:
        """A request (or the half-open probe) succeeded."""
        self._consecutive_failures = 0
        if self.state != CLOSED:
            self._move(CLOSED)

    def record_failure(self) -> None:
        """A *transient* failure happened (permanent errors don't count:
        the endpoint answered; the request was wrong)."""
        if self.state == HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self._reopen()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._reopen()

    def _reopen(self) -> None:
        self._opened_at = self._now()
        self.opens += 1
        self._move(OPEN)

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.endpoint or '?'}: {self.state}, "
            f"{self._consecutive_failures} consecutive failures, "
            f"{self.opens} opens>"
        )
