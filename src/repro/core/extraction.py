"""CINDExtractor: from capture groups to broad CINDs (Section 7).

The extractor enumerates CIND candidate sets from capture groups
(Lemma 3: ``c ⊆ c'`` is valid iff ``c'`` occurs in every group that
contains ``c``), aggregates them by dependent capture with intersection,
and keeps the dependents whose group-membership count — their support —
reaches the threshold.

Directly doing this is quadratic in group size and collapses on *dominant*
capture groups (Section 7.1), so the full extractor adds the paper's three
countermeasures (Section 7.2):

* **Capture-support pruning** — the second phase of lazy pruning: captures
  occurring in fewer than ``h`` groups can be neither dependent nor
  referenced in a broad CIND, so they are deleted from all groups first.
* **Load balancing** — each worker compares its capture groups' estimated
  processing load ``|G|²`` against the cluster-average load; groups above
  it are *dominant* and are split into per-worker work units.
* **Approximate-validate extraction** — dominant groups emit candidate
  sets whose referenced captures are encoded in a constant-size Bloom
  filter (O(n) instead of O(n²) space).  Candidate sets are merged with
  Algorithm 3 (exact ∩ exact, Bloom AND Bloom, exact probed against
  Bloom); merged sets with Bloom lineage are *uncertain* and are
  re-validated against the retained work units, which restores exactness.

Disabling the countermeasures yields the paper's RDFind-DE ablation
(direct extraction, Section 8.5).

Implementation note: the paper builds one Bloom filter per candidate set
(``Bloom(G − {c})``).  Building n filters of n-1 elements each would be
O(n²) work — the very cost the filters exist to avoid — so we build a
single filter per dominant group (containing all of G) and share it across
that group's candidate sets; the dependent capture itself is filtered out
when results are materialized, and the validation pass corrects any
self-hit exactly as it corrects other false positives.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.core.cind import Capture
from repro.dataflow.bloom import BloomFilter
from repro.dataflow.engine import (
    DataSet,
    ExecutionEnvironment,
    SimulatedOutOfMemory,
    pair_key,
    pair_value,
)

#: Referenced-capture collection of a candidate set: exact or approximate.
Refs = Union[FrozenSet[Capture], BloomFilter]

#: Candidate-set value: (referenced captures, support count, approx flag).
CandidateValue = Tuple[Refs, int, bool]

#: A work unit: (dependent captures to process, the full dominant group).
WorkUnit = Tuple[FrozenSet[Capture], FrozenSet[Capture]]

#: Bloom-filter size used for dominant-group candidate sets; the paper
#: found 64 bytes (512 bits) to perform best.
DEFAULT_CANDIDATE_BLOOM_BITS = 512
DEFAULT_CANDIDATE_BLOOM_HASHES = 4


@dataclass(frozen=True)
class ExtractionConfig:
    """Knobs of the extraction phase."""

    h: int
    prune_capture_support: bool = True
    balance_dominant_groups: bool = True
    candidate_bloom_bits: int = DEFAULT_CANDIDATE_BLOOM_BITS
    candidate_bloom_hashes: int = DEFAULT_CANDIDATE_BLOOM_HASHES

    def __post_init__(self) -> None:
        if self.h < 1:
            raise ValueError(f"support threshold must be >= 1, got {self.h}")


@dataclass
class ExtractionStats:
    """Telemetry of one extraction run (feeds Figure 2 style funnels)."""

    groups_total: int = 0
    groups_after_pruning: int = 0
    captures_total: int = 0
    captures_pruned: int = 0
    dominant_groups: int = 0
    work_units: int = 0
    uncertain_candidates: int = 0
    broad_dependents: int = 0
    broad_cind_count: int = 0
    max_partition_ref_cells: int = 0


#: Result: dependent capture -> (exact referenced captures, support).
BroadCINDs = Dict[Capture, Tuple[FrozenSet[Capture], int]]


def extract_broad_cinds(
    env: ExecutionEnvironment,
    groups: DataSet,
    config: ExtractionConfig,
) -> Tuple[BroadCINDs, ExtractionStats]:
    """Run the CINDExtractor over a dataset of capture groups.

    Returns the broad CINDs in adjacency form — for every dependent
    capture with support >= h, the exact set of referenced captures that
    co-occur with it in *every* group — plus run statistics.  Trivial
    inclusions are *not* filtered here (the discovery facade does that);
    the dependent capture itself never appears among its references.
    """
    stats = ExtractionStats()
    stats.groups_total = groups.count()

    # Stage-granularity checkpointing: the capture-support pruning scan
    # (one full pass over all groups) becomes a durable boundary.  The
    # boundary value carries the pruned partitions *and* the stats the
    # pruning pass computed, so a resumed run reports identical funnels.
    ckpt = getattr(env, "checkpoint", None)
    if ckpt is not None and not ckpt.enabled("stage"):
        ckpt = None

    if config.prune_capture_support:
        if ckpt is not None:
            partitions, counters = ckpt.step(
                "ex/pruned-groups",
                "stage",
                partial(_pruned_groups_payload, env, groups, config, stats),
            )
            stats.captures_total, stats.captures_pruned, stats.groups_after_pruning = counters
            groups = env.from_partitions(partitions, name="ex/pruned-groups")
        else:
            groups = _prune_capture_support(env, groups, config, stats)
    else:
        stats.groups_after_pruning = stats.groups_total

    if config.balance_dominant_groups:
        average_load = _average_worker_load(env, groups)
    else:
        average_load = float("inf")

    work_units = _build_work_units(env, groups, average_load, stats)

    # Candidate generation is FUSED into the keyed aggregation (Flink's
    # operator chaining): a group's candidate sets fold into the combiner
    # as they are produced, so the quadratic flatMap output is never
    # materialized.  The combiner *state* (one referenced set per
    # dependent capture seen so far) is what the memory budget prices —
    # exactly the footprint that kills RDFind-DE on dominant groups.
    #
    # When the stage planner picks the vectorized path, non-dominant
    # groups emit the group frozenset itself as the initial reference set
    # (shared, not copied per dependent — the per-group difference() loop
    # is quadratic in group size) and a materialize step removes each
    # dependent from its own final set, restoring the oracle's values
    # exactly (see _materialize_shared_refs).
    planner = env.planner
    kernel_plan = None
    if planner is not None and planner.active:
        kernel_plan = planner.plan_kernel(
            "ex/merge-candidates", stats.groups_after_pruning or stats.groups_total
        )
    if kernel_plan is not None and kernel_plan.use_kernel:
        # No state pricing on this path: kernels only run without a
        # record-count budget, and per-dependent pricing would bill the
        # shared group frozenset once per dependent — the very copy the
        # emitter avoids.  peak_state_cost degrades to the dependent
        # count here.
        merged = groups.flat_map_reduce_by_key(
            _SharedRefsCandidateEmitter(config, average_load),
            _merge_candidate_values,
            name="ex/merge-candidates",
        ).map(_materialize_shared_refs, name="ex/materialize-refs")
    else:
        merged = groups.flat_map_reduce_by_key(
            _CandidateEmitter(config, average_load),
            _merge_candidate_values,
            state_cost_fn=_candidate_state_cost,
            name="ex/merge-candidates",
        )
    if kernel_plan is not None:
        planner.annotate(env.metrics, "ex/merge-candidates", kernel_plan)
    stats.max_partition_ref_cells = (
        env.metrics.stage_by_name("ex/merge-candidates").peak_state_cost
    )
    broad = merged.filter(
        partial(_support_at_least, config.h), name="ex/broadness-filter"
    )

    certain: BroadCINDs = {}
    uncertain: Dict[Capture, Refs] = {}
    counts: Dict[Capture, int] = {}
    for dependent, (refs, count, approx) in broad.collect(name="ex/collect"):
        counts[dependent] = count
        if not approx:
            certain[dependent] = (refs, count)
        elif not _refs_empty(refs):
            uncertain[dependent] = refs
    stats.uncertain_candidates = len(uncertain)

    if uncertain:
        validated = _validate_uncertain(env, work_units, uncertain)
        for dependent, refs in validated.items():
            certain[dependent] = (refs, counts[dependent])

    result = {
        dependent: (refs, count)
        for dependent, (refs, count) in certain.items()
        if refs
    }
    stats.broad_dependents = len(result)
    stats.broad_cind_count = sum(len(refs) for refs, _count in result.values())
    return result, stats


# ----------------------------------------------------------------------
# capture-support pruning (Figure 6, steps 1-3)
# ----------------------------------------------------------------------


def _emit_capture_counters(
    group: FrozenSet[Capture],
) -> Iterator[Tuple[Capture, int]]:
    for capture in group:
        yield capture, 1


def _support_below(h: int, pair: Tuple[Capture, int]) -> bool:
    return pair[1] < h


def _support_at_least(h: int, pair) -> bool:
    """Broadness filter on ``(dependent, (refs, count, approx))`` pairs."""
    return pair[1][1] >= h


def _difference_from(prunable: FrozenSet[Capture], group: FrozenSet[Capture]):
    return group.difference(prunable)


def _pruned_groups_payload(
    env: ExecutionEnvironment,
    groups: DataSet,
    config: ExtractionConfig,
    stats: ExtractionStats,
):
    """The ex/pruned-groups checkpoint value: partitions + pruning stats."""
    pruned = _prune_capture_support(env, groups, config, stats)
    counters = (
        stats.captures_total,
        stats.captures_pruned,
        stats.groups_after_pruning,
    )
    return pruned.partitions, counters


def _prune_capture_support(
    env: ExecutionEnvironment,
    groups: DataSet,
    config: ExtractionConfig,
    stats: ExtractionStats,
) -> DataSet:
    # The planner may fuse the counter flat_map into the keyed reduction:
    # the per-capture (capture, 1) records are folded into the combiner as
    # they are produced instead of being materialized first.  The fused
    # combiner sees the same pairs in the same order, so the aggregated
    # supports are byte-identical.
    planner = getattr(env, "planner", None)
    fuse_plan = None
    if planner is not None and planner.active:
        fuse_plan = planner.plan_kernel(
            "ex/capture-support", groups._total_records()
        )
    if fuse_plan is not None and fuse_plan.use_kernel:
        supports = groups.flat_map_reduce_by_key(
            _emit_capture_counters,
            operator.add,
            name="ex/capture-support",
        )
    else:
        supports = groups.flat_map(
            _emit_capture_counters, name="ex/capture-counters"
        ).reduce_by_key(
            key_fn=pair_key,
            value_fn=pair_value,
            reduce_fn=operator.add,
            name="ex/capture-support",
            order_insensitive=True,
        )
    if fuse_plan is not None:
        planner.annotate(env.metrics, "ex/capture-support", fuse_plan)
    stats.captures_total = supports.count()
    prunable = frozenset(
        supports.filter(
            partial(_support_below, config.h), name="ex/prunable-filter"
        )
        .map(pair_key, name="ex/prunable-captures")
        .broadcast(name="ex/prunable-broadcast")
    )
    stats.captures_pruned = len(prunable)
    if not prunable:
        stats.groups_after_pruning = stats.groups_total
        return groups
    pruned = groups.map(
        partial(_difference_from, prunable), name="ex/prune-groups"
    ).filter(len, name="ex/drop-empty-groups")
    stats.groups_after_pruning = pruned.count()
    return pruned


# ----------------------------------------------------------------------
# load estimation (Figure 6, steps 5-6)
# ----------------------------------------------------------------------


def _partition_load(
    partition: List[FrozenSet[Capture]], _worker: int
) -> List[int]:
    return [sum(len(g) ** 2 for g in partition)]


def _average_worker_load(env: ExecutionEnvironment, groups: DataSet) -> float:
    """Average per-worker processing load, estimated as sum of |G|^2."""
    partial_loads = groups.map_partition(
        _partition_load, name="ex/estimate-loads"
    ).collect(name="ex/collect-loads")
    total = sum(partial_loads)
    return total / env.parallelism


# ----------------------------------------------------------------------
# candidate generation (Figure 6, step 7)
# ----------------------------------------------------------------------


class _CandidateEmitter:
    """Per-group candidate-set producer (consumed by the fused reduce).

    A module-level class so the fused combine task stays picklable under
    the process executor.
    """

    __slots__ = ("bloom_bits", "bloom_hashes", "average_load")

    def __init__(self, config: ExtractionConfig, average_load: float) -> None:
        self.bloom_bits = config.candidate_bloom_bits
        self.bloom_hashes = config.candidate_bloom_hashes
        self.average_load = average_load

    def __call__(
        self, group: FrozenSet[Capture]
    ) -> Iterator[Tuple[Capture, CandidateValue]]:
        size = len(group)
        if size * size > self.average_load:
            bloom = BloomFilter(self.bloom_bits, self.bloom_hashes)
            bloom.update(group)
            for capture in group:
                yield capture, (bloom, 1, True)
        else:
            for capture in group:
                yield capture, (group.difference((capture,)), 1, False)


class _SharedRefsCandidateEmitter:
    """Vectorized candidate-set producer: shared initial reference sets.

    Identical to :class:`_CandidateEmitter` for dominant groups (those
    already share one Bloom filter).  For regular groups the oracle emits
    ``G − {c}`` per dependent ``c`` — a fresh frozenset each, quadratic
    allocation per group — while this emitter shares the group itself as
    every dependent's initial reference set.  After merging, a candidate's
    reference set differs from the oracle's only by containing its own
    dependent: every value merged under key ``c`` came from a group (or a
    dominant group's Bloom filter, which has no false negatives)
    containing ``c``, so ``c`` survives every exact intersection and every
    Bloom probe.  :func:`_materialize_shared_refs` removes it and
    recomputes the approx flag, restoring the oracle's output exactly.
    """

    __slots__ = ("bloom_bits", "bloom_hashes", "average_load")

    def __init__(self, config: ExtractionConfig, average_load: float) -> None:
        self.bloom_bits = config.candidate_bloom_bits
        self.bloom_hashes = config.candidate_bloom_hashes
        self.average_load = average_load

    def __call__(
        self, group: FrozenSet[Capture]
    ) -> Iterator[Tuple[Capture, CandidateValue]]:
        size = len(group)
        if size * size > self.average_load:
            bloom = BloomFilter(self.bloom_bits, self.bloom_hashes)
            bloom.update(group)
            for capture in group:
                yield capture, (bloom, 1, True)
        else:
            for capture in group:
                yield capture, (group, 1, False)


def _materialize_shared_refs(pair):
    """Remove a candidate's own dependent from its shared reference set.

    Exact reference sets produced by :class:`_SharedRefsCandidateEmitter`
    are the oracle's sets plus the dependent capture itself; Bloom-valued
    sets are already identical (the oracle shares the full-group filter
    too).  The approx flag is recomputed against the corrected set so the
    empty-set → certain collapse (Algorithm 3, line 10) matches the
    oracle's merge-time behaviour.
    """
    dependent, (refs, count, approx) = pair
    if not isinstance(refs, BloomFilter):
        refs = refs.difference((dependent,))
    approx = approx and not _refs_empty(refs)
    return dependent, (refs, count, approx)


def _candidate_state_cost(value: CandidateValue) -> int:
    """Combiner-state price of one candidate set (cells)."""
    refs, _count, _approx = value
    if isinstance(refs, BloomFilter):
        return 8  # constant-size filter
    return len(refs) + 1


class _WorkUnitSplitter:
    """Chunk each dominant group into per-worker work units (picklable)."""

    __slots__ = ("average_load", "parallelism")

    def __init__(self, average_load: float, parallelism: int) -> None:
        self.average_load = average_load
        self.parallelism = parallelism

    def __call__(
        self, partition: List[FrozenSet[Capture]], _worker: int
    ) -> Iterator[WorkUnit]:
        for group in partition:
            size = len(group)
            if size * size > self.average_load:
                members = sorted(group)
                chunk_size = -(-size // self.parallelism)  # ceil division
                for start in range(0, size, chunk_size):
                    chunk = frozenset(members[start : start + chunk_size])
                    yield (chunk, group)


def _build_work_units(
    env: ExecutionEnvironment,
    groups: DataSet,
    average_load: float,
    stats: ExtractionStats,
) -> DataSet:
    """Split dominant groups into per-worker work units."""
    work_units = groups.map_partition(
        _WorkUnitSplitter(average_load, env.parallelism),
        name="ex/split-dominant-groups",
    ).rebalance(name="ex/rebalance-work-units")
    stats.work_units = work_units.count()
    stats.dominant_groups = sum(
        1
        for partition in groups.partitions
        for group in partition
        if len(group) ** 2 > average_load
    )
    return work_units


# ----------------------------------------------------------------------
# candidate merging (Algorithm 3)
# ----------------------------------------------------------------------


def _refs_empty(refs: Refs) -> bool:
    if isinstance(refs, BloomFilter):
        return refs.is_empty()
    return not refs


def _merge_candidate_values(a: CandidateValue, b: CandidateValue) -> CandidateValue:
    """Merge two candidate sets for the same dependent capture.

    Exact sets intersect exactly; two Bloom filters intersect via bitwise
    AND; a mixed pair probes the exact set against the filter.  The result
    is *approximate* (needs validation) when any input was approximate and
    the merged reference set is non-empty (Algorithm 3, line 10).
    """
    refs_a, count_a, approx_a = a
    refs_b, count_b, approx_b = b
    bloom_a = isinstance(refs_a, BloomFilter)
    bloom_b = isinstance(refs_b, BloomFilter)
    if not bloom_a and not bloom_b:
        refs: Refs = refs_a & refs_b
    elif bloom_a and bloom_b:
        refs = refs_a.intersect(refs_b)
    else:
        exact, bloom = (refs_b, refs_a) if bloom_a else (refs_a, refs_b)
        refs = frozenset(capture for capture in exact if capture in bloom)
    count = count_a + count_b
    approx = (approx_a or approx_b) and not _refs_empty(refs)
    return refs, count, approx


# ----------------------------------------------------------------------
# validation of uncertain candidates (Figure 6, steps 9-10)
# ----------------------------------------------------------------------


def _validate_uncertain(
    env: ExecutionEnvironment,
    work_units: DataSet,
    uncertain: Dict[Capture, Refs],
) -> Dict[Capture, FrozenSet[Capture]]:
    """Re-derive exact referenced sets for Bloom-tainted candidates.

    The uncertain candidate map is broadcast; every worker scans its work
    units and, for each uncertain dependent capture it hosts, intersects
    the dominant group's exact members with the candidate's reference
    collection.  Intersecting these validation sets across all hosting
    work units yields the exact result (see module docstring for why).
    """
    broadcast_stage = env.metrics.new_stage("ex/broadcast-uncertain")
    broadcast_stage.broadcast_records = len(uncertain) * env.parallelism

    validated = work_units.flat_map(
        _ValidationEmitter(uncertain), name="ex/validation-sets"
    ).reduce_by_key(
        key_fn=pair_key,
        value_fn=pair_value,
        reduce_fn=operator.and_,
        name="ex/merge-validation-sets",
    )
    return dict(validated.collect(name="ex/collect-validated"))


class _ValidationEmitter:
    """Per-work-unit validation sets for the uncertain candidates.

    Carries the broadcast uncertain-candidate map so the flat_map stays
    picklable under the process executor.
    """

    __slots__ = ("uncertain",)

    def __init__(self, uncertain: Dict[Capture, Refs]) -> None:
        self.uncertain = uncertain

    def __call__(
        self, unit: WorkUnit
    ) -> Iterator[Tuple[Capture, FrozenSet[Capture]]]:
        chunk, group = unit
        for dependent in chunk:
            refs = self.uncertain.get(dependent)
            if refs is None:
                continue
            if isinstance(refs, BloomFilter):
                validation = frozenset(
                    capture
                    for capture in group
                    if capture != dependent and capture in refs
                )
            else:
                validation = group & refs
            yield dependent, validation
