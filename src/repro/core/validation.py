"""Brute-force ground truth for CIND discovery.

:class:`NaiveProfiler` computes interpretations, condition frequencies,
association rules, valid/broad/pertinent CINDs directly from their
definitions — materializing capture interpretations as Python sets and
testing inclusion pairwise.  It is exponential-ish in practice and only
suitable for small datasets, but it shares *no* algorithmic machinery with
the RDFind pipeline (no capture groups, no Bloom filters, no lazy pruning),
which makes it a genuine oracle: the test suite asserts that RDFind's
output equals the oracle's on many small random datasets.

The output conventions mirror RDFind's (see DESIGN.md):

* only captures whose condition is *frequent* (frequency >= h) participate;
* binary captures whose condition embeds a detected association rule are
  dropped — they are extent-equal to a unary capture (equivalence pruning,
  Section 5.1), and the AR itself is reported instead;
* trivial CINDs (dependent condition implies referenced condition under
  the same projection attribute) are never reported;
* pertinent = broad (support >= h) and minimal (not inferable from another
  valid CIND via dependent or referenced implication).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.core.cind import (
    CIND,
    AssociationRule,
    Capture,
    SupportedAR,
    SupportedCIND,
)
from repro.core.conditions import (
    BinaryCondition,
    Condition,
    ConditionScope,
    UnaryCondition,
    conditions_of_triple,
    is_binary,
)
from repro.rdf.model import Attr, Dataset, EncodedDataset


class NaiveProfiler:
    """Definition-level CIND profiler (testing oracle).

    Parameters
    ----------
    dataset:
        A string :class:`Dataset` (encoded internally) or an already
        encoded dataset.
    scope:
        Restriction of projection/condition attributes; defaults to the
        paper's general setting.
    """

    def __init__(
        self,
        dataset: Union[Dataset, EncodedDataset],
        scope: Optional[ConditionScope] = None,
        prune_ar_equivalents: bool = True,
    ) -> None:
        if isinstance(dataset, Dataset):
            dataset = dataset.encode()
        self.dataset = dataset
        self.scope = scope if scope is not None else ConditionScope.full()
        #: RDFind's convention replaces AR-embedding binary captures with
        #: their unary twin; pass False to keep them (the semantics the
        #: incremental maintainer uses).
        self.prune_ar_equivalents = prune_ar_equivalents
        self._condition_frequencies: Optional[Dict[Condition, int]] = None
        self._universe_cache: Dict[int, Set[Capture]] = {}

    # ------------------------------------------------------------------
    # conditions and association rules
    # ------------------------------------------------------------------

    def condition_frequencies(self) -> Dict[Condition, int]:
        """Frequency (number of satisfying triples) of every condition."""
        if self._condition_frequencies is None:
            counts: Counter = Counter()
            for triple in self.dataset:
                counts.update(conditions_of_triple(triple, self.scope))
            self._condition_frequencies = dict(counts)
        return self._condition_frequencies

    def frequent_conditions(self, h: int) -> Dict[Condition, int]:
        """Conditions with frequency >= ``h``."""
        _require_support(h)
        return {
            condition: count
            for condition, count in self.condition_frequencies().items()
            if count >= h
        }

    def association_rules(self, h: int) -> List[SupportedAR]:
        """Exact ARs among frequent conditions, with supports.

        ``lhs → rhs`` is exact iff ``freq(lhs ∧ rhs) == freq(lhs)``; its
        support equals that frequency (Lemma 2).
        """
        frequent = self.frequent_conditions(h)
        rules: List[SupportedAR] = []
        for condition, count in frequent.items():
            if not is_binary(condition):
                continue
            first, second = condition.unary_parts()
            if frequent.get(first) == count:
                rules.append(SupportedAR(AssociationRule(first, second), count))
            if frequent.get(second) == count:
                rules.append(SupportedAR(AssociationRule(second, first), count))
        rules.sort(key=lambda sar: (-sar.support, sar.rule))
        return rules

    def _ar_binary_conditions(self, h: int) -> Set[BinaryCondition]:
        """Binary conditions that embed a detected AR (to be pruned)."""
        return {sar.rule.binary_condition for sar in self.association_rules(h)}

    # ------------------------------------------------------------------
    # captures and interpretations
    # ------------------------------------------------------------------

    def capture_universe(self, h: int) -> Set[Capture]:
        """Captures over frequent conditions, after AR equivalence pruning."""
        cached = self._universe_cache.get(h)
        if cached is not None:
            return cached
        frequent = self.frequent_conditions(h)
        pruned_binaries = (
            self._ar_binary_conditions(h) if self.prune_ar_equivalents else set()
        )
        universe: Set[Capture] = set()
        for condition in frequent:
            if is_binary(condition) and condition in pruned_binaries:
                continue
            used = set(condition.attrs)
            for attr in self.scope.projection_attrs:
                if attr not in used:
                    universe.add(Capture(attr, condition))
        self._universe_cache[h] = universe
        return universe

    def interpretation(self, capture: Capture) -> FrozenSet[int]:
        """``I(T, c)`` — the capture's projected value set (Definition 2.2)."""
        values = set()
        attr_index = int(capture.attr)
        condition = capture.condition
        for triple in self.dataset:
            if condition.matches(triple):
                values.add(triple[attr_index])
        return frozenset(values)

    def interpretations(
        self, captures: Iterable[Capture]
    ) -> Dict[Capture, FrozenSet[int]]:
        """Interpretations of many captures in a single dataset pass."""
        wanted = set(captures)
        values: Dict[Capture, Set[int]] = {capture: set() for capture in wanted}
        for triple in self.dataset:
            for condition in conditions_of_triple(triple, self.scope):
                used = set(condition.attrs)
                for attr in self.scope.projection_attrs:
                    if attr in used:
                        continue
                    capture = Capture(attr, condition)
                    if capture in wanted:
                        values[capture].add(triple[int(attr)])
        return {capture: frozenset(vals) for capture, vals in values.items()}

    def capture_support(self, capture: Capture) -> int:
        """Support of a capture: the size of its interpretation."""
        return len(self.interpretation(capture))

    # ------------------------------------------------------------------
    # CINDs
    # ------------------------------------------------------------------

    def is_valid(self, cind: CIND) -> bool:
        """Inclusion test straight from Definition 2.3."""
        return self.interpretation(cind.dependent) <= self.interpretation(
            cind.referenced
        )

    def support(self, cind: CIND) -> int:
        """Support of a CIND: size of the dependent interpretation."""
        return len(self.interpretation(cind.dependent))

    def broad_cinds(self, h: int) -> Dict[CIND, int]:
        """All valid, non-trivial CINDs with support >= ``h``.

        Enumerates every ordered capture pair in the universe and tests
        inclusion on materialized interpretations.
        """
        _require_support(h)
        universe = sorted(self.capture_universe(h))
        interpretations = self.interpretations(universe)
        dependents = [
            capture for capture in universe if len(interpretations[capture]) >= h
        ]
        result: Dict[CIND, int] = {}
        for dependent in dependents:
            dep_values = interpretations[dependent]
            for referenced in universe:
                if referenced == dependent:
                    continue
                cind = CIND(dependent, referenced)
                if cind.is_trivial():
                    continue
                if dep_values <= interpretations[referenced]:
                    result[cind] = len(dep_values)
        return result

    def pertinent_cinds(self, h: int) -> List[SupportedCIND]:
        """Broad and minimal CINDs, straight from the definitions."""
        broad = self.broad_cinds(h)
        pertinent = [
            SupportedCIND(cind, support)
            for cind, support in broad.items()
            if not self._is_implied(cind, broad, h)
        ]
        pertinent.sort(key=lambda sc: (-sc.support, sc.cind))
        return pertinent

    def _is_implied(self, cind: CIND, broad: Dict[CIND, int], h: int) -> bool:
        """Is ``cind`` inferable from another broad CIND?

        Dependent implication: relaxing a binary dependent condition to one
        of its unary parts yields an implier; referenced implication:
        tightening a unary referenced condition to a binary one yields an
        implier.  Any valid implier is itself broad (it has at least the
        same support), so checking against ``broad`` is complete.
        """
        dependent, referenced = cind
        if dependent.is_binary:
            for relaxed in dependent.unary_relaxations():
                implier = CIND(relaxed, referenced)
                if implier != cind and not implier.is_trivial() and implier in broad:
                    return True
        if referenced.is_unary:
            for tightened in self._tightenings(referenced, h):
                implier = CIND(dependent, tightened)
                if implier != cind and not implier.is_trivial() and implier in broad:
                    return True
        return False

    def _tightenings(self, capture: Capture, h: int) -> Iterator[Capture]:
        """In-universe binary captures whose condition extends the capture's."""
        index = self._tightening_index(h)
        yield from index.get((capture.attr, capture.condition), ())

    def _tightening_index(self, h: int) -> Dict[Tuple[Attr, Condition], list]:
        """(attr, unary condition) -> binary captures extending it."""
        cached = getattr(self, "_tightening_cache", None)
        if cached is not None and cached[0] == h:
            return cached[1]
        index: Dict[Tuple[Attr, Condition], list] = {}
        for candidate in self.capture_universe(h):
            if not candidate.is_binary:
                continue
            for part in candidate.condition.unary_parts():
                index.setdefault((candidate.attr, part), []).append(candidate)
        self._tightening_cache = (h, index)
        return index

    # ------------------------------------------------------------------
    # whole-result comparison helper
    # ------------------------------------------------------------------

    def discover(self, h: int) -> Tuple[List[SupportedCIND], List[SupportedAR]]:
        """Pertinent CINDs and ARs, the full RDFind result, naively."""
        return self.pertinent_cinds(h), self.association_rules(h)


def _require_support(h: int) -> None:
    if h < 1:
        raise ValueError(f"support threshold must be >= 1, got {h}")
