"""Cross-endpoint CIND discovery with graceful degradation.

The paper's motivating use case (Section 1) is data integration:
DrugBank's drug references are contained in Diseasome's disease
entities, and CINDs surface exactly such links.  This module runs that
story against *live* sources: every endpoint is fetched into the same
:class:`~repro.storage.dictionary.TermDictionary` id space, then
cross-dataset CINDs (dependent capture from one source, referenced
capture from another) are discovered for every ordered source pair via
:func:`repro.apps.integration.discover_cross_cinds`.

The robustness contract — a federation job degrades, it does not
explode: when a source dies mid-fetch (circuit opens, retries exhausted,
endpoint gone), its outcome is recorded as ``failed`` — or ``partial``
when a resumable workspace preserved some pages — and discovery
proceeds over every pair of sources that *did* produce triples.  The
result document stamps each source's completeness, so a consumer can
tell "no CINDs exist" apart from "the source that would have shown them
was down".
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.apps.integration import IntegrationReport, discover_cross_cinds
from repro.federation.client import SparqlEndpointClient
from repro.federation.errors import FederationError
from repro.federation.ingest import FetchResult, fetch_endpoint
from repro.storage.columnar import EncodedDataset
from repro.storage.dictionary import TermDictionary

__all__ = [
    "FederatedResult",
    "SourceOutcome",
    "federated_discover",
    "federated_result_to_dict",
]

DOCUMENT_FORMAT = "rdfind-federated-cinds"
DOCUMENT_VERSION = 1

COMPLETE = "complete"
PARTIAL = "partial"
FAILED = "failed"


@dataclass
class SourceOutcome:
    """How one endpoint fared in a federation job."""

    name: str
    endpoint: str
    status: str  # COMPLETE | PARTIAL | FAILED
    triples: int
    error: str = ""
    encoded: Optional[EncodedDataset] = None
    fetch: Optional[FetchResult] = None

    @property
    def usable(self) -> bool:
        """Did this source contribute triples to discovery?"""
        return self.encoded is not None and len(self.encoded) > 0

    def to_dict(self) -> dict:
        entry = {
            "name": self.name,
            "endpoint": self.endpoint,
            "status": self.status,
            "triples": self.triples,
        }
        if self.error:
            entry["error"] = self.error
        if self.fetch is not None:
            entry["fetch"] = self.fetch.stats()
        return entry


@dataclass
class FederatedResult:
    """A federation job's full outcome: per-source fates plus the CINDs."""

    sources: List[SourceOutcome]
    pairs: List[Tuple[str, str, IntegrationReport]]
    dictionary: TermDictionary
    support_threshold: int

    @property
    def complete(self) -> bool:
        """True iff every source was fetched in full."""
        return all(source.status == COMPLETE for source in self.sources)

    @property
    def cind_count(self) -> int:
        return sum(len(report.cinds) for _, _, report in self.pairs)

    def describe(self) -> str:
        lines = [
            f"federated discovery over {len(self.sources)} sources "
            f"({'complete' if self.complete else 'PARTIAL'}): "
            f"{self.cind_count} cross-endpoint CINDs"
        ]
        for source in self.sources:
            suffix = f" — {source.error}" if source.error else ""
            lines.append(
                f"  [{source.status}] {source.name}: "
                f"{source.triples} triples{suffix}"
            )
        for left, right, report in self.pairs:
            lines.append(f"  {left} -> {right}: {len(report.cinds)} CINDs")
        return "\n".join(lines)


def federated_result_to_dict(result: FederatedResult) -> dict:
    """The JSON-ready partial-result document.

    Every source carries its completeness status, so a document produced
    by a degraded run is *honest*: pairs touching a failed source are
    absent, and the consumer can see exactly why.  Rendered capture
    strings are inlined (like the single-dataset result format), so the
    document's bytes do not depend on dictionary id assignment.
    """
    return {
        "format": DOCUMENT_FORMAT,
        "version": DOCUMENT_VERSION,
        "support_threshold": result.support_threshold,
        "complete": result.complete,
        "sources": [source.to_dict() for source in result.sources],
        "pairs": [
            {
                "left": left,
                "right": right,
                "cinds": [
                    {
                        "dependent": row.dependent.render(report.dictionary),
                        "referenced": row.referenced.render(report.dictionary),
                        "support": row.support,
                    }
                    for row in report.cinds
                ],
            }
            for left, right, report in result.pairs
        ],
    }


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "source"


def _normalize_sources(
    sources: Sequence[Union[str, Tuple[str, Union[str, SparqlEndpointClient]]]],
) -> List[Tuple[str, Union[str, SparqlEndpointClient]]]:
    normalized: List[Tuple[str, Union[str, SparqlEndpointClient]]] = []
    for index, source in enumerate(sources):
        if isinstance(source, tuple):
            name, target = source
        else:
            target = source
            name = (
                target.endpoint_url
                if isinstance(target, SparqlEndpointClient)
                else str(target)
            )
        normalized.append((name or f"source-{index}", target))
    names = [name for name, _ in normalized]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate source names in federation job: {names}")
    return normalized


def federated_discover(
    sources: Sequence[Union[str, Tuple[str, Union[str, SparqlEndpointClient]]]],
    h: int = 25,
    scope=None,
    page_size: int = 1000,
    workspace_dir: Optional[str] = None,
    client_factory: Callable[[str], SparqlEndpointClient] = SparqlEndpointClient,
) -> FederatedResult:
    """Fetch every source and discover CINDs across all usable pairs.

    ``sources`` mixes endpoint URLs, pre-built clients, and
    ``(name, url-or-client)`` pairs.  With ``workspace_dir`` each source
    fetch is resumable under ``<workspace_dir>/<slug(name)>`` — and a
    source whose fetch *fails* midway still contributes the pages its
    workspace preserved (status ``partial``) instead of vanishing.

    Never raises for endpoint failures: a dead source becomes a
    ``failed`` outcome in the returned :class:`FederatedResult`.
    Configuration errors (``h < 1``, duplicate names) still raise.
    """
    if len(sources) < 2:
        raise ValueError(
            f"federated discovery needs at least 2 sources, got {len(sources)}"
        )
    dictionary = TermDictionary()
    outcomes: List[SourceOutcome] = []

    for name, target in _normalize_sources(sources):
        workspace = (
            os.path.join(workspace_dir, _slug(name))
            if workspace_dir is not None
            else None
        )
        endpoint = (
            target.endpoint_url
            if isinstance(target, SparqlEndpointClient)
            else str(target)
        )
        try:
            fetch = fetch_endpoint(
                target,
                name=name,
                workspace=workspace,
                page_size=page_size,
                dictionary=dictionary,
                client_factory=client_factory,
            )
        except FederationError as error:
            salvaged = _salvage(workspace, dictionary, name)
            outcomes.append(
                SourceOutcome(
                    name=name,
                    endpoint=endpoint,
                    status=PARTIAL if salvaged is not None and len(salvaged) else FAILED,
                    triples=len(salvaged) if salvaged is not None else 0,
                    error=f"{type(error).__name__}: {error}",
                    encoded=salvaged,
                )
            )
            continue
        outcomes.append(
            SourceOutcome(
                name=name,
                endpoint=endpoint,
                status=COMPLETE if fetch.complete else PARTIAL,
                triples=len(fetch.encoded),
                encoded=fetch.encoded,
                fetch=fetch,
            )
        )

    pairs: List[Tuple[str, str, IntegrationReport]] = []
    usable = [outcome for outcome in outcomes if outcome.usable]
    for left in usable:
        for right in usable:
            if left is right:
                continue
            report = discover_cross_cinds(
                left.encoded.decode(),
                right.encoded.decode(),
                h=h,
                scope=scope,
                dictionary=dictionary,
            )
            pairs.append((left.name, right.name, report))

    return FederatedResult(
        sources=outcomes,
        pairs=pairs,
        dictionary=dictionary,
        support_threshold=h,
    )


def _salvage(
    workspace: Optional[str], dictionary: TermDictionary, name: str
) -> Optional[EncodedDataset]:
    """Whatever pages a failed fetch durably stored, as a dataset."""
    if workspace is None:
        return None
    from repro.federation.ingest import PAGES_NAME, _load_pages

    pages_path = os.path.join(workspace, PAGES_NAME)
    if not os.path.exists(pages_path):
        return None
    try:
        rows, _, _ = _load_pages(pages_path)
    except Exception:
        return None
    return EncodedDataset.from_terms(
        rows, dictionary=dictionary, name=name, deduplicate=True
    )
