"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.datasets.table1 import table1
from repro.rdf.model import Dataset, EncodedDataset


def random_rdf(
    seed: int,
    n_triples: int = 30,
    n_subjects: int = 6,
    n_predicates: int = 4,
    n_objects: int = 6,
) -> Dataset:
    """A small random RDF dataset with overlapping term vocabularies.

    Subjects/objects share part of their vocabulary (``x`` terms) so that
    cross-attribute inclusions occur, which exercises the full CIND
    search space.
    """
    rng = random.Random(seed)
    shared = [f"x{index}" for index in range(max(2, n_subjects // 2))]
    subjects = [f"s{index}" for index in range(n_subjects)] + shared
    predicates = [f"p{index}" for index in range(n_predicates)]
    objects = [f"o{index}" for index in range(n_objects)] + shared
    rows = [
        (rng.choice(subjects), rng.choice(predicates), rng.choice(objects))
        for _ in range(n_triples)
    ]
    return Dataset.from_tuples(rows, name=f"random-{seed}")


@pytest.fixture
def table1_dataset() -> Dataset:
    return table1()


@pytest.fixture
def table1_encoded(table1_dataset) -> EncodedDataset:
    return table1_dataset.encode()


def cind_set(result) -> set:
    """(CIND, support) pairs of a DiscoveryResult for set comparison."""
    return {(sc.cind, sc.support) for sc in result.cinds}


def ar_set(result) -> set:
    """(rule, support) pairs of a DiscoveryResult for set comparison."""
    return {(sa.rule, sa.support) for sa in result.association_rules}
