"""Discovery-as-a-service: the long-running RDFind job server.

The checkpoint subsystem (PR 5) already gives every discovery job a
durable, fingerprinted identity — this package puts a front door on it.
A :class:`~repro.server.routes.DiscoveryServer` accepts jobs over HTTP
(dataset ref + ``h``/scope/variant/executor config), runs each one in a
checkpoint-enabled worker subprocess, and serves status, live
:class:`~repro.dataflow.metrics.JobMetrics` progress, paginated results,
and cancellation.  Identical configurations are deduplicated through a
result cache keyed on the same BLAKE2b ``fingerprint_fields`` scheme the
checkpoint manifests use: a finished twin is served from cache without
recompute, an in-flight twin is joined rather than duplicated.

Layering (each module only knows the one below it)::

    routes.py    HTTP surface: stdlib ThreadingHTTPServer, JSON in/out
    service.py   admission/queueing, the worker pool, the result cache
    store.py     durable job records + artifacts next to checkpoint dirs
    worker.py    the per-job subprocess (checkpointed run_discovery path)
    streams.py   /streams endpoints: live add/remove maintenance sessions
    client.py    stdlib urllib client used by tests, CI, and scripts

Stdlib-only by design — the server adds no dependency the reproduction
does not already have.
"""

from repro.server.client import ServerClient, ServerError
from repro.server.routes import DiscoveryServer
from repro.server.service import JobService, ServiceConfig
from repro.server.store import JobRecord, JobRequest, JobStore
from repro.server.streams import StreamManager

__all__ = [
    "DiscoveryServer",
    "JobRecord",
    "JobRequest",
    "JobService",
    "JobStore",
    "ServerClient",
    "ServerError",
    "ServiceConfig",
    "StreamManager",
]
