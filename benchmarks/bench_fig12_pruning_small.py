"""Figure 12: RDFind vs RDFind-DE vs RDFind-NF on the small datasets.

The ablation of the lazy-pruning machinery (Section 8.5): RDFind-DE drops
the capture-support pruning / load balancing / approximate-validate
extraction, RDFind-NF additionally drops everything related to frequent
conditions.  The paper finds RDFind and DE comparable on the small
datasets while NF is "drastically inferior ... in all measurements".

All variants run under this reproduction's single-node work-memory
budget (the paper had a 10-node cluster with 40 GB aggregate memory).
The budget prices the candidate combiner state in cells (calibrated:
6M cells ≈ one 4 GB worker).  Measured peaks: RDFind stays below 150k
cells everywhere; NF's unpruned state exceeds 50M on every full-size
Diseasome run (the paper's cluster absorbed that, showing NF ~100x
slower instead); DE exceeds the budget at Diseasome h=10 (17.9M).
Failures are reported like the paper's: as lower bounds.
"""

import time

import pytest

from repro.dataflow.engine import SimulatedOutOfMemory

H_VALUES_BY_DATASET = {
    "Countries": (5, 10, 50, 100, 500, 1000),
    "Diseasome": (10, 50, 100, 500, 1000),  # h=5 explodes, see Figure 7 bench
}
VARIANTS = ("rdfind", "de", "nf")

#: Combiner-state cells one 4 GB worker can hold (see module docstring).
MEMORY_BUDGET = 6_000_000


@pytest.mark.parametrize("dataset_name", ["Countries", "Diseasome"])
def test_fig12_pruning_ablation_small(dataset_name, benchmark, report, cache):
    def body():
        rows = []
        for h in H_VALUES_BY_DATASET[dataset_name]:
            cells = {}
            for variant in VARIANTS:
                started = time.perf_counter()
                try:
                    _result, elapsed = cache.run(
                        dataset_name, h, variant=variant,
                        memory_budget=MEMORY_BUDGET,
                    )
                    cells[variant] = f"{elapsed:8.2f}s"
                except SimulatedOutOfMemory:
                    cells[variant] = f">{time.perf_counter() - started:7.2f}s!"
            rows.append((h, cells))
        return rows

    rows = benchmark.pedantic(body, rounds=1, iterations=1)

    section = report.section(
        f"Figure 12 — RDFind vs RDFind-DE vs RDFind-NF, {dataset_name} "
        "('!' = exceeded the 4GB-node budget; lower bound)"
    )
    section.row(
        f"{'h':>6} | {'RDFind':>10} | {'RDFind-DE':>10} | {'RDFind-NF':>10}"
    )
    nf_penalties = []
    for h, cells in rows:
        section.row(
            f"{h:>6} | {cells['rdfind']:>10} | {cells['de']:>10} | "
            f"{cells['nf']:>10}"
        )
        if not cells["nf"].endswith("!"):
            nf_seconds = float(cells["nf"].rstrip("s!").lstrip("> "))
            base_seconds = float(cells["rdfind"].rstrip("s").strip())
            nf_penalties.append(nf_seconds / max(base_seconds, 1e-6))

    # Shape: wherever NF completes, it is clearly slower than RDFind;
    # RDFind itself always completes.
    assert all(not cells["rdfind"].endswith("!") for _h, cells in rows)
    if nf_penalties:
        assert max(nf_penalties) > 1.5
    if dataset_name == "Diseasome":
        # Unpruned candidate state cannot fit the single node.
        assert all(cells["nf"].endswith("!") for _h, cells in rows)
    else:
        # On the tiny Countries dataset NF completes — and loses.
        assert not any(cells["nf"].endswith("!") for _h, cells in rows)
