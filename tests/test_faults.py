"""Fault tolerance: deterministic injection, retry, adaptive OOM recovery.

The acceptance criterion mirrors Flink's recovery guarantee: with a seeded
FaultPlan injecting transient failures, worker crashes, and stragglers,
discovery output must be byte-identical to a fault-free run — on both the
serial and the process backend — and the metrics must account for every
injection and retry.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.discovery import RDFind, RDFindConfig
from repro.dataflow.engine import ExecutionEnvironment, SimulatedOutOfMemory
from repro.dataflow.executors import (
    EXECUTOR_NAMES,
    ProcessExecutor,
    SerialExecutor,
)
from repro.dataflow.faults import (
    CRASH,
    OOM,
    STRAGGLER,
    TRANSIENT,
    FaultPlan,
    InjectedTaskFault,
    RetryPolicy,
    SimulatedClock,
    SimulatedWorkerCrash,
)
from repro.dataflow.metrics import StageMetrics
from tests.conftest import ar_set, cind_set, random_rdf


# ----------------------------------------------------------------------
# the plan: deterministic, seeded, order-independent
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=7, transient_rate=0.3, crash_rate=0.1)
        decisions = [plan.decide("stage-a", i, 0) for i in range(200)]
        assert decisions == [plan.decide("stage-a", i, 0) for i in range(200)]

    def test_seed_changes_schedule(self):
        low = FaultPlan(seed=1, transient_rate=0.3)
        high = FaultPlan(seed=2, transient_rate=0.3)
        assert [low.decide("s", i, 0) for i in range(100)] != [
            high.decide("s", i, 0) for i in range(100)
        ]

    def test_rates_approximate_probabilities(self):
        plan = FaultPlan(seed=3, transient_rate=0.2, crash_rate=0.1)
        decisions = [plan.decide("s", i, 0) for i in range(2000)]
        transient = decisions.count(TRANSIENT) / len(decisions)
        crash = decisions.count(CRASH) / len(decisions)
        assert 0.15 < transient < 0.25
        assert 0.06 < crash < 0.14

    def test_faults_stop_after_fire_attempts(self):
        plan = FaultPlan(seed=0, forced=(("s", 0, TRANSIENT),), fire_attempts=1)
        assert plan.decide("s", 0, 0) == TRANSIENT
        assert plan.decide("s", 0, 1) is None

    def test_forced_matches_stage_substring(self):
        plan = FaultPlan(
            seed=0,
            transient_rate=0.0,
            crash_rate=0.0,
            straggler_rate=0.0,
            forced=(("fc/", 1, CRASH),),
        )
        assert plan.decide("fc/unary-aggregate", 1, 0) == CRASH
        assert plan.decide("cg/evidences", 1, 0) is None
        assert plan.decide("fc/unary-aggregate", 0, 0) is None

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=0.6, crash_rate=0.6)

    def test_rejects_bad_forced_kind(self):
        with pytest.raises(ValueError):
            FaultPlan(forced=(("s", 0, "meteor"),))

    def test_plan_pickles(self):
        plan = FaultPlan(seed=42, forced=(("s", 0, TRANSIENT),))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_raise_for_kinds(self):
        plan = FaultPlan(straggler_seconds=0.0)
        with pytest.raises(InjectedTaskFault):
            plan.raise_for(TRANSIENT, "s", 0, 0)
        with pytest.raises(SimulatedWorkerCrash):
            plan.raise_for(CRASH, "s", 0, 0)
        with pytest.raises(SimulatedOutOfMemory):
            plan.raise_for(OOM, "s", 0, 0)
        plan.raise_for(STRAGGLER, "s", 0, 0)  # slows down, does not raise


# ----------------------------------------------------------------------
# the policy: bounded retries, backoff on a simulated clock
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            backoff_seconds=1.0, backoff_factor=10.0, max_backoff_seconds=5.0
        )
        assert policy.delay(4) == 5.0

    def test_genuine_oom_is_not_retryable(self):
        policy = RetryPolicy()
        error = SimulatedOutOfMemory("s", 100, 10)
        assert not policy.is_retryable(error, injected=None)
        assert policy.is_retryable(error, injected=OOM)

    def test_ordinary_exceptions_are_retryable(self):
        policy = RetryPolicy()
        assert policy.is_retryable(InjectedTaskFault("s", 0, 0), injected=TRANSIENT)
        assert policy.is_retryable(RuntimeError("boom"), injected=None)
        assert not policy.is_retryable(KeyboardInterrupt(), injected=None)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_clock_accumulates_instead_of_sleeping(self):
        clock = SimulatedClock()
        clock.sleep(0.5)
        clock.sleep(0.25)
        assert clock.elapsed == pytest.approx(0.75)


# ----------------------------------------------------------------------
# executor-level recovery
# ----------------------------------------------------------------------


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def _unit_pair(x):
    return [(x, 1)]


def _crash_forcing_plan(kind, task_index=1):
    return FaultPlan(
        seed=0,
        transient_rate=0.0,
        crash_rate=0.0,
        straggler_rate=0.0,
        forced=(("work", task_index, kind),),
    )


class TestSerialExecutorRecovery:
    @pytest.mark.parametrize("kind", [TRANSIENT, CRASH, OOM])
    def test_recovers_and_counts(self, kind):
        stage = StageMetrics(name="work")
        executor = SerialExecutor(fault_plan=_crash_forcing_plan(kind))
        results = executor.run(_square, list(range(6)), records=6, stage=stage)
        assert results == [x * x for x in range(6)]
        assert stage.faults_injected == 1
        assert stage.retries == 1
        assert executor.clock.elapsed > 0

    def test_straggler_slows_but_succeeds(self):
        plan = FaultPlan(
            seed=0,
            transient_rate=0.0,
            crash_rate=0.0,
            straggler_rate=0.0,
            straggler_seconds=0.0,
            forced=(("work", 0, STRAGGLER),),
        )
        stage = StageMetrics(name="work")
        executor = SerialExecutor(fault_plan=plan)
        assert executor.run(_square, [3], records=1, stage=stage) == [9]
        assert stage.faults_injected == 1
        assert stage.retries == 0

    def test_exhausted_retries_raise(self):
        plan = FaultPlan(
            seed=0,
            transient_rate=0.0,
            crash_rate=0.0,
            straggler_rate=0.0,
            fire_attempts=5,
            forced=(("work", 0, TRANSIENT),),
        )
        stage = StageMetrics(name="work")
        executor = SerialExecutor(
            retry_policy=RetryPolicy(max_retries=2), fault_plan=plan
        )
        with pytest.raises(InjectedTaskFault):
            executor.run(_square, [1], records=1, stage=stage)
        assert stage.retries == 2

    def test_genuine_error_without_plan_retries(self):
        calls = []

        def flaky(payload):
            calls.append(payload)
            if len(calls) == 1:
                raise RuntimeError("transient glitch")
            return payload

        stage = StageMetrics(name="work")
        executor = SerialExecutor()
        assert executor.run(flaky, [7], records=1, stage=stage) == [7]
        assert stage.retries == 1


class TestProcessExecutorRecovery:
    def _run(self, plan, payload_count=6, **kwargs):
        stage = StageMetrics(name="work")
        executor = ProcessExecutor(
            workers=2, inline_threshold=0, fault_plan=plan, **kwargs
        )
        try:
            results = executor.run(
                _square,
                list(range(payload_count)),
                records=payload_count,
                stage=stage,
            )
        finally:
            executor.close()
        return results, stage

    def test_transient_fault_recovered_in_pool(self):
        results, stage = self._run(_crash_forcing_plan(TRANSIENT))
        assert results == [x * x for x in range(6)]
        assert stage.faults_injected == 1
        assert stage.retries == 1

    def test_worker_crash_rebuilds_pool_once(self):
        """An injected BrokenExecutor travels the real pool-breakage path:
        teardown, one rebuild, replay of the unfinished tasks."""
        results, stage = self._run(_crash_forcing_plan(CRASH))
        assert results == [x * x for x in range(6)]
        assert stage.faults_injected == 1
        assert stage.retries >= 1

    def test_injected_oom_is_retried(self):
        results, stage = self._run(_crash_forcing_plan(OOM))
        assert results == [x * x for x in range(6)]
        assert stage.retries == 1

    def test_below_threshold_runs_inline_with_recovery(self):
        stage = StageMetrics(name="work")
        executor = ProcessExecutor(fault_plan=_crash_forcing_plan(TRANSIENT), workers=2)
        # records=None means "size unknown" and must run inline (no pool).
        results = executor.run(_square, list(range(4)), records=None, stage=stage)
        assert results == [x * x for x in range(4)]
        assert executor._pool is None
        executor.close()


# ----------------------------------------------------------------------
# exceptions survive pickling (pool boundary + retry replay)
# ----------------------------------------------------------------------


class TestFaultExceptionPickling:
    def test_oom_survives_retry_and_reraise_cycle(self):
        """The __reduce__ satellite: catch, pickle, unpickle, re-raise —
        the cycle a pool worker's failure goes through — must preserve
        the structured fields each time around."""
        original = SimulatedOutOfMemory("cg/evidences", 999, 100)
        for _round in range(3):
            payload = pickle.dumps(original)
            clone = pickle.loads(payload)
            with pytest.raises(SimulatedOutOfMemory) as excinfo:
                raise clone
            original = excinfo.value
        assert (original.stage, original.records, original.budget) == (
            "cg/evidences",
            999,
            100,
        )

    def test_injected_fault_pickles(self):
        clone = pickle.loads(pickle.dumps(InjectedTaskFault("s", 3, 1)))
        assert (clone.stage, clone.task_index, clone.attempt) == ("s", 3, 1)

    def test_worker_crash_pickles(self):
        clone = pickle.loads(pickle.dumps(SimulatedWorkerCrash("s", 2, 0)))
        assert isinstance(clone, SimulatedWorkerCrash)
        assert (clone.stage, clone.task_index, clone.attempt) == ("s", 2, 0)


# ----------------------------------------------------------------------
# end-to-end: faulty discovery == clean discovery (the acceptance test)
# ----------------------------------------------------------------------


#: At least one transient failure in each pipeline phase (frequent
#: conditions, capture groups, extraction) plus one worker crash.
PHASE_FAULTS = (
    ("fc/unary-frequent", 0, TRANSIENT),
    ("cg/evidences", 0, TRANSIENT),
    ("ex/merge-candidates", 0, TRANSIENT),
    ("cg/group-by-value", 1, CRASH),
)


def _discover(dataset, executor, **overrides):
    config = RDFindConfig(
        support_threshold=overrides.pop("support_threshold", 2),
        executor=executor,
        workers=overrides.pop("workers", 2),
        **overrides,
    )
    return RDFind(config).discover(dataset)


class TestFaultyDiscoveryEquivalence:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_forced_phase_faults_recovered(self, executor):
        dataset = random_rdf(3, n_triples=200)
        clean = _discover(dataset, executor)
        plan = FaultPlan(
            seed=0,
            transient_rate=0.0,
            crash_rate=0.0,
            straggler_rate=0.0,
            forced=PHASE_FAULTS,
        )
        faulty = _discover(dataset, executor, fault_plan=plan)
        assert faulty.cinds == clean.cinds
        assert faulty.association_rules == clean.association_rules
        assert cind_set(faulty) == cind_set(clean)
        assert ar_set(faulty) == ar_set(clean)
        assert faulty.metrics.total_faults_injected >= len(PHASE_FAULTS)
        assert faulty.metrics.total_retries >= len(PHASE_FAULTS)
        assert clean.metrics.total_faults_injected == 0

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_seeded_random_faults_recovered(self, executor):
        dataset = random_rdf(5, n_triples=150)
        clean = _discover(dataset, executor)
        faulty = _discover(dataset, executor, fault_seed=1234)
        assert faulty.cinds == clean.cinds
        assert faulty.association_rules == clean.association_rules
        # The default rates hit a ~190-stage pipeline with certainty.
        assert faulty.metrics.total_faults_injected > 0
        assert faulty.metrics.total_retries > 0

    def test_fault_seed_env_default(self, monkeypatch):
        monkeypatch.setenv("RDFIND_FAULTS", "99")
        monkeypatch.setenv("RDFIND_MAX_RETRIES", "5")
        config = RDFindConfig()
        assert config.fault_seed == 99
        assert config.max_retries == 5
        assert config.effective_fault_plan() == FaultPlan(seed=99)
        assert config.effective_retry_policy() == RetryPolicy(max_retries=5)

    def test_no_plan_by_default(self):
        config = RDFindConfig()
        assert config.effective_fault_plan() is None
        assert config.effective_retry_policy() is None

    def test_summary_reports_fault_counters(self):
        dataset = random_rdf(5, n_triples=60)
        result = _discover(dataset, "serial", fault_seed=7)
        summary = result.metrics.summary()
        assert summary["faults_injected"] == result.metrics.total_faults_injected
        assert summary["retries"] == result.metrics.total_retries
        assert "recovered_oom_splits" in summary
        assert "faults=" in result.metrics.describe()


# ----------------------------------------------------------------------
# adaptive OOM recovery (--oom-recovery)
# ----------------------------------------------------------------------


class TestOomRecovery:
    BUDGET = 500  # fails in ex/merge-candidates without recovery

    def test_flag_defaults_off(self):
        assert RDFindConfig().oom_recovery is False
        assert ExecutionEnvironment(parallelism=2).oom_recovery is False

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("RDFIND_OOM_RECOVERY", "1")
        assert RDFindConfig().oom_recovery is True

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_budget_fails_without_flag_completes_with_it(self, executor):
        # The record-count budget simulation is inline-shuffle semantics:
        # under --shuffle spill the keyed operators spill instead of
        # raising, so pin inline regardless of the ambient RDFIND_SHUFFLE.
        dataset = random_rdf(3, n_triples=200)
        with pytest.raises(SimulatedOutOfMemory):
            _discover(
                dataset, executor, memory_budget=self.BUDGET, shuffle="inline"
            )
        recovered = _discover(
            dataset,
            executor,
            memory_budget=self.BUDGET,
            oom_recovery=True,
            shuffle="inline",
        )
        unconstrained = _discover(dataset, executor)
        assert recovered.cinds == unconstrained.cinds
        assert recovered.association_rules == unconstrained.association_rules
        assert recovered.metrics.total_recovered_oom_splits >= 1

    def test_fused_combiner_spill(self):
        """A combiner-state OOM falls back to the no-combine shuffle
        (plus key-splitting of the post-shuffle reduce buckets)."""
        with ExecutionEnvironment(
            parallelism=2, memory_budget=30, oom_recovery=True
        ) as environment:
            data = environment.from_collection(range(100))
            reduced = data.flat_map_reduce_by_key(_unit_pair, _add, name="spill")
            # collect() would trip the driver-side budget check, which is
            # deliberately unrecoverable; read the partitions directly.
            counts = dict(
                pair for partition in reduced.partitions for pair in partition
            )
        assert counts == {x: 1 for x in range(100)}
        metrics = environment.metrics
        assert metrics.total_recovered_oom_splits >= 1

    def test_driver_side_budget_is_not_recoverable(self):
        """collect()'s driver-side budget check models the driver's own
        memory, which splitting workers cannot help."""
        with ExecutionEnvironment(
            parallelism=2, memory_budget=10, oom_recovery=True
        ) as environment:
            data = environment.from_collection(range(100))
            with pytest.raises(SimulatedOutOfMemory):
                data.collect()
