"""Tests for violation injection and the exactness semantics of CINDs."""

import pytest

from repro.core.cind import decode_cind
from repro.core.discovery import find_pertinent_cinds
from repro.core.validation import NaiveProfiler
from repro.datasets.noise import corrupt, erosion_curve, violating_triple
from repro.rdf.model import Dataset
from tests.conftest import random_rdf


class TestViolatingTriple:
    @pytest.mark.parametrize("seed", range(5))
    def test_injection_kills_the_targeted_cind(self, seed):
        """For every discovered CIND, the constructed triple breaks it."""
        dataset = random_rdf(seed + 1300, n_triples=40)
        encoded = dataset.encode()
        result = find_pertinent_cinds(encoded, support_threshold=2)
        for supported in result.cinds[:10]:
            decoded = decode_cind(supported.cind, result.dictionary)
            adverse = violating_triple(dataset, decoded, fresh_term=f"fresh{seed}")
            assert adverse is not None
            poisoned = Dataset(dataset)
            poisoned.add(adverse)
            profiler = NaiveProfiler(poisoned.encode())
            # re-resolve the CIND on the poisoned dataset's dictionary
            from repro.core.cind import CIND, Capture
            from repro.core.conditions import BinaryCondition, UnaryCondition

            def encode_condition(condition, dictionary):
                if isinstance(condition, UnaryCondition):
                    return UnaryCondition(
                        condition.attr, dictionary.encode(condition.value)
                    )
                return BinaryCondition(
                    condition.attr1,
                    dictionary.encode(condition.value1),
                    condition.attr2,
                    dictionary.encode(condition.value2),
                )

            dictionary = profiler.dataset.dictionary
            reencoded = CIND(
                Capture(
                    decoded.dependent.attr,
                    encode_condition(decoded.dependent.condition, dictionary),
                ),
                Capture(
                    decoded.referenced.attr,
                    encode_condition(decoded.referenced.condition, dictionary),
                ),
            )
            assert not profiler.is_valid(reencoded)

    def test_trivial_cind_cannot_be_violated(self):
        from repro.core.cind import CIND, Capture
        from repro.core.conditions import BinaryCondition, UnaryCondition
        from repro.rdf.model import Attr

        trivial = CIND(
            Capture(Attr.S, BinaryCondition.make(Attr.P, "a", Attr.O, "b")),
            Capture(Attr.S, UnaryCondition(Attr.P, "a")),
        )
        assert violating_triple(Dataset(), trivial) is None

    def test_existing_fresh_term_refused(self):
        from repro.core.cind import CIND, Capture
        from repro.core.conditions import UnaryCondition
        from repro.rdf.model import Attr

        dataset = Dataset.from_tuples([("x", "p", "o"), ("x", "q", "o")])
        cind = CIND(
            Capture(Attr.S, UnaryCondition(Attr.P, "p")),
            Capture(Attr.S, UnaryCondition(Attr.P, "q")),
        )
        assert violating_triple(dataset, cind, fresh_term="x") is None


class TestCorruption:
    def test_noise_is_additive(self):
        dataset = random_rdf(1400, n_triples=50)
        noisy = corrupt(dataset, fraction=0.1, seed=1)
        assert set(dataset) <= set(noisy)
        assert len(noisy) > len(dataset)

    def test_zero_fraction_is_identity(self):
        dataset = random_rdf(1401, n_triples=30)
        assert corrupt(dataset, fraction=0.0) == dataset

    def test_deterministic(self):
        dataset = random_rdf(1402, n_triples=30)
        assert corrupt(dataset, 0.2, seed=5) == corrupt(dataset, 0.2, seed=5)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            corrupt(Dataset(), fraction=1.5)


class TestErosion:
    def test_cinds_erode_under_noise(self):
        """Exact constraints must not *gain* from additive noise."""
        from repro.datasets import countries

        dataset = countries(scale=0.3)
        curve = erosion_curve(dataset, h=10, fractions=(0.0, 0.1), seed=3)
        clean_count = curve[0][1]
        noisy_count = curve[1][1]
        assert noisy_count <= clean_count
