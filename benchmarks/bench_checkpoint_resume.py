"""Checkpoint/resume: what durability costs and what a crash gets back.

Not a paper figure — this characterizes the driver-level checkpointing
the paper inherits from its Flink substrate (Section 8 jobs survive task
failures via lineage; a *driver* loss on a cluster is recovered by
resubmitting the job against its last completed state).  Two questions:

* what does checkpointing *cost*?  Diseasome h=10 with ``--checkpoint
  phase`` persists the fc / cg / ex boundaries; the overhead is the
  framed pickle I/O, reported as bytes and as a wall-clock ratio against
  the uncheckpointed run (output asserted identical).
* what does a crash *recover*?  Simulating a driver killed after phase 1
  (the cg and ex checkpoints discarded, fc durable), the ``--resume``
  relaunch must skip FCDetector entirely and still produce identical
  output; with every phase durable, the relaunch replays nothing but the
  consolidation. The report shows the wall-clock saved in both cases.
"""

import shutil
import tempfile

from repro.core.discovery import RDFind, RDFindConfig
from repro.dataflow.checkpoint import JobManifest, CheckpointManager

from benchmarks.conftest import once

DATASET = "Diseasome"
H = 10


def _identical(a, b):
    return a.cinds == b.cinds and a.association_rules == b.association_rules


def _config(directory, **overrides):
    return RDFindConfig(
        support_threshold=H,
        checkpoint="phase",
        checkpoint_dir=directory,
        **overrides,
    )


def test_checkpoint_resume(benchmark, report, cache):
    def body():
        clean_result, clean_seconds = cache.run(DATASET, H)
        dataset = cache.dataset(DATASET)
        directory = tempfile.mkdtemp(prefix="rdfind-bench-ckpt-")
        try:
            checkpointed = RDFind(_config(directory)).discover(dataset)

            # crash after phase 1: only the fc boundary survived
            manager = CheckpointManager(directory, "phase", fingerprint="bench")
            manager.manifest = JobManifest.load(f"{directory}/manifest.json")
            manager.discard("ex")
            manager.discard("cg")
            resumed_p1 = RDFind(_config(directory, resume=True)).discover(dataset)

            # every phase durable: the relaunch replays almost nothing
            full = RDFind(_config(directory, resume=True)).discover(dataset)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
        return clean_result, clean_seconds, checkpointed, resumed_p1, full

    clean_result, clean_seconds, checkpointed, resumed_p1, full = once(
        benchmark, body
    )

    section = report.section(
        f"Checkpoint/resume — durable phase boundaries ({DATASET} h={H})"
    )
    overhead = checkpointed.elapsed_seconds / clean_seconds
    section.row(
        f"checkpointing: {checkpointed.metrics.checkpoint_bytes:,} bytes "
        f"across 3 phase boundaries in "
        f"{checkpointed.metrics.checkpoint_seconds:.2f}s I/O -> "
        f"{overhead:.2f}x clean wall-clock "
        f"({checkpointed.elapsed_seconds:.2f}s vs {clean_seconds:.2f}s)"
    )
    for label, run in (("crash after phase 1", resumed_p1), ("all phases durable", full)):
        same = _identical(clean_result, run)
        section.row(
            f"resume, {label}: {run.metrics.resumed_stages} stages restored, "
            f"{run.elapsed_seconds:.2f}s "
            f"({run.elapsed_seconds / clean_seconds:.2f}x clean) -> "
            f"output {'identical' if same else 'DIFFERS'}"
        )
        assert same, f"resumed run ({label}) differs from clean run"

    assert _identical(clean_result, checkpointed)
    assert checkpointed.metrics.checkpoint_bytes > 0
    assert checkpointed.metrics.resumed_stages == 0
    assert resumed_p1.metrics.resumed_stages == 1  # fc only
    assert full.metrics.resumed_stages == 2  # fc + ex (cg nested inside ex)
