"""The per-job worker subprocess (``python -m repro.server.worker <job-dir>``).

The service runs every admitted job in a fresh interpreter rather than a
thread, which buys three guarantees a thread cannot give:

* **cancellation** is a real SIGTERM — no cooperative polling threaded
  through the pipeline, and a job's process executor children die with
  it (the handler installed here SIGKILLs ``multiprocessing`` children
  before re-delivering the signal);
* **crash isolation** — an OOM or interpreter abort takes down one job,
  not the server; the service requeues it and the relaunch *resumes*
  from its durable checkpoint (`resume=True` is unconditional: on a
  fresh checkpoint dir it is simply a clean run);
* **restart resumability** — the server itself dying changes nothing
  the worker relies on: job state lives in the record + checkpoint dir,
  both of which the restarted server rescans.

Protocol with the service (single-writer per file, see
:mod:`repro.server.store`): the worker reads ``job.json`` and writes
``progress.json`` (live :meth:`JobMetrics.to_dict` snapshots from a
watcher thread), then on completion ``result.json`` (via
:func:`repro.core.serialization.dump_result` — byte-identical to the
CLI's ``discover -o``), ``metrics.json``, and last — it is the commit
point — ``outcome.json``.  A worker that dies without an outcome is, by
definition, a crash.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import threading
import time
from typing import List, Optional

from repro.core.conditions import ConditionScope
from repro.core.discovery import RDFind, RDFindConfig
from repro.core.serialization import dump_result
from repro.dataflow.metrics import JobMetrics
from repro.server.store import JobRequest, JobStore, atomic_write_json, read_json

__all__ = ["main", "run_job"]

#: How often the watcher thread publishes a live metrics snapshot.
PROGRESS_INTERVAL_SECONDS = 0.15

#: Polling period of the ``hold`` test hook.
_HOLD_POLL_SECONDS = 0.05

_CONFIG_BUILDERS = {
    "rdfind": RDFindConfig,
    "de": RDFindConfig.direct_extraction,
    "nf": RDFindConfig.no_frequent_conditions,
}


def _install_signal_handlers() -> None:
    """Make SIGTERM take the whole job down, pool children included.

    Installed before any workspace registration, so the workspace
    module's own handler (installed later, when the checkpoint manager
    registers the job's checkpoint dir) chains back to this one: sweep
    tmp litter first, then kill the executor's children, then die with
    the signal's default disposition so the exit status is honest.
    """

    def handler(signum: int, _frame) -> None:
        try:
            for child in multiprocessing.active_children():
                child.kill()
        finally:
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)

    try:
        signal.signal(signal.SIGTERM, handler)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass


def _load_dataset(request: JobRequest, snapshot_dir: Optional[str] = None):
    """Load the request's dataset in its requested physical layout.

    With ``snapshot_dir`` (the store-wide snapshot cache) a warm job
    mmap-loads the dataset instead of re-parsing/generating it; the
    first cold job populates the cache.
    """
    # cli._load_input is the one canonical input loader (registry refs,
    # .nt, .ttl, .snap); imported lazily to keep worker startup lean.
    from repro.cli import _load_input

    spec = request.dataset
    if (
        not spec.startswith(("dataset:", "endpoint:"))
        and not os.path.exists(spec)
    ):
        # Bare registry names are accepted in requests; normalize to the
        # loader's explicit form.  (endpoint: refs pass through to the
        # loader's federation path untouched.)
        spec = f"dataset:{spec}"
    return _load_input(
        spec,
        scale=request.scale,
        storage=request.storage,
        snapshot_dir=snapshot_dir,
    )


def _build_config(request: JobRequest, checkpoint_dir: str) -> RDFindConfig:
    """The request as an :class:`RDFindConfig`, checkpointing always on.

    ``resume=True`` unconditionally: a first attempt sees an empty
    checkpoint dir (clean run), a retried or server-restarted attempt
    sees its predecessor's durable boundaries and skips them.
    """
    scope = (
        ConditionScope.predicates_only()
        if request.scope == "predicates"
        else ConditionScope.full()
    )
    overrides = {}
    if request.executor is not None:
        overrides["executor"] = request.executor
    if request.workers is not None:
        overrides["workers"] = request.workers
    if request.crash_point:
        overrides["crash_points"] = (request.crash_point,)
    return _CONFIG_BUILDERS[request.variant](
        support_threshold=request.support_threshold,
        parallelism=request.parallelism,
        scope=scope,
        storage=request.storage,
        checkpoint="phase",
        checkpoint_dir=checkpoint_dir,
        resume=True,
        **overrides,
    )


def _hold_until_released(job_dir: str, request: JobRequest) -> None:
    """Deterministic test hook: park until ``<job-dir>/release`` exists.

    Lets the tests pin a job in the ``running`` state for exactly as
    long as they need (cancellation, admission, restart scenarios)
    without timing-based sleeps.  Inert unless the request set ``hold``.
    """
    if not request.hold:
        return
    release = os.path.join(job_dir, "release")
    while not os.path.exists(release):
        time.sleep(_HOLD_POLL_SECONDS)


class _ProgressPublisher:
    """Watcher thread snapshotting shared JobMetrics into progress.json.

    The metrics object is mutated by the discovery pipeline while this
    thread reads it; `to_dict` copies are taken best-effort (a torn read
    of a growing list is harmless — the next snapshot supersedes it in
    well under a second, and the atomic rename means readers only ever
    see whole documents).
    """

    def __init__(self, path: str, metrics: JobMetrics) -> None:
        self._path = path
        self._metrics = metrics
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="progress-publisher", daemon=True
        )

    def __enter__(self) -> "_ProgressPublisher":
        self._thread.start()
        return self

    def __exit__(self, *_exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.publish()  # final state, so pollers see the last stages

    def publish(self) -> None:
        try:
            atomic_write_json(self._path, self._metrics.to_dict())
        except Exception:  # noqa: BLE001 - progress is advisory, never fatal
            pass

    def _run(self) -> None:
        while not self._stop.wait(PROGRESS_INTERVAL_SECONDS):
            self.publish()


def run_job(job_dir: str) -> int:
    """Execute the job persisted under ``job_dir``; returns an exit code."""
    store = JobStore(os.path.dirname(os.path.abspath(job_dir)))
    job_id = os.path.basename(os.path.normpath(job_dir))
    data = read_json(store.record_path(job_id))
    if data is None:
        print(f"worker: no job record under {job_dir}", file=sys.stderr)
        return 2
    request = JobRequest.from_json(data["request"])

    started = time.perf_counter()
    try:
        _hold_until_released(job_dir, request)
        dataset = _load_dataset(request, snapshot_dir=store.snapshot_dir())
        config = _build_config(request, store.checkpoint_dir(job_id))
        metrics = JobMetrics()
        with _ProgressPublisher(store.progress_path(job_id), metrics):
            result = RDFind(config).discover(dataset, metrics=metrics)
        # result.json first, outcome.json last: the outcome is the commit
        # point, so a crash between the two reads as "no result yet".
        tmp_result = store.result_path(job_id) + ".tmp"
        dump_result(result, tmp_result)
        os.replace(tmp_result, store.result_path(job_id))
        atomic_write_json(store.metrics_path(job_id), metrics.to_dict())
        atomic_write_json(
            store.outcome_path(job_id),
            {
                "state": "succeeded",
                "elapsed_seconds": time.perf_counter() - started,
                "summary": {
                    "variant": result.config.variant_name,
                    "h": result.support_threshold,
                    "triples": result.stats.num_triples,
                    "pertinent_cinds": len(result.cinds),
                    "association_rules": len(result.association_rules),
                    "resumed_stages": metrics.resumed_stages,
                },
            },
        )
        return 0
    except Exception as error:  # noqa: BLE001 - every failure becomes a verdict
        atomic_write_json(
            store.outcome_path(job_id),
            {
                "state": "failed",
                "elapsed_seconds": time.perf_counter() - started,
                "error": f"{type(error).__name__}: {error}",
            },
        )
        print(f"worker: job {job_id} failed: {error}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print(json.dumps({"error": "usage: repro.server.worker <job-dir>"}))
        return 2
    _install_signal_handlers()
    return run_job(argv[0])


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
