"""Versioned, CRC-framed on-disk snapshots of encoded datasets.

A snapshot serializes an :class:`~repro.storage.columnar.EncodedDataset`
— the term dictionary plus the three id columns — into a single file
that loads back in O(ms): the file is ``mmap``-ed, the id columns are
adopted with one ``array.frombytes`` memcpy each, and the dictionary
terms stay *lazy* — a :class:`SnapshotTermDictionary` serves ``decode``
straight off the mapped UTF-8 blob and only materializes the terms a
run actually renders.  Re-parsing N-Triples, by contrast, re-tokenizes
and re-interns every term of every triple; the gap is the ≥20x measured
in ``benchmarks/bench_snapshot_load.py``.

On-disk layout (after an 8-byte magic)::

    frame 0   header JSON: version, name, triples, terms, typecode,
              byteorder, remapped
    frame 1   dictionary term-end offsets, array('q') bytes
    frame 2+  dictionary UTF-8 blob (chunked)
    ...       s column bytes (chunked), p column bytes, o column bytes

Every frame is the ``[length][CRC32][payload]`` format of
:mod:`repro.core.framing`, so bit rot and truncation surface as typed
errors instead of silently wrong discovery output.  Payloads larger
than the frame cap are split across frames; the reader knows each
section's byte length from the header and reassembles.

Durability follows the repo convention: write to a temp file in the
destination directory, fsync, ``os.replace``.

:func:`load_with_snapshot_cache` is the warm-start policy used by the
CLI resume path and the job server: given a cache key for the source
input, load the snapshot if one exists and is intact, else parse from
source and leave a snapshot behind for next time.  A corrupted snapshot
is *never* trusted: it logs a warning and falls back to re-parsing.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
import zlib
from array import array
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.framing import FRAME_HEADER, MAX_FRAME_BYTES, write_frame
from repro.storage.columnar import EncodedDataset
from repro.storage.dictionary import TermDictionary

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_SUFFIX",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotTermDictionary",
    "load_snapshot",
    "load_with_snapshot_cache",
    "save_snapshot",
    "snapshot_cache_fields",
    "snapshot_cache_key",
    "snapshot_info",
]

#: File magic: format name + two-digit major version.
SNAPSHOT_MAGIC = b"RDSNAP01"

#: Header ``version`` field; bumped on any layout change.
SNAPSHOT_VERSION = 1

#: Canonical snapshot file extension (recognized by ``cli._load_input``).
SNAPSHOT_SUFFIX = ".snap"

#: Split section payloads into frames of at most this many bytes (well
#: under ``MAX_FRAME_BYTES``; small enough that one frame's CRC pass
#: stays cache-friendly).
_FRAME_CHUNK = 64 << 20


class SnapshotError(ValueError):
    """A snapshot file cannot be trusted (corrupt, truncated, or alien).

    Callers with a source of truth (the original input) should catch
    this, warn, and re-parse — never use a partially-decoded snapshot.
    """


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot (bad magic) or an unsupported version."""


# ----------------------------------------------------------------------
# saving
# ----------------------------------------------------------------------


def save_snapshot(
    encoded: EncodedDataset,
    path: str,
    remap: bool = False,
) -> dict:
    """Write ``encoded`` to ``path`` atomically; returns the header dict.

    With ``remap`` the dataset's term ids are first rewritten in
    frequency order (:func:`repro.storage.compressed.remap_by_frequency`)
    so the stored columns carry the shortest possible codes.  The decoded
    *triples* are identical either way, but remapping changes the integer
    coding — and therefore the dataset digest checkpoint resume keys on —
    so the default keeps the ids exactly as loaded.
    """
    if remap:
        from repro.storage.compressed import remap_by_frequency

        encoded = remap_by_frequency(encoded)
    dictionary = encoded.dictionary
    ends = array("q")
    blob_parts: List[bytes] = []
    position = 0
    for term in dictionary.terms():
        data = term.encode("utf-8", "surrogatepass")
        position += len(data)
        ends.append(position)
        blob_parts.append(data)
    blob = b"".join(blob_parts)
    s, p, o = encoded.columns
    header = {
        "version": SNAPSHOT_VERSION,
        "name": encoded.name,
        "triples": len(encoded),
        "terms": len(dictionary),
        "typecode": s.typecode,
        "byteorder": sys.byteorder,
        "remapped": bool(remap),
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    tmp_path = os.path.join(directory, f".{os.path.basename(path)}.tmp.{os.getpid()}")
    try:
        with open(tmp_path, "wb") as stream:
            stream.write(SNAPSHOT_MAGIC)
            write_frame(
                stream, json.dumps(header, sort_keys=True).encode("utf-8")
            )
            _write_section(stream, ends.tobytes())
            _write_section(stream, blob)
            for column in (s, p, o):
                _write_section(stream, column.tobytes())
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    return header


def _write_section(stream, payload: bytes) -> None:
    """Write one section, split across frames if it exceeds the cap.

    A zero-byte section still writes one (empty) frame so the reader's
    frame count is deterministic.
    """
    if not payload:
        write_frame(stream, b"")
        return
    view = memoryview(payload)
    for start in range(0, len(view), _FRAME_CHUNK):
        write_frame(stream, view[start : start + _FRAME_CHUNK])


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------


class _FrameWalker:
    """Sequential frame reader over an mmap-ed (or read) buffer.

    Re-implements the :mod:`repro.core.framing` read loop over a
    ``memoryview`` instead of a file object so payload slices stay
    zero-copy views into the mapping.
    """

    def __init__(self, view: memoryview) -> None:
        self._view = view
        self._pos = 0

    def next_frame(self) -> memoryview:
        view, pos = self._view, self._pos
        if pos + FRAME_HEADER.size > len(view):
            raise SnapshotError(
                f"snapshot ended inside a frame header at byte {pos}"
            )
        length, checksum = FRAME_HEADER.unpack_from(view, pos)
        pos += FRAME_HEADER.size
        if length > MAX_FRAME_BYTES:
            raise SnapshotError(
                f"declared frame length {length} exceeds the frame cap"
            )
        if pos + length > len(view):
            raise SnapshotError(
                f"snapshot ended inside a {length}-byte frame payload"
            )
        payload = view[pos : pos + length]
        if zlib.crc32(payload) != checksum:
            raise SnapshotError(
                f"snapshot frame CRC mismatch at byte {self._pos}"
            )
        self._pos = pos + length
        return payload

    def next_section(self, nbytes: int) -> List[memoryview]:
        """The frames making up a section of ``nbytes`` total bytes."""
        frames: List[memoryview] = []
        remaining = nbytes
        while True:
            frame = self.next_frame()
            frames.append(frame)
            remaining -= len(frame)
            if remaining <= 0:
                break
        if remaining < 0:
            raise SnapshotError(
                f"snapshot section overruns its declared {nbytes} bytes"
            )
        return frames


class SnapshotTermDictionary(TermDictionary):
    """A term dictionary decoding lazily off a snapshot's UTF-8 blob.

    ``decode`` slices the mapped blob on first use and caches the
    string; the forward (term -> id) index is built only if something
    actually encodes or looks up by string (discovery over an encoded
    dataset never does).  Everything else behaves exactly like the eager
    :class:`TermDictionary` it subclasses.
    """

    __slots__ = ("_blob", "_ends", "_count", "_indexed", "_keepalive")

    def __init__(self, blob: memoryview, ends: array, keepalive=None) -> None:
        super().__init__()
        self._blob = blob
        self._ends = ends
        self._count = len(ends)
        self._indexed = False
        self._keepalive = keepalive
        self._id_to_term = [None] * self._count
        self._utf8_payload = len(blob)

    def __len__(self) -> int:
        return self._count

    def decode(self, term_id: int) -> str:
        term = self._id_to_term[term_id]
        if term is None:
            start = self._ends[term_id - 1] if term_id else 0
            term = str(self._blob[start : self._ends[term_id]], "utf-8", "surrogatepass")
            self._id_to_term[term_id] = term
        return term

    def terms(self) -> Iterator[str]:
        decode = self.decode
        return (decode(term_id) for term_id in range(self._count))

    def _ensure_index(self) -> None:
        """Materialize every term and the forward map (first string use)."""
        if self._indexed:
            return
        self._term_to_id = {
            term: term_id for term_id, term in enumerate(self.terms())
        }
        self._indexed = True

    def __contains__(self, term: str) -> bool:
        self._ensure_index()
        return super().__contains__(term)

    def lookup(self, term: str) -> Optional[int]:
        self._ensure_index()
        return super().lookup(term)

    def encode(self, term: str) -> int:
        self._ensure_index()
        term_id = super().encode(term)
        self._count = len(self._id_to_term)
        return term_id

    def encode_existing(self, term: str) -> int:
        self._ensure_index()
        return super().encode_existing(term)

    def materialize(self) -> TermDictionary:
        """An eager, self-contained copy (no mmap references)."""
        eager = TermDictionary()
        for term in self.terms():
            eager.encode(term)
        return eager

    def __reduce__(self):
        # mmap-backed views cannot cross a pickle boundary (the process
        # executor pickles operator state); ship an eager copy instead.
        return (_rebuild_eager_dictionary, (list(self.terms()),))


def _rebuild_eager_dictionary(terms: List[str]) -> TermDictionary:
    dictionary = TermDictionary()
    for term in terms:
        dictionary.encode(term)
    return dictionary


def _map_file(stream) -> Tuple[memoryview, object]:
    """Map an open file; returns ``(view, keepalive)``.

    Empty files cannot be mmap-ed (ValueError) — fall back to a read,
    which for a zero-byte "snapshot" just surfaces the bad-magic error.
    """
    try:
        mapped = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
    except ValueError:
        data = stream.read()
        return memoryview(data), data
    return memoryview(mapped), mapped


def _read_layout(path: str):
    """Open + map ``path`` and decode through the header.

    Returns ``(header, walker, view, keepalive)``; any structural
    problem raises :class:`SnapshotError`.
    """
    try:
        stream = open(path, "rb")
    except OSError as error:
        raise SnapshotError(f"cannot open snapshot {path}: {error}") from error
    with stream:
        view, keepalive = _map_file(stream)
    if len(view) < len(SNAPSHOT_MAGIC) or bytes(view[: len(SNAPSHOT_MAGIC)]) != SNAPSHOT_MAGIC:
        raise SnapshotFormatError(f"{path} is not an RDFind snapshot (bad magic)")
    walker = _FrameWalker(view[len(SNAPSHOT_MAGIC) :])
    try:
        header = json.loads(bytes(walker.next_frame()).decode("utf-8"))
    except SnapshotError:
        raise
    except (ValueError, UnicodeDecodeError) as error:
        raise SnapshotError(f"snapshot header unreadable: {error}") from error
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotFormatError(
            f"snapshot version {version!r} is not supported "
            f"(expected {SNAPSHOT_VERSION})"
        )
    if header.get("byteorder") != sys.byteorder:
        raise SnapshotFormatError(
            f"snapshot byteorder {header.get('byteorder')!r} does not match "
            f"this host ({sys.byteorder})"
        )
    return header, walker, view, keepalive


def snapshot_info(path: str) -> dict:
    """The header of a snapshot file (cheap: magic + first frame only)."""
    header, _walker, _view, _keepalive = _read_layout(path)
    return header


def load_snapshot(path: str) -> EncodedDataset:
    """Load a snapshot into an :class:`EncodedDataset`.

    The id columns are adopted with one ``frombytes`` each; the
    dictionary decodes terms lazily off the mapping.  Any structural
    damage — bad magic, wrong version, CRC mismatch, truncation, id
    range violations — raises :class:`SnapshotError`.
    """
    header, walker, _view, keepalive = _read_layout(path)
    terms = header.get("terms", 0)
    triples = header.get("triples", 0)
    typecode = header.get("typecode")
    if typecode not in ("i", "q"):
        raise SnapshotError(f"snapshot column typecode {typecode!r} unknown")
    itemsize = array(typecode).itemsize
    try:
        ends = _section_array(walker, "q", terms, terms * 8)
        blob_nbytes = ends[-1] if terms else 0
        if blob_nbytes < 0 or (terms and min(ends) < 0):
            raise SnapshotError("snapshot dictionary offsets are negative")
        blob_frames = walker.next_section(blob_nbytes)
        columns = [
            _section_array(walker, typecode, triples, triples * itemsize)
            for _ in range(3)
        ]
    except SnapshotError:
        raise
    except (ValueError, OverflowError, struct.error) as error:
        raise SnapshotError(f"snapshot payload undecodable: {error}") from error
    if len(blob_frames) == 1:
        blob = blob_frames[0]
    else:
        blob = memoryview(b"".join(bytes(f) for f in blob_frames))
    dictionary = SnapshotTermDictionary(blob, ends, keepalive=keepalive)
    for column in columns:
        if len(column) and min(column) < 0:
            raise SnapshotError("snapshot columns contain negative term ids")
        if len(column) and terms and max(column) >= terms:
            raise SnapshotError(
                "snapshot columns reference ids beyond the dictionary"
            )
    try:
        return EncodedDataset.from_columns(
            *columns, dictionary=dictionary, name=header.get("name", "")
        )
    except ValueError as error:
        raise SnapshotError(f"snapshot columns inconsistent: {error}") from error


def _section_array(walker: _FrameWalker, typecode: str, count: int, nbytes: int) -> array:
    """Read one section into an ``array`` of exactly ``count`` items."""
    column = array(typecode)
    for frame in walker.next_section(nbytes):
        column.frombytes(frame)
    if len(column) != count:
        raise SnapshotError(
            f"snapshot section holds {len(column)} items, header says {count}"
        )
    return column


# ----------------------------------------------------------------------
# cache policy
# ----------------------------------------------------------------------


def snapshot_cache_key(**fields) -> str:
    """A stable hex key over the fields identifying a source input."""
    digest = hashlib.blake2b(digest_size=16)
    for key in sorted(fields):
        digest.update(f"{key}={fields[key]!r}\n".encode("utf-8"))
    return digest.hexdigest()


def snapshot_cache_fields(spec: str, scale: float = 1.0) -> dict:
    """The cache-key fields for a CLI/server input spec.

    Registry refs (``dataset:<name>``) are deterministic generators, so
    name + scale identify them; file inputs additionally fold in size and
    mtime so an edited source file misses the cache instead of serving a
    stale snapshot.
    """
    fields = {
        "spec": spec,
        "scale": scale,
        "snapshot_version": SNAPSHOT_VERSION,
    }
    if not spec.startswith("dataset:"):
        try:
            status = os.stat(spec)
        except OSError:
            pass
        else:
            fields["st_size"] = status.st_size
            fields["st_mtime_ns"] = status.st_mtime_ns
    return fields


def load_with_snapshot_cache(
    snapshot_dir: str,
    key_fields: dict,
    loader: Callable[[], EncodedDataset],
) -> Tuple[EncodedDataset, bool]:
    """Load from the snapshot cache, else parse and populate it.

    Returns ``(dataset, hit)``.  A damaged snapshot is reported to
    stderr and silently *replaced* by a re-parse — wrong answers are
    never an option; a failed cache write is also non-fatal (the parse
    result is still returned).
    """
    path = os.path.join(
        snapshot_dir, snapshot_cache_key(**key_fields) + SNAPSHOT_SUFFIX
    )
    if os.path.exists(path):
        try:
            return load_snapshot(path), True
        except SnapshotError as error:
            print(
                f"warning: snapshot {path} unusable ({error}); re-parsing source",
                file=sys.stderr,
            )
    dataset = loader()
    try:
        save_snapshot(dataset, path)
    except OSError as error:
        print(
            f"warning: could not write snapshot {path}: {error}",
            file=sys.stderr,
        )
    return dataset, False
