"""The evaluation dataset registry (paper Table 2).

Maps each of the paper's datasets to its generator, the size the paper
reports, and the scale this reproduction generates by default.  The
benchmark harness prints this table (``bench_table2_datasets``) next to
the actually generated triple counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.datasets.countries import countries
from repro.datasets.dbpedia import db14_mpce, db14_ple
from repro.datasets.diseasome import diseasome
from repro.datasets.drugbank import drugbank
from repro.datasets.freebase import freebase
from repro.datasets.linkedmdb import linkedmdb
from repro.datasets.lubm import lubm
from repro.rdf.model import Dataset


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 2 row: the paper's numbers and our generator."""

    name: str
    paper_size_mb: float
    paper_triples: int
    loader: Callable[..., Dataset]
    note: str = ""

    def load(self, scale: float = 1.0, **kwargs) -> Dataset:
        """Generate the dataset at ``scale`` (1.0 = this repo's default)."""
        return self.loader(scale=scale, **kwargs)


def _load_lubm(scale: float = 1.0, **kwargs) -> Dataset:
    return lubm(universities=1, scale=scale, **kwargs)


def _load_freebase(scale: float = 1.0, **kwargs) -> Dataset:
    return freebase(n_triples=int(200_000 * scale), **kwargs)


#: Table 2 of the paper, in its order.
DATASETS: Dict[str, DatasetSpec] = {
    "Countries": DatasetSpec(
        "Countries", 0.8, 5_563, countries, note="full paper size"
    ),
    "Diseasome": DatasetSpec(
        "Diseasome", 13, 72_445, diseasome, note="full paper size"
    ),
    "LUBM-1": DatasetSpec(
        "LUBM-1", 17, 103_104, _load_lubm, note="full paper size"
    ),
    "DrugBank": DatasetSpec(
        "DrugBank", 102, 517_023, drugbank, note="~1/6 of paper size"
    ),
    "LinkedMDB": DatasetSpec(
        "LinkedMDB", 870, 6_148_121, linkedmdb, note="~1/50 of paper size"
    ),
    "DB14-MPCE": DatasetSpec(
        "DB14-MPCE", 4_334, 33_329_233, db14_mpce, note="~1/220 of paper size"
    ),
    "DB14-PLE": DatasetSpec(
        "DB14-PLE", 21_770, 152_913_360, db14_ple, note="~1/850 of paper size"
    ),
    "Freebase": DatasetSpec(
        "Freebase", 398_100, 3_000_673_968, _load_freebase,
        note="sized via n_triples; scaling experiment",
    ),
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a Table 2 dataset by (case-insensitive) name."""
    for key, spec in DATASETS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(
        f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
    )


def load(name: str, scale: float = 1.0, **kwargs) -> Dataset:
    """Generate a Table 2 dataset by name."""
    return get_dataset(name).load(scale=scale, **kwargs)
