"""Command-line interface: ``rdfind`` (or ``python -m repro``).

Subcommands::

    rdfind datasets                     # the Table 2 registry
    rdfind generate Diseasome -o d.nt   # write a dataset as N-Triples
    rdfind discover d.nt -s 25          # pertinent CINDs + ARs of a file
    rdfind discover dataset:LUBM-1 -s 100 --variant de
    rdfind funnel dataset:Diseasome -s 10        # Figure 2 numbers
    rdfind histogram dataset:DrugBank            # Figure 4 numbers
    rdfind ontology dataset:DB14-MPCE -s 25      # schema hints
    rdfind facts dataset:DB14-MPCE -s 25         # knowledge facts
    rdfind advise dataset:Diseasome              # support-threshold advisor
    rdfind rank dataset:Diseasome -s 25          # meaningfulness ranking
    rdfind inds dataset:LUBM-1                   # plain INDs (SINDY-style)
    rdfind profile dataset:Diseasome             # everything in one report
    rdfind cross a.nt b.nt -s 25                 # cross-dataset CINDs
    rdfind serve --port 8745 --job-dir jobs      # discovery job server
    rdfind snapshot save dataset:Diseasome -o d.snap   # mmap-able snapshot
    rdfind discover d.snap -s 25                 # O(ms) warm start
    rdfind fetch http://host/sparql -o d.snap    # fault-hardened ingestion
    rdfind discover endpoint:http://host/sparql -s 25  # fetch + discover
    rdfind federate http://a/sparql http://b/sparql -s 25  # cross-endpoint

Inputs are N-Triples files, Turtle files (``.ttl``), snapshot files
(``.snap``, see ``rdfind snapshot``), ``dataset:<Name>`` to use a
synthetic Table 2 dataset, or ``endpoint:<URL>`` to ingest a SPARQL
endpoint through the fault-hardened federation client
(:mod:`repro.federation`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.apps.advisor import recommend_support_threshold
from repro.apps.integration import discover_cross_cinds
from repro.apps.profile_report import profile_dataset
from repro.apps.knowledge import discover_knowledge
from repro.apps.ontology import reverse_engineer_ontology
from repro.apps.ranking import rank_cinds, spurious
from repro.baselines.sindy import discover_inds
from repro.core.conditions import ConditionScope
from repro.core.discovery import DiscoveryResult, RDFind, RDFindConfig
from repro.core.serialization import dump_result
from repro.core.stats import condition_frequency_histogram, search_space_funnel
from repro.datasets.registry import DATASETS, load
from repro.rdf.model import Dataset, EncodedDataset
from repro.rdf.ntriples import parse_ntriples_file, write_ntriples_file
from repro.rdf.turtle import parse_turtle_file
from repro.storage.snapshot import SNAPSHOT_SUFFIX, load_snapshot


def _load_input(
    spec: str,
    scale: float = 1.0,
    storage: str = "encoded",
    snapshot_dir: "Optional[str]" = None,
) -> "Dataset | EncodedDataset":
    """Load an input in the requested physical layout.

    With ``storage='encoded'`` (the default), ``dataset:`` inputs are
    generated straight into dictionary-encoded columns and parsed files
    are encoded right after parsing; ``storage='strings'`` keeps the
    record-at-a-time string :class:`Dataset`.

    ``*.snap`` inputs are mmap-loaded snapshots
    (:mod:`repro.storage.snapshot`).  With ``snapshot_dir`` set (and
    encoded storage), other inputs go through the snapshot cache: a warm
    job skips parsing entirely, a cold one leaves a snapshot behind.
    """
    encoded = storage == "encoded"
    if str(spec).endswith(SNAPSHOT_SUFFIX):
        dataset = load_snapshot(spec)
        return dataset if encoded else dataset.decode()
    if snapshot_dir and encoded:
        from repro.storage.snapshot import (
            load_with_snapshot_cache,
            snapshot_cache_fields,
        )

        dataset, _hit = load_with_snapshot_cache(
            snapshot_dir,
            snapshot_cache_fields(spec, scale),
            lambda: _load_source(spec, scale, encoded=True),
        )
        return dataset
    return _load_source(spec, scale, encoded=encoded)


def _load_source(
    spec: str, scale: float, encoded: bool
) -> "Dataset | EncodedDataset":
    """Parse/generate an input from its source of truth (no snapshots)."""
    if spec.startswith("dataset:"):
        return load(spec[len("dataset:") :], scale=scale, encoded=encoded)
    if spec.startswith("endpoint:"):
        dataset = _fetch_endpoint_input(spec[len("endpoint:") :])
        return dataset if encoded else dataset.decode()
    if str(spec).endswith((".ttl", ".turtle")):
        dataset = parse_turtle_file(spec)
    else:
        dataset = parse_ntriples_file(spec)
    return dataset.encode() if encoded else dataset


def _fetch_endpoint_input(url: str) -> EncodedDataset:
    """Ingest an ``endpoint:<URL>`` input via the federation client.

    Tunables come from the environment (no per-subcommand flags needed
    everywhere an input spec is accepted): RDFIND_ENDPOINT_PAGE_SIZE,
    RDFIND_ENDPOINT_TIMEOUT, RDFIND_FETCH_WORKSPACE (set it to make the
    fetch resumable).  ``rdfind fetch`` exposes the full knob set.
    """
    from repro.federation.client import SparqlEndpointClient
    from repro.federation.ingest import fetch_endpoint

    client = SparqlEndpointClient(
        url,
        timeout=float(os.environ.get("RDFIND_ENDPOINT_TIMEOUT", "10.0")),
    )
    fetched = fetch_endpoint(
        client,
        name=url,
        workspace=os.environ.get("RDFIND_FETCH_WORKSPACE") or None,
        page_size=int(os.environ.get("RDFIND_ENDPOINT_PAGE_SIZE", "1000")),
    )
    return fetched.encoded


def _ensure_encoded(dataset: "Dataset | EncodedDataset") -> EncodedDataset:
    if isinstance(dataset, EncodedDataset):
        return dataset
    return dataset.encode()


def _scope(name: str) -> ConditionScope:
    if name == "full":
        return ConditionScope.full()
    if name == "predicates":
        return ConditionScope.predicates_only()
    raise SystemExit(f"unknown scope {name!r} (use 'full' or 'predicates')")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("input", help="N-Triples file or dataset:<Name>")
    parser.add_argument(
        "-s", "--support", type=int, default=25, help="support threshold h"
    )
    parser.add_argument(
        "-p", "--parallelism", type=int, default=4, help="simulated workers"
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="scale for dataset: inputs"
    )
    parser.add_argument(
        "--storage", choices=("strings", "encoded"), default="encoded",
        help="physical triple layout (dictionary-encoded columns by default)",
    )
    _add_executor_flags(parser)


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor", choices=("serial", "process"), default=None,
        help="dataflow backend: 'serial' (inline, default) or 'process' "
        "(persistent process pool on real cores)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: min(parallelism, cores))",
    )
    parser.add_argument(
        "--faults", type=int, default=None, metavar="SEED",
        help="inject deterministic faults from this seed (transient errors, "
        "worker crashes, stragglers); recovery must reproduce the clean "
        "output byte-for-byte",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="retry budget per task (default: 2)",
    )
    parser.add_argument(
        "--oom-recovery", action="store_true", default=False,
        help="recover from simulated out-of-memory by splitting the "
        "offending partition state by key hash (off by default)",
    )
    parser.add_argument(
        "--shuffle", choices=("inline", "spill"), default=None,
        help="keyed-operator data plane: 'inline' (in-memory buckets, "
        "default) or 'spill' (disk-backed sorted runs merged reduce-side; "
        "byte-identical output in bounded memory)",
    )
    parser.add_argument(
        "--memory-budget-bytes", type=int, default=None, metavar="BYTES",
        help="per-worker byte cap on spill-mode shuffle state; overflowing "
        "state is cut to a sorted run on disk (requires --shuffle spill)",
    )
    parser.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="directory for spill workspaces (default: system temp dir); "
        "each run gets a fresh subdirectory, removed when the run ends",
    )
    parser.add_argument(
        "--checkpoint", choices=("off", "phase", "stage"), default=None,
        help="durable checkpointing granularity: 'phase' persists each "
        "pipeline phase at its boundary, 'stage' also persists sub-stage "
        "boundaries inside the phases (default: off)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="where the job manifest and checkpoint step files live "
        "(required with --checkpoint; checkpoints survive the run)",
    )
    parser.add_argument(
        "--resume", action="store_true", default=False,
        help="continue a killed job from its last durable checkpoint "
        "boundary (validates the manifest against this run's config; "
        "output is byte-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--crash-point", action="append", default=None,
        metavar="MOMENT:STEP",
        help="inject a driver crash at a checkpoint boundary, e.g. "
        "'after:fc' (fires once; the attempt count is persisted so a "
        "--resume relaunch passes); repeatable",
    )
    parser.add_argument(
        "--task-timeout-seconds", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock bound under --executor process; a hung "
        "task becomes a retryable transient fault (default: no bound)",
    )
    parser.add_argument(
        "--planner", choices=("off", "static", "adaptive"), default=None,
        help="cost-based stage planning: 'static' always picks the "
        "vectorized batch kernels, 'adaptive' chooses per stage from "
        "input sizes and calibrated costs (kernel vs record path, "
        "combiner, shuffle plane, batch count); output is byte-identical "
        "either way and decisions show up in the metrics summary "
        "(default: off)",
    )


def _apply_executor_flags(args: argparse.Namespace) -> None:
    """Publish executor/fault flags as environment defaults.

    ``RDFindConfig`` reads RDFIND_EXECUTOR / RDFIND_WORKERS /
    RDFIND_FAULTS / RDFIND_MAX_RETRIES / RDFIND_OOM_RECOVERY /
    RDFIND_SHUFFLE / RDFIND_MEMORY_BUDGET_BYTES / RDFIND_SPILL_DIR /
    RDFIND_CHECKPOINT / RDFIND_CHECKPOINT_DIR / RDFIND_RESUME /
    RDFIND_CRASH_POINT / RDFIND_TASK_TIMEOUT_SECONDS / RDFIND_PLANNER as
    its defaults, so
    setting the environment here makes the choice reach every config the
    subcommands build internally (funnel, profile, rank, ...).
    """
    if getattr(args, "executor", None):
        os.environ["RDFIND_EXECUTOR"] = args.executor
    if getattr(args, "workers", None):
        os.environ["RDFIND_WORKERS"] = str(args.workers)
    if getattr(args, "faults", None) is not None:
        os.environ["RDFIND_FAULTS"] = str(args.faults)
    if getattr(args, "max_retries", None) is not None:
        os.environ["RDFIND_MAX_RETRIES"] = str(args.max_retries)
    if getattr(args, "oom_recovery", False):
        os.environ["RDFIND_OOM_RECOVERY"] = "1"
    if getattr(args, "shuffle", None):
        os.environ["RDFIND_SHUFFLE"] = args.shuffle
    if getattr(args, "memory_budget_bytes", None) is not None:
        os.environ["RDFIND_MEMORY_BUDGET_BYTES"] = str(args.memory_budget_bytes)
    if getattr(args, "spill_dir", None):
        _require_writable_dir(args.spill_dir, flag="--spill-dir")
        os.environ["RDFIND_SPILL_DIR"] = args.spill_dir
    if getattr(args, "checkpoint", None):
        os.environ["RDFIND_CHECKPOINT"] = args.checkpoint
    if getattr(args, "checkpoint_dir", None):
        _require_writable_dir(args.checkpoint_dir, flag="--checkpoint-dir")
        os.environ["RDFIND_CHECKPOINT_DIR"] = args.checkpoint_dir
    if getattr(args, "resume", False):
        os.environ["RDFIND_RESUME"] = "1"
    if getattr(args, "crash_point", None):
        os.environ["RDFIND_CRASH_POINT"] = ",".join(args.crash_point)
    if getattr(args, "task_timeout_seconds", None) is not None:
        os.environ["RDFIND_TASK_TIMEOUT_SECONDS"] = str(
            args.task_timeout_seconds
        )
    if getattr(args, "planner", None):
        os.environ["RDFIND_PLANNER"] = args.planner


def _require_writable_dir(path: str, *, flag: str) -> None:
    """Fail fast, before any work happens, on an unusable workspace dir.

    Creates the directory when missing and probes writability with a real
    file: discovering at the first spill or checkpoint — possibly hours into
    a job — that the directory is a file or read-only wastes the whole run.
    """
    try:
        os.makedirs(path, exist_ok=True)
        probe = os.path.join(path, f".rdfind-probe-{os.getpid()}.tmp")
        with open(probe, "wb") as handle:
            handle.write(b"probe")
        os.unlink(probe)
    except OSError as error:
        raise SystemExit(f"error: {flag} {path!r} is not a writable directory: {error}")


def _snapshot_cache_dir(args: argparse.Namespace) -> Optional[str]:
    """Where checkpointed runs cache dataset snapshots, if anywhere.

    A run with a checkpoint workspace has opted into durable warm-start
    state, so dataset snapshots live beside the checkpoints — a
    ``--resume`` relaunch then skips re-parsing its input entirely.
    """
    checkpoint_dir = getattr(args, "checkpoint_dir", None) or os.environ.get(
        "RDFIND_CHECKPOINT_DIR"
    )
    if not checkpoint_dir:
        return None
    return os.path.join(checkpoint_dir, "snapshots")


def _discover(args: argparse.Namespace) -> DiscoveryResult:
    storage = getattr(args, "storage", "encoded")
    snapshot_dir = _snapshot_cache_dir(args) if storage == "encoded" else None
    dataset = _load_input(
        args.input, scale=args.scale, storage=storage, snapshot_dir=snapshot_dir
    )
    variant = getattr(args, "variant", "rdfind")
    builders = {
        "rdfind": RDFindConfig,
        "de": RDFindConfig.direct_extraction,
        "nf": RDFindConfig.no_frequent_conditions,
    }
    config = builders[variant](
        support_threshold=args.support,
        parallelism=args.parallelism,
        scope=_scope(getattr(args, "scope", "full")),
        storage=storage,
    )
    return RDFind(config).discover(dataset)


def cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':<11} {'paper MB':>9} {'paper triples':>15}  note")
    for spec in DATASETS.values():
        print(
            f"{spec.name:<11} {spec.paper_size_mb:>9,.1f} "
            f"{spec.paper_triples:>15,}  {spec.note}"
        )
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    dataset = load(args.name, scale=args.scale)
    count = write_ntriples_file(dataset, args.output)
    print(f"wrote {count:,} triples of {dataset.name} to {args.output}")
    return 0


def cmd_discover(args: argparse.Namespace) -> int:
    result = _discover(args)
    stats = result.stats
    print(
        f"{result.config.variant_name} h={result.support_threshold}: "
        f"{stats.num_triples:,} triples -> {len(result.cinds):,} pertinent "
        f"CINDs, {len(result.association_rules):,} ARs "
        f"in {result.elapsed_seconds:.2f}s "
        f"(simulated parallel {result.metrics.simulated_parallel_seconds:.2f}s, "
        f"executor={result.metrics.executor} x{result.metrics.workers})"
    )
    metrics = result.metrics
    if (
        metrics.total_faults_injected
        or metrics.total_retries
        or metrics.total_recovered_oom_splits
    ):
        print(
            f"fault tolerance: {metrics.total_faults_injected} faults injected, "
            f"{metrics.total_retries} task retries, "
            f"{metrics.total_recovered_oom_splits} OOM splits recovered"
        )
    if metrics.planner != "off" and metrics.planner_decisions:
        choices = sorted(
            {
                stage.planner_choice
                for stage in metrics.stages
                if stage.planner_choice
            }
        )
        print(
            f"planner: {metrics.planner}, "
            f"{metrics.planner_decisions} stage decisions "
            f"({', '.join(choices)})"
        )
    if metrics.checkpoint_bytes or metrics.resumed_stages:
        print(
            f"checkpoint: {metrics.checkpoint_bytes:,} bytes written, "
            f"{metrics.resumed_stages} resumed stages, "
            f"{metrics.checkpoint_seconds:.2f}s checkpoint I/O"
        )
    for line in result.render_cinds(args.limit):
        print(" ", line)
    if result.association_rules:
        print("association rules:")
        for line in result.render_association_rules(args.limit):
            print(" ", line)
    if args.output:
        dump_result(result, args.output)
        print(f"full result written to {args.output}")
    return 0


def cmd_funnel(args: argparse.Namespace) -> int:
    dataset = _load_input(args.input, scale=args.scale, storage=args.storage)
    funnel = search_space_funnel(
        dataset, args.support, exhaustive=args.exhaustive,
        parallelism=args.parallelism,
    )
    print(funnel.describe())
    return 0


def cmd_histogram(args: argparse.Namespace) -> int:
    dataset = _load_input(args.input, scale=args.scale, storage=args.storage)
    histogram = condition_frequency_histogram(dataset)
    print(f"{'frequency':>10} {'conditions':>12}")
    for frequency in sorted(histogram):
        print(f"{frequency:>10} {histogram[frequency]:>12,}")
    return 0


def cmd_ontology(args: argparse.Namespace) -> int:
    result = _discover(args)
    hints = reverse_engineer_ontology(result, min_support=args.support)
    print(f"{len(hints)} ontology hints:")
    for hint in hints[: args.limit]:
        print(" ", hint.describe())
    return 0


def cmd_facts(args: argparse.Namespace) -> int:
    result = _discover(args)
    facts = discover_knowledge(result, min_support=args.support)
    print(f"{len(facts)} knowledge facts:")
    for fact in facts[: args.limit]:
        print(" ", fact.describe())
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    dataset = _load_input(args.input, scale=args.scale, storage=args.storage)
    analysis = recommend_support_threshold(_ensure_encoded(dataset))
    print(analysis.describe())
    return 0


def cmd_rank(args: argparse.Namespace) -> int:
    dataset = _load_input(args.input, scale=args.scale, storage=args.storage)
    encoded = _ensure_encoded(dataset)
    result = RDFind(
        RDFindConfig(
            support_threshold=args.support, parallelism=args.parallelism
        )
    ).discover(encoded)
    ranking = rank_cinds(result, encoded)
    flagged = spurious(ranking)
    print(
        f"{len(ranking)} pertinent CINDs ranked; "
        f"{len(flagged)} flagged as likely spurious"
    )
    for row in ranking[: args.limit]:
        print(" ", row.render(result.dictionary))
    return 0


def cmd_inds(args: argparse.Namespace) -> int:
    dataset = _load_input(args.input, scale=args.scale, storage=args.storage)
    result = discover_inds(_ensure_encoded(dataset), parallelism=args.parallelism)
    print(
        f"plain INDs over the s/p/o attributes "
        f"({result.elapsed_seconds:.2f}s) — the coarseness that motivates "
        f"CINDs (paper Section 1):"
    )
    for line in result.render():
        print(" ", line)
    if not result.inds:
        print("  (no exact attribute-level INDs — as expected on RDF data)")
    return 0


def cmd_cross(args: argparse.Namespace) -> int:
    # cross-dataset discovery re-encodes both sides into one shared
    # dictionary, so the inputs stay in string form here
    left = _load_input(args.left, scale=args.scale, storage="strings")
    right = _load_input(args.right, scale=args.scale, storage="strings")
    report = discover_cross_cinds(left, right, h=args.support)
    print(report.describe(limit=args.limit))
    return 0


def _build_endpoint_client(url: str, args: argparse.Namespace):
    """A federation client configured from an endpoint subcommand's flags."""
    from repro.core.retry import RetryPolicy
    from repro.federation.breaker import CircuitBreaker
    from repro.federation.client import SparqlEndpointClient

    return SparqlEndpointClient(
        url,
        timeout=args.timeout,
        retry=RetryPolicy(
            max_retries=args.retries,
            backoff_seconds=args.backoff,
            jitter=args.jitter,
            seed=args.seed,
        ),
        breaker=CircuitBreaker(
            endpoint=url,
            failure_threshold=args.breaker_threshold,
            cooldown_seconds=args.breaker_cooldown,
        ),
    )


def _add_endpoint_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--page-size", type=int, default=1000,
        help="initial SELECT page size; halves on persistent page "
        "failures and re-grows on success (default 1000)",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-request deadline in seconds (default 10)",
    )
    parser.add_argument(
        "--retries", type=int, default=4,
        help="retry budget per request (default 4)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.2,
        help="base backoff in seconds, doubling per retry (default 0.2)",
    )
    parser.add_argument(
        "--jitter", type=float, default=0.5,
        help="seeded jitter fraction on backoff delays (default 0.5)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="jitter seed; a fixed seed reproduces the exact delay "
        "sequence (default 0)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive transient failures that open the per-endpoint "
        "circuit breaker (default 5)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open breaker waits before letting one probe "
        "through (default 30)",
    )


def cmd_fetch(args: argparse.Namespace) -> int:
    """Ingest a SPARQL endpoint into a local snapshot or N-Triples file."""
    from repro.federation.ingest import fetch_endpoint
    from repro.storage.snapshot import save_snapshot

    client = _build_endpoint_client(args.endpoint, args)
    fetched = fetch_endpoint(
        client,
        name=args.name or args.endpoint,
        workspace=args.workspace,
        page_size=args.page_size,
        min_page_size=args.min_page_size,
        resume=not args.no_resume,
    )
    stats = fetched.stats()
    print(
        f"fetched {stats['triples']:,} triples from {args.endpoint} "
        f"in {stats['pages']} pages "
        f"({stats['requests_sent']} requests, {stats['retries']} retries, "
        f"{stats['page_shrinks']} page shrinks, "
        f"{stats['resumed_rows']:,} rows resumed from workspace)"
    )
    if not fetched.complete:
        print("warning: endpoint served fewer rows than it counted; "
              "the fetch is marked incomplete", file=sys.stderr)
    if args.output.endswith(SNAPSHOT_SUFFIX):
        save_snapshot(fetched.encoded, args.output)
    else:
        write_ntriples_file(fetched.encoded.decode(), args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_federate(args: argparse.Namespace) -> int:
    """Cross-endpoint CIND discovery with graceful degradation."""
    import json as _json

    from repro.federation.cross import federated_discover, federated_result_to_dict

    def parse_source(arg: str):
        # optional NAME=URL labels; bare URLs are their own labels
        name, sep, rest = arg.partition("=")
        if sep and name and "://" not in name and "/" not in name:
            return (name, rest)
        return (arg, arg)

    result = federated_discover(
        [parse_source(arg) for arg in args.endpoints],
        h=args.support,
        page_size=args.page_size,
        workspace_dir=args.workspace_dir,
        client_factory=lambda url: _build_endpoint_client(url, args),
    )
    print(result.describe())
    if args.output:
        document = federated_result_to_dict(result)
        with open(args.output, "w", encoding="utf-8") as handle:
            _json.dump(document, handle, ensure_ascii=False, indent=1)
        print(f"partial-result document written to {args.output}")
    return 0 if result.complete or args.allow_partial else 3


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the discovery job server until SIGTERM/SIGINT.

    The first signal shuts down gracefully: admission stops, in-flight
    workers are terminated and their jobs requeued (their checkpoint
    dirs survive, so the next ``serve`` resumes them at the last durable
    boundary).  A second signal forces immediate death — the job dir is
    registered with :mod:`repro.dataflow.workspace`, so ``*.tmp`` litter
    is swept like a spill tree either way.
    """
    import signal
    import threading

    from repro.server.routes import DiscoveryServer
    from repro.server.service import JobService, ServiceConfig

    _require_writable_dir(args.job_dir, flag="--job-dir")
    service = JobService(
        ServiceConfig(
            job_dir=args.job_dir,
            max_concurrent_jobs=args.max_concurrent_jobs,
            max_queued_jobs=args.max_queued_jobs,
        )
    )
    try:
        server = DiscoveryServer(
            service, host=args.host, port=args.port, quiet=not args.verbose
        )
    except OSError as error:
        raise SystemExit(f"error: cannot bind {args.host}:{args.port}: {error}")

    shutdown_requested = threading.Event()

    def handle_signal(signum: int, frame) -> None:
        if shutdown_requested.is_set():
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        shutdown_requested.set()
        service.stop_admitting()
        # serve_forever blocks this (main) thread; shutdown() blocks
        # until the serve loop exits, so it must run elsewhere.
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, handle_signal)

    print(
        f"rdfind server listening on {server.url} "
        f"(job dir {os.path.abspath(args.job_dir)}, "
        f"max {args.max_concurrent_jobs} concurrent / "
        f"{args.max_queued_jobs} queued jobs)",
        flush=True,
    )
    server.serve_forever()
    print("rdfind server stopped (in-flight jobs requeued for resume)")
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Manage mmap-loadable dataset snapshots (save / load / info)."""
    import time

    from repro.storage.snapshot import save_snapshot, snapshot_info

    if args.snapshot_command == "save":
        dataset = _ensure_encoded(
            _load_input(args.input, scale=args.scale, storage="encoded")
        )
        header = save_snapshot(dataset, args.output, remap=args.remap)
        size = os.path.getsize(args.output)
        remapped = " (frequency-remapped ids)" if header["remapped"] else ""
        print(
            f"wrote {header['triples']:,} triples / {header['terms']:,} terms "
            f"to {args.output} ({size:,} bytes){remapped}"
        )
        return 0
    if args.snapshot_command == "load":
        started = time.perf_counter()
        dataset = load_snapshot(args.path)
        elapsed = time.perf_counter() - started
        print(
            f"loaded {len(dataset):,} triples / "
            f"{len(dataset.dictionary):,} terms from {args.path} "
            f"in {elapsed * 1000:.1f}ms"
        )
        return 0
    header = snapshot_info(args.path)
    for key in sorted(header):
        print(f"{key:>10}: {header[key]}")
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Run streaming discovery over a durable state directory.

    Opens (or resumes) a :class:`~repro.streaming.session.StreamSession`,
    optionally bulk-loads an initial dataset on first open, applies an
    update script (JSON-lines of ``{"op", "s", "p", "o"}``), and emits
    result summaries at a configurable cadence.  With ``-o`` the final
    result document is byte-identical to ``rdfind discover -o`` on the
    materialized dataset.
    """
    import json as _json

    from repro.streaming.session import StreamSession

    _require_writable_dir(args.state_dir, flag="state dir")
    session = StreamSession(
        args.state_dir,
        h=args.support,
        scope=_scope(args.scope),
        compact_every=args.compact_every,
        fsync=not args.no_fsync,
    )
    with session:
        if session.resumed_from_checkpoint or session.replayed_records:
            print(
                f"resumed at seq {session.applied_seq:,} "
                f"(checkpoint: {'yes' if session.resumed_from_checkpoint else 'no'}, "
                f"replayed {session.replayed_records:,} changelog records)"
            )
        if args.init:
            if session.applied_seq:
                print(f"state dir is non-empty; ignoring --init {args.init}")
            else:
                dataset = _load_input(
                    args.init, scale=args.scale, storage="strings"
                )
                loaded = session.load_initial(dataset)
                print(
                    f"loaded {loaded:,} initial triples from {args.init} "
                    f"(seq {session.applied_seq:,})"
                )

        def emit(tag: str) -> None:
            cinds = session.pertinent_cinds()
            stats = session.maintainer.stats
            print(
                f"[{tag}] seq {session.applied_seq:,}: "
                f"{session.maintainer.triples:,} triples, "
                f"{len(cinds):,} pertinent CINDs "
                f"(+{stats.triples_added:,}/-{stats.triples_removed:,} applied, "
                f"{stats.compactions} compactions)"
            )

        if args.updates:
            applied = 0
            with open(args.updates, "r", encoding="utf-8") as handle:
                for line_no, line in enumerate(handle, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        delta = _json.loads(line)
                        op, s, p, o = (
                            delta["op"], delta["s"], delta["p"], delta["o"]
                        )
                    except (ValueError, KeyError, TypeError) as error:
                        raise SystemExit(
                            f"error: {args.updates}:{line_no}: bad delta ({error})"
                        )
                    session.apply(op, s, p, o)
                    applied += 1
                    if args.emit_every and applied % args.emit_every == 0:
                        emit(f"after {applied:,} updates")
            session.changelog.sync()
            print(f"applied {applied:,} updates from {args.updates}")

        emit("final")
        dictionary = session.maintainer.dictionary
        for supported in session.pertinent_cinds()[: args.limit]:
            print(" ", supported.render(dictionary))
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(session.document_json())
            print(f"full result written to {args.output}")
        if args.dump_dataset:
            count = write_ntriples_file(
                session.store.as_dataset(), args.dump_dataset
            )
            print(f"materialized {count:,} live triples to {args.dump_dataset}")
        if args.compact_on_exit:
            session.compact()
            print(f"checkpointed at seq {session.applied_seq:,}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    dataset = _load_input(args.input, scale=args.scale, storage=args.storage)
    h = args.support if args.support > 0 else None
    print(profile_dataset(_ensure_encoded(dataset), h=h, parallelism=args.parallelism)
          .describe(limit=args.limit))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rdfind",
        description="RDFind: pertinent CIND discovery in RDF datasets "
        "(SIGMOD 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table 2 dataset registry")

    generate = sub.add_parser("generate", help="write a dataset as N-Triples")
    generate.add_argument("name", help="dataset name (see 'datasets')")
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--scale", type=float, default=1.0)

    discover = sub.add_parser("discover", help="discover pertinent CINDs")
    _add_common(discover)
    discover.add_argument(
        "--variant", choices=("rdfind", "de", "nf"), default="rdfind",
        help="algorithm variant (RDFind, RDFind-DE, RDFind-NF)",
    )
    discover.add_argument(
        "--scope", choices=("full", "predicates"), default="full",
        help="condition scope ('predicates' = the paper's Freebase setting)",
    )
    discover.add_argument("-n", "--limit", type=int, default=20)
    discover.add_argument(
        "-o", "--output", default=None,
        help="also write the full result as JSON (see core.serialization)",
    )

    funnel = sub.add_parser("funnel", help="Figure 2 search-space funnel")
    _add_common(funnel)
    funnel.add_argument(
        "--exhaustive", action="store_true",
        help="also count all valid/minimal CINDs (small datasets only!)",
    )

    histogram = sub.add_parser(
        "histogram", help="Figure 4 condition-frequency histogram"
    )
    _add_common(histogram)

    ontology = sub.add_parser("ontology", help="ontology reverse engineering")
    _add_common(ontology)
    ontology.add_argument("-n", "--limit", type=int, default=30)

    facts = sub.add_parser("facts", help="knowledge discovery facts")
    _add_common(facts)
    facts.add_argument("-n", "--limit", type=int, default=30)

    advise = sub.add_parser(
        "advise", help="recommend support thresholds (paper Section 10)"
    )
    _add_common(advise)

    rank = sub.add_parser(
        "rank", help="rank CINDs by meaningfulness (paper Section 10)"
    )
    _add_common(rank)
    rank.add_argument("-n", "--limit", type=int, default=20)

    inds = sub.add_parser(
        "inds", help="plain attribute-level INDs (SINDY-style)"
    )
    _add_common(inds)

    cross = sub.add_parser(
        "cross", help="cross-dataset CINDs (data integration)"
    )
    cross.add_argument("left", help="N-Triples/Turtle file or dataset:<Name>")
    cross.add_argument("right", help="N-Triples/Turtle file or dataset:<Name>")
    cross.add_argument("-s", "--support", type=int, default=25)
    cross.add_argument("--scale", type=float, default=1.0)
    cross.add_argument("-n", "--limit", type=int, default=20)

    fetch = sub.add_parser(
        "fetch",
        help="ingest a SPARQL endpoint into a snapshot or N-Triples file "
        "(fault-hardened, resumable)",
    )
    fetch.add_argument("endpoint", help="SPARQL endpoint URL")
    fetch.add_argument(
        "-o", "--output", required=True,
        help="output file: .snap writes a mmap-able snapshot, anything "
        "else N-Triples",
    )
    fetch.add_argument(
        "--name", default=None,
        help="dataset name stored in the output (default: the endpoint URL)",
    )
    fetch.add_argument(
        "--workspace", default=None, metavar="DIR",
        help="resumable fetch workspace: fetched pages persist here and a "
        "rerun continues where the last one stopped",
    )
    fetch.add_argument(
        "--no-resume", action="store_true", default=False,
        help="ignore any pages already in --workspace and refetch from row 0",
    )
    fetch.add_argument(
        "--min-page-size", type=int, default=1,
        help="floor for adaptive page-size halving (default 1)",
    )
    _add_endpoint_flags(fetch)

    federate = sub.add_parser(
        "federate",
        help="cross-endpoint CIND discovery over two or more SPARQL "
        "endpoints (degrades to a partial result if sources die)",
    )
    federate.add_argument(
        "endpoints", nargs="+",
        help="two or more endpoint URLs, optionally labeled NAME=URL",
    )
    federate.add_argument(
        "-s", "--support", type=int, default=25, help="support threshold h"
    )
    federate.add_argument(
        "-o", "--output", default=None,
        help="write the completeness-stamped result document as JSON",
    )
    federate.add_argument(
        "--workspace-dir", default=None, metavar="DIR",
        help="per-source resumable fetch workspaces; a source that dies "
        "midway still contributes its fetched pages as a partial source",
    )
    federate.add_argument(
        "--allow-partial", action="store_true", default=False,
        help="exit 0 even when some sources failed (default: exit 3 on a "
        "partial result; the document is written either way)",
    )
    _add_endpoint_flags(federate)

    serve = sub.add_parser(
        "serve", help="run the discovery job server (HTTP, stdlib-only)"
    )
    serve.add_argument(
        "--host", default=os.environ.get("RDFIND_HOST", "127.0.0.1"),
        help="bind address (default 127.0.0.1; RDFIND_HOST overrides)",
    )
    serve.add_argument(
        "--port", type=int,
        default=int(os.environ.get("RDFIND_PORT", "8745")),
        help="bind port; 0 picks an ephemeral port "
        "(default 8745; RDFIND_PORT overrides)",
    )
    serve.add_argument(
        "--job-dir", default=os.environ.get("RDFIND_JOB_DIR") or None,
        required=not os.environ.get("RDFIND_JOB_DIR"),
        help="durable job workspace: one subdirectory per job holding its "
        "record, result, and checkpoint dir (jobs survive restarts; "
        "RDFIND_JOB_DIR supplies the default)",
    )
    serve.add_argument(
        "--max-concurrent-jobs", type=int,
        default=int(os.environ.get("RDFIND_MAX_CONCURRENT_JOBS", "2")),
        help="worker subprocesses running at once "
        "(default 2; RDFIND_MAX_CONCURRENT_JOBS overrides)",
    )
    serve.add_argument(
        "--max-queued-jobs", type=int,
        default=int(os.environ.get("RDFIND_MAX_QUEUED_JOBS", "8")),
        help="admission bound on waiting jobs; submissions beyond it get "
        "429 + Retry-After (default 8; RDFIND_MAX_QUEUED_JOBS overrides)",
    )
    serve.add_argument(
        "--verbose", action="store_true", default=False,
        help="log every HTTP request to stderr",
    )
    _add_executor_flags(serve)

    snapshot = sub.add_parser(
        "snapshot",
        help="save/load mmap-able dataset snapshots (O(ms) warm start)",
    )
    snapshot_sub = snapshot.add_subparsers(
        dest="snapshot_command", required=True
    )
    snapshot_save = snapshot_sub.add_parser(
        "save", help="parse/generate an input and write it as a .snap file"
    )
    snapshot_save.add_argument(
        "input", help="N-Triples/Turtle file or dataset:<Name>"
    )
    snapshot_save.add_argument(
        "-o", "--output", required=True, help="snapshot file to write"
    )
    snapshot_save.add_argument(
        "--scale", type=float, default=1.0, help="scale for dataset: inputs"
    )
    snapshot_save.add_argument(
        "--remap", action="store_true", default=False,
        help="rewrite term ids in frequency order before saving (shortest "
        "codes for the hottest terms; decoded triples are unchanged, "
        "integer ids are not)",
    )
    snapshot_load = snapshot_sub.add_parser(
        "load", help="load a snapshot and report triples/terms/latency"
    )
    snapshot_load.add_argument("path", help="snapshot file (.snap)")
    snapshot_info_parser = snapshot_sub.add_parser(
        "info", help="print a snapshot's header without loading the columns"
    )
    snapshot_info_parser.add_argument("path", help="snapshot file (.snap)")

    stream = sub.add_parser(
        "stream",
        help="streaming discovery: durable changelog + add/remove maintenance",
    )
    stream.add_argument(
        "state_dir",
        help="durable stream state directory (changelog + checkpoints); "
        "reopening it resumes from the last checkpoint",
    )
    stream.add_argument(
        "-s", "--support", type=int, default=25, help="support threshold h"
    )
    stream.add_argument(
        "--scope", choices=("full", "predicates"), default="full",
        help="condition scope ('predicates' = the paper's Freebase setting)",
    )
    stream.add_argument(
        "--init", default=None,
        help="initial dataset (N-Triples/Turtle file or dataset:<Name>) "
        "bulk-loaded as logged adds on first open; ignored on resume",
    )
    stream.add_argument(
        "--scale", type=float, default=1.0, help="scale for dataset: --init"
    )
    stream.add_argument(
        "--updates", default=None,
        help="JSON-lines update script: one {\"op\", \"s\", \"p\", \"o\"} "
        "object per line, op in {add, remove}",
    )
    stream.add_argument(
        "--emit-every", type=int, default=0,
        help="print a result summary every N applied updates (0 = only at end)",
    )
    stream.add_argument(
        "--compact-every", type=int, default=0,
        help="checkpoint the stream state every N applied records "
        "(0 = only with --compact-on-exit)",
    )
    stream.add_argument(
        "--compact-on-exit", action="store_true", default=False,
        help="write a final checkpoint before exiting",
    )
    stream.add_argument(
        "--no-fsync", action="store_true", default=False,
        help="skip per-append fsync (faster, loses the durability guarantee)",
    )
    stream.add_argument("-n", "--limit", type=int, default=20)
    stream.add_argument(
        "-o", "--output", default=None,
        help="write the final result document as JSON (byte-identical to "
        "'discover -o' on the materialized dataset)",
    )
    stream.add_argument(
        "--dump-dataset", default=None,
        help="also write the live (materialized) triples as N-Triples",
    )

    profile = sub.add_parser(
        "profile", help="full dataset profiling report (ProLOD++-style)"
    )
    profile.add_argument("input", help="N-Triples file or dataset:<Name>")
    profile.add_argument(
        "-s", "--support", type=int, default=0,
        help="support threshold (0 = use the advisor's recommendation)",
    )
    profile.add_argument("-p", "--parallelism", type=int, default=4)
    profile.add_argument("--scale", type=float, default=1.0)
    profile.add_argument(
        "--storage", choices=("strings", "encoded"), default="encoded",
        help="physical triple layout (dictionary-encoded columns by default)",
    )
    _add_executor_flags(profile)
    profile.add_argument("-n", "--limit", type=int, default=10)

    return parser


_COMMANDS = {
    "datasets": cmd_datasets,
    "generate": cmd_generate,
    "discover": cmd_discover,
    "funnel": cmd_funnel,
    "histogram": cmd_histogram,
    "ontology": cmd_ontology,
    "facts": cmd_facts,
    "advise": cmd_advise,
    "rank": cmd_rank,
    "inds": cmd_inds,
    "cross": cmd_cross,
    "fetch": cmd_fetch,
    "federate": cmd_federate,
    "profile": cmd_profile,
    "serve": cmd_serve,
    "snapshot": cmd_snapshot,
    "stream": cmd_stream,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    _apply_executor_flags(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
