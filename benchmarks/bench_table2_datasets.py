"""Table 2: the evaluation dataset inventory.

Regenerates every dataset and reports its generated size next to the
paper's, including the documented scale factor (see DESIGN.md,
"Substitutions").
"""

import pytest

from repro.datasets.registry import DATASETS
from benchmarks.conftest import once


@pytest.mark.parametrize("name", list(DATASETS))
def test_table2_dataset(name, benchmark, report, cache):
    spec = DATASETS[name]
    scale = 0.25 if name == "Freebase" else 1.0

    encoded = once(benchmark, cache.dataset, name, scale)

    section = report.section(f"Table 2 — {name}")
    section.row(
        f"{spec.name:<11} paper: {spec.paper_size_mb:>9,.1f} MB, "
        f"{spec.paper_triples:>13,} triples | generated: {len(encoded):>9,} "
        f"triples ({spec.note})"
    )
    assert len(encoded) > 0
