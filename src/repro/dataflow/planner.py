"""Cost-based per-stage execution planning.

The engine's execution strategy knobs — batch kernel vs record-at-a-time
operators, combiner on or off, inline vs spilling shuffle, and how many
column batches a counting kernel slices — have so far been global flags.
The :class:`StagePlanner` turns them into *per-stage* decisions driven by
the calibrated costs the engine already measures
(:class:`~repro.dataflow.metrics.StageMetrics`: per-partition seconds,
record counts, reduction ratios, spill bytes, skew).

Three modes (``--planner`` / ``RDFIND_PLANNER``):

``off``
    No planner.  Every operator runs exactly as before — this is the
    byte-identity oracle the kernels are tested against.

``static``
    Rule-based: every stage that has a batch kernel uses it, regardless
    of input size.  Deterministic and cheap to reason about; mainly
    useful for tests (it forces the kernels onto tiny inputs) and as the
    no-feedback baseline in the planner benchmark.

``adaptive``
    Cost-based: decisions consult the observed stage metrics.  Kernels
    engage only above a records floor (below it the per-stage setup
    dwarfs the win and the driver-side columnar paths are already
    optimal); a combiner is switched off when the observed reduction
    ratio of the same stage shows it is not aggregating; an inline
    shuffle is escalated to spill when the projected shuffle state
    exceeds the byte budget; and skewed counting stages get more column
    batches on the next run.  The planner *learns within and across
    runs*: :meth:`observe` folds every completed stage into per-stage-name
    exponential moving averages, so a reused planner (the job server, a
    benchmark sweep, repeated discovery over the same data) refines its
    choices.

Safety rules the planner never violates (they are what keeps every plan
byte-identical to the ``off`` oracle):

* A record-count ``memory_budget`` disables the kernels outright: that
  budget simulates combiner OOM against the *record path's* state shape,
  and the paper's reported failures (Figures 7/13) must keep failing.
* An environment configured for ``shuffle="spill"`` is never flipped
  back to inline — the bounded-memory guarantee stays.
* Combiners are only switched off for reductions the caller marked
  order-insensitive (commutative integer counts); set-valued folds keep
  their combine order.
* Reduce-side bucket splitting is never touched (it reorders output).

Every decision is recorded on the stage it shaped
(``StageMetrics.planner_choice`` / ``planner_reason``), so
``JobMetrics.describe()`` and the server's progress stream show what the
planner chose and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dataflow.metrics import JobMetrics, StageMetrics

#: The recognised planner modes, in escalation order.
PLANNER_MODES = ("off", "static", "adaptive")

#: Below this many input records the adaptive planner keeps the record /
#: driver-columnar paths: a batch kernel's per-stage setup (batch
#: construction, per-batch caches) costs more than it saves, and the
#: tiny-dataset unit suites must keep exercising the oracle paths.
DEFAULT_MIN_KERNEL_RECORDS = 4096

#: A combiner whose observed output/input ratio exceeds this is not
#: aggregating (almost every key is distinct): switch it off and stream
#: the pairs instead of building a pointless per-worker table.
COMBINE_OFF_RATIO = 0.95

#: Fallback per-record shuffle-state estimate (bytes) when a stage has
#: no observed byte costs yet — roughly one small tuple record.
DEFAULT_RECORD_BYTES = 64

#: Observed per-stage skew above which the adaptive planner slices more
#: column batches for a counting kernel on the next run.
SKEW_SPLIT_THRESHOLD = 1.5

#: Weight of the newest observation in the per-stage moving averages.
EWMA_ALPHA = 0.5


@dataclass
class StagePlan:
    """One stage's planned execution strategy."""

    #: Strategy label ("kernel", "record", "columnar-driver",
    #: "combine-off", "spill", ...); lands in ``planner_choice``.
    choice: str
    #: Why the planner chose it; lands in ``planner_reason``.
    reason: str
    #: Whether the stage should run its batch kernel.
    use_kernel: bool = False
    #: Combiner decision for keyed reductions (None = caller's choice).
    combine: Optional[bool] = None
    #: Shuffle plane for this stage (None = environment default).
    shuffle: Optional[str] = None
    #: Column batches a counting kernel should slice (None = parallelism).
    partitions: Optional[int] = None


@dataclass
class _StageCosts:
    """Per-stage-name moving averages fed by :meth:`StagePlanner.observe`."""

    runs: int = 0
    seconds_per_record: float = 0.0
    reduction_ratio: float = 1.0
    bytes_per_record: float = float(DEFAULT_RECORD_BYTES)
    skew: float = 1.0

    def fold(self, stage: StageMetrics) -> None:
        total_in = stage.total_in
        if total_in <= 0:
            return
        rate = stage.cpu_seconds / total_in
        ratio = stage.total_out / total_in
        if stage.spilled_bytes and stage.shuffled_records:
            per_record = stage.spilled_bytes / stage.shuffled_records
        elif stage.peak_state_bytes and total_in:
            per_record = stage.peak_state_bytes / total_in
        else:
            per_record = self.bytes_per_record
        if self.runs == 0:
            self.seconds_per_record = rate
            self.reduction_ratio = ratio
            self.bytes_per_record = per_record
            self.skew = stage.skew
        else:
            alpha = EWMA_ALPHA
            self.seconds_per_record += alpha * (rate - self.seconds_per_record)
            self.reduction_ratio += alpha * (ratio - self.reduction_ratio)
            self.bytes_per_record += alpha * (per_record - self.bytes_per_record)
            self.skew += alpha * (stage.skew - self.skew)
        self.runs += 1


class StagePlanner:
    """Per-stage execution strategy chooser (see module docstring).

    Parameters
    ----------
    mode:
        ``"off"``, ``"static"``, or ``"adaptive"``.
    parallelism:
        The environment's worker count (baseline batch count).
    env_shuffle:
        The environment's configured shuffle plane; spill is sticky.
    memory_budget_bytes:
        The spill byte budget, used to project inline-vs-spill.
    allow_kernels:
        ``False`` when a record-count ``memory_budget`` is configured —
        the kernels would change the simulated OOM footprint, so the
        record path stays authoritative.
    min_kernel_records:
        Adaptive records floor below which kernels stay off.
    """

    def __init__(
        self,
        mode: str,
        parallelism: int = 1,
        env_shuffle: str = "inline",
        memory_budget_bytes: Optional[int] = None,
        allow_kernels: bool = True,
        min_kernel_records: int = DEFAULT_MIN_KERNEL_RECORDS,
    ) -> None:
        if mode not in PLANNER_MODES:
            raise ValueError(
                f"unknown planner mode {mode!r}; expected one of {PLANNER_MODES}"
            )
        self.mode = mode
        self.parallelism = max(1, int(parallelism))
        self.env_shuffle = env_shuffle
        self.memory_budget_bytes = memory_budget_bytes
        self.allow_kernels = bool(allow_kernels)
        self.min_kernel_records = int(min_kernel_records)
        self._costs: Dict[str, _StageCosts] = {}

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.mode != "off"

    def observe(self, stage: StageMetrics) -> None:
        """Fold one completed stage into the per-stage cost averages."""
        self._costs.setdefault(stage.name, _StageCosts()).fold(stage)

    def observe_job(self, metrics: JobMetrics) -> None:
        """Warm the cost model from a whole finished job."""
        for stage in metrics.stages:
            self.observe(stage)

    def costs_for(self, name: str) -> Optional[_StageCosts]:
        """The observed averages for a stage name, if any."""
        return self._costs.get(name)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def plan_kernel(self, name: str, records: int) -> StagePlan:
        """Kernel vs record/driver path for a stage with a batch kernel."""
        if not self.active:
            return StagePlan(choice="record", reason="planner off")
        if not self.allow_kernels:
            return StagePlan(
                choice="record",
                reason="record-count memory budget configured; "
                "record path is the budget oracle",
            )
        if self.mode == "static":
            return StagePlan(
                choice="kernel", reason="static mode", use_kernel=True
            )
        if records < self.min_kernel_records:
            return StagePlan(
                choice="record",
                reason=f"small input ({records} < {self.min_kernel_records} records)",
            )
        costs = self._costs.get(name)
        reason = f"{records} records >= {self.min_kernel_records} floor"
        if costs is not None and costs.runs:
            reason += (
                f"; observed {costs.seconds_per_record * 1e6:.1f}us/record "
                f"over {costs.runs} run(s)"
            )
        return StagePlan(choice="kernel", reason=reason, use_kernel=True)

    def plan_combine(
        self, name: str, records: int, order_insensitive: bool = False
    ) -> StagePlan:
        """Combiner on/off for a keyed reduction.

        Only order-insensitive reductions (commutative integer counts)
        may stream: set-valued folds depend on combine order for their
        byte-identical internal layout.
        """
        if self.mode != "adaptive" or not order_insensitive:
            return StagePlan(choice="combine", reason="default combiner")
        costs = self._costs.get(name)
        if costs is not None and costs.runs and costs.reduction_ratio > COMBINE_OFF_RATIO:
            return StagePlan(
                choice="combine-off",
                reason=(
                    f"observed reduction {costs.reduction_ratio:.2f} > "
                    f"{COMBINE_OFF_RATIO} (combiner not aggregating)"
                ),
                combine=False,
            )
        return StagePlan(choice="combine", reason="no evidence against combiner")

    def plan_shuffle(self, name: str, records: int) -> StagePlan:
        """Inline vs spill data plane for one keyed stage."""
        if self.env_shuffle == "spill":
            return StagePlan(
                choice="spill",
                reason="environment configured for spill (sticky)",
                shuffle="spill",
            )
        if self.mode != "adaptive" or self.memory_budget_bytes is None:
            return StagePlan(choice="inline", reason="no byte budget configured")
        costs = self._costs.get(name)
        per_record = (
            costs.bytes_per_record
            if costs is not None and costs.runs
            else float(DEFAULT_RECORD_BYTES)
        )
        projected = int(records * per_record)
        if projected > self.memory_budget_bytes:
            return StagePlan(
                choice="spill",
                reason=(
                    f"projected state {projected}B > "
                    f"budget {self.memory_budget_bytes}B"
                ),
                shuffle="spill",
            )
        return StagePlan(
            choice="inline",
            reason=(
                f"projected state {projected}B <= "
                f"budget {self.memory_budget_bytes}B"
            ),
        )

    def plan_partitions(self, name: str, records: int) -> StagePlan:
        """Column-batch count for an order-insensitive counting kernel.

        Only consulted by the FC counting kernels, whose merged counts
        are independent of how the columns are sliced; order-sensitive
        kernels (capture-group assembly) are pinned to ``parallelism``
        batches so the round-robin layout matches the record path.
        """
        count = self.parallelism
        costs = self._costs.get(name)
        if (
            self.mode == "adaptive"
            and costs is not None
            and costs.runs
            and costs.skew > SKEW_SPLIT_THRESHOLD
        ):
            return StagePlan(
                choice="split-batches",
                reason=(
                    f"observed skew {costs.skew:.2f} > {SKEW_SPLIT_THRESHOLD}; "
                    f"slicing {2 * count} batches"
                ),
                partitions=2 * count,
            )
        return StagePlan(
            choice="batches", reason="balanced", partitions=count
        )

    # ------------------------------------------------------------------
    # decision recording
    # ------------------------------------------------------------------

    def record(self, stage: Optional[StageMetrics], plan: StagePlan) -> None:
        """Stamp a decision onto the stage it shaped (visible in summaries)."""
        if stage is None:
            return
        if stage.planner_choice:
            stage.planner_choice += f"+{plan.choice}"
            stage.planner_reason += f"; {plan.reason}"
        else:
            stage.planner_choice = plan.choice
            stage.planner_reason = plan.reason

    def annotate(self, metrics: JobMetrics, stage_name: str, plan: StagePlan) -> None:
        """Stamp a decision onto the most recent stage with ``stage_name``."""
        for stage in reversed(metrics.stages):
            if stage.name == stage_name:
                self.record(stage, plan)
                return
