"""Tests for the CGCreator: capture evidences and capture groups."""

from collections import defaultdict

import pytest

from repro.core.capture_groups import create_capture_groups, expand_captures
from repro.core.cind import Capture
from repro.core.conditions import (
    BinaryCondition,
    ConditionScope,
    UnaryCondition,
)
from repro.core.frequent_conditions import detect_frequent_conditions
from repro.core.validation import NaiveProfiler
from repro.dataflow.engine import ExecutionEnvironment
from repro.rdf.model import Attr
from tests.conftest import random_rdf


def build_groups(
    encoded, h, parallelism=3, pruned=True, scope=None, fp_rate=1e-9
):
    """Run FCDetector + CGCreator and collect the groups.

    The default ``fp_rate`` is effectively zero so that structural tests
    can compare against the oracle exactly; Bloom false positives (which
    only ever *add* low-support captures that the extractor prunes) are
    exercised separately in ``TestBloomFalsePositives``.
    """
    env = ExecutionEnvironment(parallelism=parallelism)
    triples = env.from_collection(encoded.triples)
    frequent = None
    if pruned:
        frequent = detect_frequent_conditions(
            env, triples, h=h, scope=scope, fp_rate=fp_rate
        )
    groups = create_capture_groups(env, triples, scope=scope, frequent=frequent)
    return groups.collect()


def groups_from_oracle(encoded, h, scope=None):
    """Reference capture groups built from naive interpretations.

    For each capture in the oracle universe, its interpretation's values
    index the groups; the group of a value is the set of captures whose
    interpretation contains it (the definition in Section 6).
    """
    profiler = NaiveProfiler(encoded, scope)
    universe = profiler.capture_universe(h)
    interpretations = profiler.interpretations(universe)
    by_value = defaultdict(set)
    for capture, values in interpretations.items():
        for value in values:
            by_value[value].add(capture)
    return {frozenset(captures) for captures in by_value.values()}


class TestExpansion:
    def test_binary_capture_expands_to_unary_relaxations(self):
        binary = Capture(Attr.S, BinaryCondition.make(Attr.P, 1, Attr.O, 2))
        expanded = expand_captures({binary})
        assert expanded == frozenset(
            {
                binary,
                Capture(Attr.S, UnaryCondition(Attr.P, 1)),
                Capture(Attr.S, UnaryCondition(Attr.O, 2)),
            }
        )

    def test_unary_captures_untouched(self):
        unary = Capture(Attr.S, UnaryCondition(Attr.P, 1))
        assert expand_captures({unary}) == frozenset({unary})


class TestGroupsMatchDefinition:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_table1_groups_equal_oracle(self, table1_encoded, h):
        got = {frozenset(g) for g in build_groups(table1_encoded, h)}
        want = groups_from_oracle(table1_encoded, h)
        assert got == want

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_random_groups_equal_oracle(self, seed, parallelism):
        encoded = random_rdf(seed + 20, n_triples=40).encode()
        got = {frozenset(g) for g in build_groups(encoded, 2, parallelism)}
        want = groups_from_oracle(encoded, 2)
        assert got == want

    def test_predicates_only_scope(self, table1_encoded):
        scope = ConditionScope.predicates_only()
        got = {frozenset(g) for g in build_groups(table1_encoded, 2, scope=scope)}
        want = groups_from_oracle(table1_encoded, 2, scope=scope)
        assert got == want
        for group in got:
            assert all(c.condition.attr is Attr.P for c in group)


class TestPaperExample:
    def test_patrick_group_at_h3(self, table1_encoded):
        """Section 6.1's example: patrick's group at support threshold 3."""
        dictionary = table1_encoded.dictionary
        groups = {frozenset(g) for g in build_groups(table1_encoded, 3)}
        expected = frozenset(
            {
                Capture(
                    Attr.S,
                    UnaryCondition(Attr.P, dictionary.encode_existing("rdf:type")),
                ),
                Capture(
                    Attr.S,
                    UnaryCondition(
                        Attr.P, dictionary.encode_existing("undergradFrom")
                    ),
                ),
            }
        )
        assert expected in groups

    def test_unpruned_creation_covers_all_conditions(self, table1_encoded):
        """RDFind-NF mode: no frequent-condition pruning at all."""
        got = {frozenset(g) for g in build_groups(table1_encoded, 1, pruned=False)}
        # h=1 pruning keeps everything but applies AR equivalence; the
        # NF run keeps AR-embedding binary captures as well, so its
        # groups are supersets of the pruned ones.
        pruned = {frozenset(g) for g in build_groups(table1_encoded, 1)}
        assert len(got) == len(pruned)
        pruned_by_size = sorted(len(g) for g in pruned)
        got_by_size = sorted(len(g) for g in got)
        assert all(a >= b for a, b in zip(got_by_size, pruned_by_size))


class TestBloomFalsePositives:
    @pytest.mark.parametrize("seed", range(4))
    def test_false_positives_only_add_infrequent_captures(self, seed):
        """With a sloppy Bloom filter, groups may gain captures — but only
        captures whose condition is *not* frequent (they are pruned by the
        capture-support phase before any CIND can involve them)."""
        encoded = random_rdf(seed + 20, n_triples=40).encode()
        h = 2
        sloppy = {frozenset(g) for g in build_groups(encoded, h, fp_rate=0.2)}
        exact = {frozenset(g) for g in build_groups(encoded, h)}
        profiler = NaiveProfiler(encoded)
        frequent = profiler.frequent_conditions(h)
        universe = profiler.capture_universe(h)
        for group in sloppy:
            for capture in group:
                if capture not in universe:
                    assert capture.condition not in frequent


class TestGroupCardinality:
    def test_one_group_per_relevant_value(self, table1_encoded):
        groups = build_groups(table1_encoded, 1)
        # every distinct term that appears in some capture interpretation
        # spawns exactly one group
        want = groups_from_oracle(table1_encoded, 1)
        assert len(groups) == len(want)
