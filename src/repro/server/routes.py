"""The HTTP surface of the discovery job server (stdlib only).

A thin, mechanical layer: parse the request, call one
:class:`~repro.server.service.JobService` method, render JSON.  All
policy (admission, caching, scheduling) lives in the service; all
persistence in the store.

Routes::

    GET  /healthz                 liveness + job counts + admission state
    GET  /datasets                the Table 2 registry
    GET  /jobs                    all job records
    POST /jobs                    submit (JobRequest body) -> record + cache status
    GET  /jobs/<id>               record + live JobMetrics progress
    GET  /jobs/<id>/result        paginated CINDs (?offset=&limit=), or the
                                  raw result document bytes with ?raw=1
                                  (byte-identical to `rdfind discover -o`)
    POST /jobs/<id>/cancel        cancel a queued/running job

    GET  /streams                 all streaming-maintenance streams
    POST /streams                 create a stream (h/scope/compact cadence)
    GET  /streams/<id>            status + MaintenanceStats counters
    POST /streams/<id>/deltas     apply a batch of add/remove deltas
    GET  /streams/<id>/results    current pertinent CINDs; ?raw=1 returns
                                  the batch-identical result document
    POST /streams/<id>/compact    checkpoint the stream state now

Error mapping: BadRequest -> 400, UnknownJob -> 404, Conflict -> 409,
OverCapacity -> 429 (with ``Retry-After``), NotAdmitting -> 503.  Every
error body is ``{"error": "..."}``.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.datasets.registry import DATASETS
from repro.server.service import (
    BadRequestError,
    ConflictError,
    JobService,
    NotAdmittingError,
    OverCapacityError,
    UnknownJobError,
)
from repro.server.store import JobRequest
from repro.server.streams import StreamManager

__all__ = ["DiscoveryServer"]

#: Submission bodies larger than this are rejected outright.
MAX_BODY_BYTES = 1 << 20


class _JsonHandler(BaseHTTPRequestHandler):
    """Dispatches requests to the bound service; one instance per request."""

    server_version = "rdfind-server/1.0"
    protocol_version = "HTTP/1.1"

    # Set by DiscoveryServer when the handler class is specialized.
    service: JobService = None  # type: ignore[assignment]
    streams: StreamManager = None  # type: ignore[assignment]
    quiet: bool = True

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        self._send_bytes(status, body, "application/json; charset=utf-8", headers)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise BadRequestError(f"request body is not valid JSON: {error}")

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query, keep_blank_values=True).items()
        }
        return parsed.path.rstrip("/") or "/", query

    # -- dispatch ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        try:
            path, query = self._route()
            handler = self._resolve(method, path)
            if handler is None:
                raise UnknownJobError(f"no route {method} {path}")
            handler(query)
        except BadRequestError as error:
            self._send_json(400, {"error": str(error)})
        except UnknownJobError as error:
            self._send_json(404, {"error": str(error)})
        except ConflictError as error:
            self._send_json(409, {"error": str(error)})
        except OverCapacityError as error:
            self._send_json(
                429,
                {"error": str(error), "retry_after": error.retry_after_seconds},
                headers={"Retry-After": str(error.retry_after_seconds)},
            )
        except NotAdmittingError as error:
            self._send_json(503, {"error": str(error)})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:  # noqa: BLE001 - never kill the server
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    def _resolve(self, method: str, path: str):
        if method == "GET":
            if path == "/healthz":
                return self._get_healthz
            if path == "/datasets":
                return self._get_datasets
            if path == "/jobs":
                return self._get_jobs
            if path == "/streams":
                return self._get_streams
            parts = path.strip("/").split("/")
            if len(parts) == 2 and parts[0] == "jobs":
                return lambda query: self._get_job(parts[1], query)
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                return lambda query: self._get_result(parts[1], query)
            if len(parts) == 2 and parts[0] == "streams":
                return lambda query: self._get_stream(parts[1], query)
            if len(parts) == 3 and parts[0] == "streams" and parts[2] == "results":
                return lambda query: self._get_stream_results(parts[1], query)
        elif method == "POST":
            if path == "/jobs":
                return self._post_job
            if path == "/streams":
                return self._post_stream
            parts = path.strip("/").split("/")
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                return lambda query: self._post_cancel(parts[1], query)
            if len(parts) == 3 and parts[0] == "streams" and parts[2] == "deltas":
                return lambda query: self._post_stream_deltas(parts[1], query)
            if len(parts) == 3 and parts[0] == "streams" and parts[2] == "compact":
                return lambda query: self._post_stream_compact(parts[1], query)
        return None

    # -- endpoints -----------------------------------------------------

    def _get_healthz(self, _query: Dict[str, str]) -> None:
        self._send_json(
            200,
            {
                "status": "ok",
                "admitting": self.service.admitting,
                "jobs": self.service.counts(),
            },
        )

    def _get_datasets(self, _query: Dict[str, str]) -> None:
        self._send_json(
            200,
            {
                "datasets": [
                    {
                        "name": spec.name,
                        "paper_size_mb": spec.paper_size_mb,
                        "paper_triples": spec.paper_triples,
                        "note": spec.note,
                    }
                    for spec in DATASETS.values()
                ]
            },
        )

    def _get_jobs(self, _query: Dict[str, str]) -> None:
        self._send_json(200, {"jobs": self.service.list_jobs()})

    def _post_job(self, _query: Dict[str, str]) -> None:
        body = self._read_body()
        try:
            request = JobRequest.from_json(body)
        except (TypeError, ValueError) as error:
            raise BadRequestError(str(error))
        record, cache = self.service.submit(request)
        status = 200 if cache in ("hit", "joined") else 201
        self._send_json(status, {"job": record.to_json(), "cache": cache})

    def _get_job(self, job_id: str, _query: Dict[str, str]) -> None:
        self._send_json(200, self.service.job_status(job_id))

    def _get_result(self, job_id: str, query: Dict[str, str]) -> None:
        if query.get("raw") in ("1", "true", "yes"):
            raw = self.service.raw_result(job_id)
            self._send_bytes(200, raw, "application/json; charset=utf-8")
            return
        try:
            offset = int(query.get("offset", 0))
            limit = int(query["limit"]) if query.get("limit") else None
        except ValueError as error:
            raise BadRequestError(f"bad pagination parameter: {error}")
        self._send_json(200, self.service.result_page(job_id, offset, limit))

    def _post_cancel(self, job_id: str, _query: Dict[str, str]) -> None:
        self._read_body()  # drain (keep-alive hygiene); cancel takes no body
        record = self.service.cancel(job_id)
        self._send_json(200, {"job": record.to_json()})

    # -- streaming endpoints -------------------------------------------

    def _get_streams(self, _query: Dict[str, str]) -> None:
        self._send_json(200, {"streams": self.streams.list_streams()})

    def _post_stream(self, _query: Dict[str, str]) -> None:
        body = self._read_body()
        if not isinstance(body, dict):
            raise BadRequestError("stream config must be a JSON object")
        self._send_json(201, {"stream": self.streams.create(body)})

    def _get_stream(self, stream_id: str, _query: Dict[str, str]) -> None:
        self._send_json(200, {"stream": self.streams.status(stream_id)})

    def _get_stream_results(self, stream_id: str, query: Dict[str, str]) -> None:
        if query.get("raw") in ("1", "true", "yes"):
            raw = self.streams.raw_results(stream_id)
            self._send_bytes(200, raw, "application/json; charset=utf-8")
            return
        self._send_json(200, self.streams.results(stream_id))

    def _post_stream_deltas(self, stream_id: str, _query: Dict[str, str]) -> None:
        body = self._read_body()
        if not isinstance(body, dict):
            raise BadRequestError("delta batch must be a JSON object")
        self._send_json(200, self.streams.apply_deltas(stream_id, body))

    def _post_stream_compact(self, stream_id: str, _query: Dict[str, str]) -> None:
        self._read_body()  # drain; compaction takes no body
        self._send_json(200, {"stream": self.streams.compact(stream_id)})


class DiscoveryServer:
    """Owns the HTTP server + service pair.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    available as :attr:`host`/:attr:`port` after construction.  `start`
    serves from a background thread (programmatic use); `serve_forever`
    blocks (the CLI).  `stop` shuts both layers down; with
    ``graceful=False`` the service skips requeueing — the test double
    for a hard server death.
    """

    def __init__(
        self,
        service: JobService,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        streams: Optional[StreamManager] = None,
    ) -> None:
        self.service = service
        self.streams = streams or StreamManager(
            os.path.join(service.config.job_dir, "streams")
        )
        handler = type(
            "BoundJsonHandler",
            (_JsonHandler,),
            {"service": service, "streams": self.streams, "quiet": quiet},
        )
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "DiscoveryServer":
        """Start the service and serve HTTP from a background thread."""
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="discovery-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI: service up, then serve until
        `shutdown` (usually from a signal handler) unblocks it."""
        self.service.start()
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        finally:
            self.httpd.server_close()
            self.service.stop(graceful=True)
            self.streams.close()

    def shutdown(self) -> None:
        """Unblock `serve_forever` (safe to call from a signal handler
        via a helper thread)."""
        self.httpd.shutdown()

    def stop(self, graceful: bool = True) -> None:
        """Tear down the background-thread variant."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.stop(graceful=graceful)
        self.streams.close()
