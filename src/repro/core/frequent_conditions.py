"""FCDetector: frequent condition discovery and AR extraction (Section 5).

This is the first phase of RDFind's lazy pruning.  It follows the data
flow of the paper's Figure 5:

1.  *Frequent unary conditions* — every worker emits a ``(condition, 1)``
    counter per triple attribute, counters are aggregated with local
    pre-aggregation ("early aggregation"), and non-frequent conditions are
    dropped (steps 1-2).
2.  *Compaction* — workers build partial Bloom filters over their frequent
    unary conditions and one worker unions them bit-wise (steps 3-4); the
    union is broadcast (step 5).
3.  *Frequent binary conditions* — Algorithm 1: per triple, unary
    conditions are probed against the Bloom filter and only pairs of
    (apparently) frequent unaries spawn binary counters, which are then
    aggregated and filtered (steps 6-7).  Candidates are never
    materialized globally — this is the paper's "on-demand candidate
    checking" that replaces Apriori's in-memory candidate tree.
4.  *Binary compaction* — a second Bloom filter (steps 8-9).
5.  *Association rules* — frequent unary counters are joined with frequent
    binary counters on the embedded unary condition; equal counts yield an
    exact AR (step 11, Lemma 2).

Bloom-filter false positives can let a binary candidate with a
non-frequent unary part be *counted*, but never let it survive: a binary
condition's frequency is bounded by its parts', so the ``>= h`` filter is
exact.  Downstream (Algorithm 2) false positives are likewise harmless —
they can only create captures whose support is below ``h``, which the
capture-support pruning or the final broadness filter removes.
"""

from __future__ import annotations

import operator
import time
from collections import Counter
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core.cind import AssociationRule, SupportedAR
from repro.core.conditions import (
    BinaryCondition,
    Condition,
    ConditionScope,
    UnaryCondition,
)
from repro.dataflow.bloom import BloomFilter
from repro.dataflow.engine import (
    DataSet,
    ExecutionEnvironment,
    pair_key,
    pair_value,
)
from repro.rdf.model import Attr, EncodedDataset, EncodedTriple


#: Default false-positive rate for the condition Bloom filters.
DEFAULT_FP_RATE = 0.01


@dataclass
class FrequentConditions:
    """Output of the FCDetector.

    ``unary_counts``/``binary_counts`` hold the exact frequencies of the
    *frequent* conditions only.  The Bloom filters are what the downstream
    phases probe (matching the paper); the exact dicts additionally serve
    the statistics module and the tests.
    """

    h: int
    scope: ConditionScope
    unary_counts: Dict[UnaryCondition, int]
    binary_counts: Dict[BinaryCondition, int]
    unary_bloom: BloomFilter
    binary_bloom: BloomFilter
    association_rules: List[SupportedAR] = field(default_factory=list)

    @property
    def rule_set(self) -> Set[AssociationRule]:
        """The bare rules, for O(1) membership tests in Algorithm 2."""
        return {sar.rule for sar in self.association_rules}

    def is_frequent(self, condition: Condition) -> bool:
        """Exact frequency check against the retained counters."""
        if isinstance(condition, UnaryCondition):
            return condition in self.unary_counts
        return condition in self.binary_counts

    def frequency(self, condition: Condition) -> int:
        """Exact frequency of a frequent condition (0 if not frequent)."""
        if isinstance(condition, UnaryCondition):
            return self.unary_counts.get(condition, 0)
        return self.binary_counts.get(condition, 0)


# The operator callables below are module-level classes (not closures) so
# that the process executor can pickle them together with their config.


class _UnaryCounterEmitter:
    """Per-triple ``(unary condition, 1)`` counters (Figure 5, step 1)."""

    __slots__ = ("attrs",)

    def __init__(self, scope: ConditionScope) -> None:
        self.attrs = tuple(sorted(scope.condition_attrs))

    def __call__(
        self, triple: EncodedTriple
    ) -> Iterator[Tuple[UnaryCondition, int]]:
        for attr in self.attrs:
            yield UnaryCondition(attr, triple[int(attr)]), 1


class _BinaryCounterEmitter:
    """Algorithm 1: on-demand binary candidate creation via Bloom probes."""

    __slots__ = ("attrs", "pairs", "unary_bloom")

    def __init__(self, scope: ConditionScope, unary_bloom: BloomFilter) -> None:
        self.attrs = tuple(sorted(scope.condition_attrs))
        pairs = []
        for index, attr1 in enumerate(self.attrs):
            for attr2 in self.attrs[index + 1 :]:
                pairs.append((attr1, attr2))
        self.pairs = tuple(pairs)
        self.unary_bloom = unary_bloom

    def __call__(
        self, triple: EncodedTriple
    ) -> Iterator[Tuple[BinaryCondition, int]]:
        unary_bloom = self.unary_bloom
        probed = {
            attr: UnaryCondition(attr, triple[int(attr)]) in unary_bloom
            for attr in self.attrs
        }
        for attr1, attr2 in self.pairs:
            if probed[attr1] and probed[attr2]:
                yield (
                    BinaryCondition(
                        attr1, triple[int(attr1)], attr2, triple[int(attr2)]
                    ),
                    1,
                )


def _count_at_least(h: int, pair: Tuple[Condition, int]) -> bool:
    """Frequency filter used via ``functools.partial`` (picklable)."""
    return pair[1] >= h


def _columnar_unary_counts(
    env: ExecutionEnvironment,
    columns: EncodedDataset,
    scope: ConditionScope,
    h: int,
) -> Dict[UnaryCondition, int]:
    """Columnar fast path for steps 1-2: count ids straight off the columns.

    ``Counter(column)`` iterates an ``array`` at C speed, so no per-triple
    Python-level counter records are materialized.  The result is the same
    dict the dataflow path collects: the per-attribute first-occurrence
    order of a column equals the first-occurrence order of the attribute
    over the triples, so even insertion order matches.
    """
    stage = env.metrics.new_stage("fc/unary-columnar")
    start = time.perf_counter()
    counts: Dict[UnaryCondition, int] = {}
    distinct = 0
    for attr in sorted(scope.condition_attrs):
        column_counts = Counter(columns.column(attr))
        distinct += len(column_counts)
        for value, count in column_counts.items():
            if count >= h:
                counts[UnaryCondition(attr, value)] = count
    elapsed = time.perf_counter() - start
    stage.records_in = [len(columns) * len(scope.condition_attrs)]
    stage.records_out = [len(counts)]
    stage.partition_seconds = [elapsed / env.parallelism] * env.parallelism
    # The dataflow path's combiners hold one counter per distinct
    # condition; charge the same state to keep budget semantics honest.
    stage.peak_state_cost = distinct
    env._check_budget("fc/unary-columnar", distinct)
    return counts


def _columnar_binary_counts(
    env: ExecutionEnvironment,
    columns: EncodedDataset,
    scope: ConditionScope,
    unary_bloom: BloomFilter,
    h: int,
) -> Dict[BinaryCondition, int]:
    """Columnar fast path for Algorithm 1 (steps 6-7).

    Bloom probes are memoized per (attribute, id): a dataset has far fewer
    distinct ids than triples, and :class:`BinaryCondition` objects are
    only built for pairs that survive the frequency filter.
    """
    stage = env.metrics.new_stage("fc/binary-columnar")
    start = time.perf_counter()
    attrs = tuple(sorted(scope.condition_attrs))
    probe_caches: Dict[Attr, Dict[int, bool]] = {attr: {} for attr in attrs}
    counts: Dict[BinaryCondition, int] = {}
    records_in = 0
    distinct = 0
    for index, attr1 in enumerate(attrs):
        cache1 = probe_caches[attr1]
        column1 = columns.column(attr1)
        for attr2 in attrs[index + 1 :]:
            cache2 = probe_caches[attr2]
            pair_counter: Counter = Counter()
            for v1, v2 in zip(column1, columns.column(attr2)):
                hit1 = cache1.get(v1)
                if hit1 is None:
                    hit1 = cache1[v1] = UnaryCondition(attr1, v1) in unary_bloom
                if not hit1:
                    continue
                hit2 = cache2.get(v2)
                if hit2 is None:
                    hit2 = cache2[v2] = UnaryCondition(attr2, v2) in unary_bloom
                if hit2:
                    pair_counter[(v1, v2)] += 1
            records_in += sum(pair_counter.values())
            distinct = max(distinct, len(pair_counter))
            env._check_budget("fc/binary-columnar", len(pair_counter))
            for (v1, v2), count in pair_counter.items():
                if count >= h:
                    counts[BinaryCondition(attr1, v1, attr2, v2)] = count
    elapsed = time.perf_counter() - start
    stage.records_in = [records_in]
    stage.records_out = [len(counts)]
    stage.partition_seconds = [elapsed / env.parallelism] * env.parallelism
    stage.peak_state_cost = distinct
    return counts


def _last_stage(env: ExecutionEnvironment, name: str):
    """Most recent stage with ``name`` (the one the planner just shaped)."""
    for stage in reversed(env.metrics.stages):
        if stage.name == name:
            return stage
    return None


def _plan_unary_counts(
    env: ExecutionEnvironment,
    columns: EncodedDataset,
    scope: ConditionScope,
    h: int,
) -> Dict[UnaryCondition, int]:
    """Columnar counting with planner dispatch (steps 1-2).

    When a stage planner is attached and picks the batch kernel, the scan
    runs as a ``reduce_partitions`` over column batches on the executor
    (real cores under the process backend); otherwise the single-threaded
    driver scan runs.  Both produce the same counts, so downstream output
    is byte-identical either way — the planner only trades wall-clock.
    """
    planner = getattr(env, "planner", None)
    if planner is None or not planner.active:
        return _columnar_unary_counts(env, columns, scope, h)
    records = len(columns) * len(scope.condition_attrs)
    plan = planner.plan_kernel("fc/unary-columnar", records)
    if plan.use_kernel:
        from repro.dataflow.kernels import batch_dataset, unary_counts_kernel

        split = planner.plan_partitions("fc/unary-columnar", records)
        batches = batch_dataset(
            env, columns, split.partitions, name="fc/unary-batches"
        )
        counts = unary_counts_kernel(env, batches, scope, h)
    else:
        counts = _columnar_unary_counts(env, columns, scope, h)
    planner.annotate(env.metrics, "fc/unary-columnar", plan)
    stage = _last_stage(env, "fc/unary-columnar")
    if stage is not None:
        planner.observe(stage)
    return counts


def _plan_binary_counts(
    env: ExecutionEnvironment,
    columns: EncodedDataset,
    scope: ConditionScope,
    unary_bloom: BloomFilter,
    h: int,
) -> Dict[BinaryCondition, int]:
    """Columnar Algorithm 1 with planner dispatch (steps 6-7)."""
    planner = getattr(env, "planner", None)
    if planner is None or not planner.active:
        return _columnar_binary_counts(env, columns, scope, unary_bloom, h)
    records = len(columns) * len(scope.condition_attrs)
    plan = planner.plan_kernel("fc/binary-columnar", records)
    if plan.use_kernel:
        from repro.dataflow.kernels import batch_dataset, binary_counts_kernel

        split = planner.plan_partitions("fc/binary-columnar", records)
        batches = batch_dataset(
            env, columns, split.partitions, name="fc/binary-batches"
        )
        counts = binary_counts_kernel(env, batches, scope, unary_bloom, h)
    else:
        counts = _columnar_binary_counts(env, columns, scope, unary_bloom, h)
    planner.annotate(env.metrics, "fc/binary-columnar", plan)
    stage = _last_stage(env, "fc/binary-columnar")
    if stage is not None:
        planner.observe(stage)
    return counts


def _local_bloom(
    capacity: int, fp_rate: float, partition: List[Tuple[Condition, int]]
) -> BloomFilter:
    """One worker's partial Bloom filter over its counter partition."""
    bloom = BloomFilter.for_capacity(capacity, fp_rate)
    for condition, _count in partition:
        bloom.add(condition)
    return bloom


def _build_bloom(
    counters: DataSet, capacity: int, fp_rate: float, name: str
) -> BloomFilter:
    """Distributed Bloom construction: local partials, bit-wise OR union."""
    return counters.reduce_partitions(
        partial(_local_bloom, max(1, capacity), fp_rate),
        lambda a, b: a.union_update(b),  # merge runs on the driver
        name=name,
    )


def _dataflow_unary_counts(
    env: ExecutionEnvironment,
    triples: DataSet,
    scope: ConditionScope,
    h: int,
) -> Tuple[Dict[UnaryCondition, int], DataSet]:
    """Record-at-a-time path for steps 1-2 (counts dict + frequent dataset)."""
    unary_counters = triples.flat_map(
        _UnaryCounterEmitter(scope), name="fc/unary-counters"
    ).reduce_by_key(
        key_fn=pair_key,
        value_fn=pair_value,
        reduce_fn=operator.add,
        name="fc/unary-aggregate",
        order_insensitive=True,
    )
    frequent_unary = unary_counters.filter(
        partial(_count_at_least, h), name="fc/unary-filter"
    )
    return dict(frequent_unary.collect(name="fc/unary-collect")), frequent_unary


def _dataflow_binary_counts(
    env: ExecutionEnvironment,
    triples: DataSet,
    scope: ConditionScope,
    unary_bloom: BloomFilter,
    h: int,
) -> Tuple[Dict[BinaryCondition, int], DataSet]:
    """Record-at-a-time path for Algorithm 1 (counts dict + frequent dataset)."""
    binary_counters = triples.flat_map(
        _BinaryCounterEmitter(scope, unary_bloom),
        name="fc/binary-counters",
    ).reduce_by_key(
        key_fn=pair_key,
        value_fn=pair_value,
        reduce_fn=operator.add,
        name="fc/binary-aggregate",
        order_insensitive=True,
    )
    frequent_binary = binary_counters.filter(
        partial(_count_at_least, h), name="fc/binary-filter"
    )
    return (
        dict(frequent_binary.collect(name="fc/binary-collect")),
        frequent_binary,
    )


def _unary_counts_only(
    env: ExecutionEnvironment,
    triples: DataSet,
    scope: ConditionScope,
    h: int,
    columns: Optional[EncodedDataset],
) -> Dict[UnaryCondition, int]:
    """The fc/unary checkpoint boundary's value: just the counts dict."""
    if columns is not None:
        return _plan_unary_counts(env, columns, scope, h)
    return _dataflow_unary_counts(env, triples, scope, h)[0]


def _binary_counts_only(
    env: ExecutionEnvironment,
    triples: DataSet,
    scope: ConditionScope,
    unary_bloom: BloomFilter,
    h: int,
    columns: Optional[EncodedDataset],
) -> Dict[BinaryCondition, int]:
    """The fc/binary checkpoint boundary's value: just the counts dict."""
    if columns is not None:
        return _plan_binary_counts(env, columns, scope, unary_bloom, h)
    return _dataflow_binary_counts(env, triples, scope, unary_bloom, h)[0]


def detect_frequent_conditions(
    env: ExecutionEnvironment,
    triples: DataSet,
    h: int,
    scope: Optional[ConditionScope] = None,
    fp_rate: float = DEFAULT_FP_RATE,
    columns: Optional[EncodedDataset] = None,
) -> FrequentConditions:
    """Run the FCDetector over a dataset of encoded triples.

    Parameters
    ----------
    env:
        The execution environment (fixes parallelism, gathers metrics).
    triples:
        A :class:`~repro.dataflow.engine.DataSet` of
        :class:`~repro.rdf.model.EncodedTriple`.
    h:
        The user-defined support threshold; conditions below it are
        pruned (Lemma 1 makes this sound for broad-CIND discovery).
    scope:
        Attribute restrictions; defaults to the general setting.
    fp_rate:
        Target false-positive rate of the condition Bloom filters.
    columns:
        The columnar form of the same triples.  When given, the counting
        stages run directly over the id columns (same counts, same Bloom
        filters, far fewer Python-level records); the Bloom/AR stages
        still run on the dataflow engine.
    """
    if h < 1:
        raise ValueError(f"support threshold must be >= 1, got {h}")
    scope = scope if scope is not None else ConditionScope.full()

    # Stage-granularity checkpointing: the counting stages (the expensive
    # part of the phase) become durable boundaries.  A checkpointed run
    # materializes the frequent-condition datasets from the collected
    # count dicts — content-identical to the filter datasets the plain
    # dataflow path feeds downstream (the Bloom unions are bit-wise ORs
    # and the AR list is sorted at the end, so neither depends on the
    # partition layout), which is what lets a restored dict stand in.
    ckpt = getattr(env, "checkpoint", None)
    if ckpt is not None and not ckpt.enabled("stage"):
        ckpt = None

    # Steps 1-2: frequent unary conditions with early aggregation.
    if ckpt is not None:
        unary_counts: Dict[UnaryCondition, int] = ckpt.step(
            "fc/unary",
            "stage",
            partial(_unary_counts_only, env, triples, scope, h, columns),
        )
        frequent_unary = env.from_collection(
            unary_counts.items(), name="fc/unary-frequent"
        )
    elif columns is not None:
        unary_counts = _plan_unary_counts(env, columns, scope, h)
        frequent_unary = env.from_collection(
            unary_counts.items(), name="fc/unary-frequent"
        )
    else:
        unary_counts, frequent_unary = _dataflow_unary_counts(
            env, triples, scope, h
        )

    # Steps 3-5: unary Bloom filter, built distributedly and broadcast.
    unary_bloom = _build_bloom(
        frequent_unary, len(unary_counts), fp_rate, name="fc/unary-bloom"
    )
    bloom_stage = env.metrics.new_stage("fc/unary-bloom-broadcast")
    bloom_stage.broadcast_records = env.parallelism

    binary_counts: Dict[BinaryCondition, int] = {}
    if scope.allow_binary and len(scope.condition_attrs) >= 2:
        # Steps 6-7: frequent binary conditions (Algorithm 1).
        if ckpt is not None:
            binary_counts = ckpt.step(
                "fc/binary",
                "stage",
                partial(
                    _binary_counts_only,
                    env,
                    triples,
                    scope,
                    unary_bloom,
                    h,
                    columns,
                ),
            )
            frequent_binary = env.from_collection(
                binary_counts.items(), name="fc/binary-frequent"
            )
        elif columns is not None:
            binary_counts = _plan_binary_counts(
                env, columns, scope, unary_bloom, h
            )
            frequent_binary = env.from_collection(
                binary_counts.items(), name="fc/binary-frequent"
            )
        else:
            binary_counts, frequent_binary = _dataflow_binary_counts(
                env, triples, scope, unary_bloom, h
            )
        # Steps 8-9: binary Bloom filter.
        binary_bloom = _build_bloom(
            frequent_binary, len(binary_counts), fp_rate, name="fc/binary-bloom"
        )
    else:
        frequent_binary = env.from_collection((), name="fc/binary-empty")
        binary_bloom = BloomFilter.for_capacity(1, fp_rate)

    # Step 11: association rules by joining unary and binary counters.
    if ckpt is not None:
        association_rules = ckpt.step(
            "fc/rules",
            "stage",
            partial(_extract_association_rules, frequent_unary, frequent_binary),
        )
    else:
        association_rules = _extract_association_rules(
            frequent_unary, frequent_binary
        )

    return FrequentConditions(
        h=h,
        scope=scope,
        unary_counts=unary_counts,
        binary_counts=binary_counts,
        unary_bloom=unary_bloom,
        binary_bloom=binary_bloom,
        association_rules=association_rules,
    )


def _explode_binary_parts(pair):
    """``(u1 ∧ u2, n)`` → one join record per embedded unary part."""
    condition, count = pair
    for part in condition.unary_parts():
        yield part, condition, count


def _match_association_rules(key, unary_records, binary_records):
    """Equal-count join groups yield exact ARs (Lemma 2)."""
    if not unary_records:
        return
    (_condition, unary_count) = unary_records[0]
    for _part, binary_condition, binary_count in binary_records:
        if binary_count == unary_count:
            other = binary_condition.other_part(key)
            yield SupportedAR(AssociationRule(key, other), binary_count)


def _extract_association_rules(
    frequent_unary: DataSet, frequent_binary: DataSet
) -> List[SupportedAR]:
    """Join unary and binary counters on the embedded unary condition.

    A frequent binary counter ``(u1 ∧ u2, n)`` joins with both of its
    parts; if a part's counter equals ``n``, the part determines the other
    (confidence 1) and ``part → other`` is an AR with support ``n``
    (Lemma 2).
    """
    binaries_by_part = frequent_binary.flat_map(
        _explode_binary_parts, name="fc/ar-explode"
    )
    rules = frequent_unary.co_group(
        binaries_by_part,
        key_self=pair_key,
        key_other=pair_key,
        fn=_match_association_rules,
        name="fc/ar-join",
    ).collect(name="fc/ar-collect")
    rules.sort(key=lambda sar: (-sar.support, sar.rule))
    return rules
