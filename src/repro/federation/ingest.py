"""Endpoint → :class:`EncodedDataset` ingestion: paged, adaptive, resumable.

The fetch plan is a single total scan, ``SELECT ?s ?p ?o`` ordered by
``?s ?p ?o`` and paged with ``LIMIT``/``OFFSET``.  The cursor is simply
*rows fetched so far* — and because OFFSET paging over a fixed total
order is prefix-stable, the concatenated row stream is identical no
matter how the page size evolves.  That is the property the whole
robustness story rests on: a fetch that survived timeouts, rate limits
and truncated pages produces byte-identical encoded triples to a clean
one.

Two adaptive/durable layers sit on top of the resilient client:

* :class:`AdaptivePager` — the page size halves when a page fails even
  after the client's own retries (big pages are what time out and what
  get truncated), and re-grows multiplicatively after successes, so one
  bad stretch does not condemn the rest of the fetch to tiny pages.
* a **resumable workspace** (PR 5's manifest pattern): each fetched page
  is appended to ``pages.frames`` as a CRC-framed JSON payload, next to
  a ``manifest.json`` holding a BLAKE2b fingerprint of the fetch
  identity (endpoint + query form).  A re-run resumes from the stored
  row count; a torn tail frame (writer died mid-append) is truncated
  away with a warning; a corrupt frame forces a warned clean restart;
  a fingerprint mismatch is a typed :class:`FetchMismatchError` — the
  checkpoint subsystem's "mismatch is an error, corruption is a warned
  restart" discipline.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.core.framing import (
    FrameCorruptionError,
    FrameTruncatedError,
    read_frame,
    write_frame,
)
from repro.dataflow.checkpoint import fingerprint_fields
from repro.federation.client import SparqlEndpointClient
from repro.federation.errors import (
    FetchMismatchError,
    MalformedResponseError,
    TransientEndpointError,
)
from repro.storage.columnar import EncodedDataset
from repro.storage.dictionary import TermDictionary

__all__ = [
    "AdaptivePager",
    "FetchResult",
    "MANIFEST_NAME",
    "PAGES_NAME",
    "fetch_endpoint",
    "page_query",
]

MANIFEST_NAME = "manifest.json"
PAGES_NAME = "pages.frames"
MANIFEST_FORMAT = "rdfind-fetch-manifest"
MANIFEST_VERSION = 1

#: The one query shape this ingester runs, paged.  The explicit total
#: order is what makes OFFSET cursors prefix-stable across page sizes.
SCAN_QUERY = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o"


def page_query(offset: int, limit: int) -> str:
    """The scan query for one page window."""
    return f"{SCAN_QUERY} LIMIT {limit} OFFSET {offset}"


def _warn(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


class AdaptivePager:
    """LIMIT sizing that backs off under faults and recovers after them.

    ``shrink()`` halves the page (never below ``min_page_size``) and is
    called when a page request fails even after the client's retry
    budget — the usual cause being a page too large for the endpoint's
    patience or the path's reliability.  ``grow()`` doubles it back
    (never above ``max_page_size``) after a successful page, so the
    penalty decays once the endpoint recovers.
    """

    def __init__(
        self,
        page_size: int = 1000,
        min_page_size: int = 1,
        max_page_size: Optional[int] = None,
    ) -> None:
        if min_page_size < 1:
            raise ValueError("min_page_size must be >= 1")
        if page_size < min_page_size:
            raise ValueError(
                f"page_size {page_size} is below min_page_size {min_page_size}"
            )
        self.min_page_size = min_page_size
        self.max_page_size = max_page_size if max_page_size is not None else page_size
        if self.max_page_size < page_size:
            raise ValueError(
                f"max_page_size {self.max_page_size} is below page_size {page_size}"
            )
        self.page_size = page_size
        self.shrinks = 0
        self.grows = 0
        #: Every page size actually used, in order — the test surface.
        self.sizes_used: List[int] = []

    def shrink(self) -> bool:
        """Halve the page size; ``False`` when already at the floor."""
        if self.page_size <= self.min_page_size:
            return False
        self.page_size = max(self.min_page_size, self.page_size // 2)
        self.shrinks += 1
        return True

    def grow(self) -> None:
        """Double the page size back toward the cap after a success."""
        if self.page_size < self.max_page_size:
            self.page_size = min(self.max_page_size, self.page_size * 2)
            self.grows += 1


@dataclass
class FetchResult:
    """What one endpoint fetch produced, and how hard it had to work."""

    encoded: EncodedDataset
    endpoint: str
    rows: int
    pages: int
    resumed_rows: int
    requests_sent: int
    retries: int
    page_shrinks: int
    complete: bool = True

    def stats(self) -> dict:
        """The run's counters as a plain dict (for reports/benchmarks)."""
        return {
            "endpoint": self.endpoint,
            "rows": self.rows,
            "triples": len(self.encoded),
            "pages": self.pages,
            "resumed_rows": self.resumed_rows,
            "requests_sent": self.requests_sent,
            "retries": self.retries,
            "page_shrinks": self.page_shrinks,
            "complete": self.complete,
        }


# -- resumable workspace ------------------------------------------------


def _fetch_fingerprint(endpoint: str) -> str:
    """Identity of one fetch: the endpoint and the exact query shape.

    Deliberately excludes the page size — pagination is prefix-stable,
    so resuming with a different (or adaptively changed) page size is
    sound and must not be rejected.
    """
    return fingerprint_fields(
        endpoint=endpoint,
        query=SCAN_QUERY,
        page_format=f"{MANIFEST_FORMAT}-v{MANIFEST_VERSION}",
    )


def _write_manifest(directory: str, endpoint: str, fingerprint: str) -> None:
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "endpoint": endpoint,
        "query": SCAN_QUERY,
        "fingerprint": fingerprint,
    }
    tmp = os.path.join(directory, MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, os.path.join(directory, MANIFEST_NAME))


def _load_pages(path: str) -> Tuple[List[Tuple[str, str, str]], int, int]:
    """Stored rows, the page count, and the clean byte length of the file.

    A torn tail (:class:`FrameTruncatedError`) keeps the good prefix and
    reports its end offset so the caller can truncate the litter away;
    corruption propagates for the caller to turn into a clean restart.
    """
    rows: List[Tuple[str, str, str]] = []
    pages = 0
    clean_end = 0
    with open(path, "rb") as handle:
        while True:
            try:
                payload = read_frame(handle)
            except FrameTruncatedError:
                _warn(
                    f"fetch workspace {path} ends in a torn page frame; "
                    f"dropping the tail and resuming from the last whole page"
                )
                break
            if payload is None:
                break
            page = json.loads(payload.decode("utf-8"))
            if not isinstance(page, list):
                raise FrameCorruptionError(
                    f"page frame payload is not a row list: {type(page).__name__}"
                )
            for row in page:
                s, p, o = row
                rows.append((s, p, o))
            pages += 1
            clean_end = handle.tell()
    return rows, pages, clean_end


def _open_workspace(
    directory: str, endpoint: str, resume: bool
) -> Tuple[List[Tuple[str, str, str]], int]:
    """Prepare the workspace; returns (resumed rows, resumed page count).

    Fresh directory → write the manifest, start empty.  Existing
    workspace → validate the fingerprint (mismatch is a typed error),
    then load the stored pages, repairing a torn tail in place and
    restarting cleanly (with a warning) on corruption.
    """
    os.makedirs(directory, exist_ok=True)
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    pages_path = os.path.join(directory, PAGES_NAME)
    fingerprint = _fetch_fingerprint(endpoint)

    def fresh() -> Tuple[List[Tuple[str, str, str]], int]:
        _write_manifest(directory, endpoint, fingerprint)
        with open(pages_path, "wb"):
            pass
        return [], 0

    if not resume or not os.path.exists(manifest_path):
        return fresh()

    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        stored = manifest["fingerprint"]
    except (ValueError, KeyError, OSError) as error:
        _warn(
            f"fetch workspace manifest {manifest_path} is unreadable "
            f"({error}); restarting the fetch cleanly"
        )
        return fresh()
    if stored != fingerprint:
        raise FetchMismatchError(
            f"fetch workspace {directory} belongs to a different fetch "
            f"(manifest fingerprint {stored}, this fetch {fingerprint}); "
            f"refusing to splice result streams — use a fresh workspace "
            f"or delete this one"
        )
    if not os.path.exists(pages_path):
        with open(pages_path, "wb"):
            pass
        return [], 0
    try:
        rows, pages, clean_end = _load_pages(pages_path)
    except (FrameCorruptionError, ValueError) as error:
        _warn(
            f"fetch workspace {pages_path} is corrupt ({error}); "
            f"restarting the fetch cleanly"
        )
        with open(pages_path, "wb"):
            pass
        return [], 0
    if clean_end < os.path.getsize(pages_path):
        with open(pages_path, "r+b") as handle:
            handle.truncate(clean_end)
    return rows, pages


def _append_page(pages_path: str, rows: List[Tuple[str, str, str]]) -> None:
    """Durably append one fetched page as a CRC frame."""
    payload = json.dumps([list(row) for row in rows]).encode("utf-8")
    with open(pages_path, "ab") as handle:
        write_frame(handle, payload)
        handle.flush()
        os.fsync(handle.fileno())


# -- the fetch loop -----------------------------------------------------


def _page_rows(
    page: List[dict], endpoint: str
) -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    for binding in page:
        try:
            rows.append((binding["s"], binding["p"], binding["o"]))
        except KeyError as error:
            raise MalformedResponseError(
                f"{endpoint} page row is missing variable {error}",
                endpoint=endpoint,
            ) from None
    return rows


def fetch_endpoint(
    source: Union[str, SparqlEndpointClient],
    name: str = "",
    workspace: Optional[str] = None,
    page_size: int = 1000,
    min_page_size: int = 1,
    max_page_size: Optional[int] = None,
    dictionary: Optional[TermDictionary] = None,
    resume: bool = True,
    client_factory: Callable[[str], SparqlEndpointClient] = SparqlEndpointClient,
) -> FetchResult:
    """Stream an endpoint's triples into an :class:`EncodedDataset`.

    ``source`` is an endpoint URL (a default client is built via
    ``client_factory``) or a pre-configured
    :class:`~repro.federation.client.SparqlEndpointClient`.  With
    ``workspace`` the fetch is resumable: already-fetched pages are
    loaded from disk and the scan continues from their row count.
    Passing a shared ``dictionary`` encodes this endpoint's terms into
    the same id space as other sources — the precondition for
    cross-endpoint discovery (see :mod:`repro.federation.cross`).

    Deduplication matches local parsing semantics exactly, so fetching
    an endpoint that serves a local ``.nt`` file yields a byte-identical
    :class:`EncodedDataset` to parsing that file.
    """
    client = source if isinstance(source, SparqlEndpointClient) else client_factory(source)
    endpoint = client.endpoint_url
    pager = AdaptivePager(
        page_size=page_size,
        min_page_size=min_page_size,
        max_page_size=max_page_size,
    )

    pages_path = None
    if workspace is not None:
        stored_rows, stored_pages = _open_workspace(workspace, endpoint, resume)
        pages_path = os.path.join(workspace, PAGES_NAME)
    else:
        stored_rows, stored_pages = [], 0

    rows: List[Tuple[str, str, str]] = list(stored_rows)
    resumed_rows = len(stored_rows)
    pages = stored_pages

    total = client.count_triples()
    complete = True
    while len(rows) < total:
        offset = len(rows)
        try:
            page = client.select(page_query(offset, pager.page_size))
        except (TransientEndpointError, MalformedResponseError):
            # The client's whole retry budget is spent at this page
            # size; halve and try the same window again.  At the floor
            # there is nothing left to adapt — let the error propagate.
            if not pager.shrink():
                raise
            continue
        pager.sizes_used.append(pager.page_size)
        if not page:
            # The endpoint returned fewer rows than it counted (data
            # changed under us, or a lying COUNT).  Stop rather than
            # spin forever on an empty window.
            complete = False
            break
        page_rows = _page_rows(page, endpoint)
        rows.extend(page_rows)
        pages += 1
        if pages_path is not None:
            _append_page(pages_path, page_rows)
        pager.grow()

    encoded = EncodedDataset.from_terms(
        rows,
        dictionary=dictionary,
        name=name or endpoint,
        deduplicate=True,
    )
    return FetchResult(
        encoded=encoded,
        endpoint=endpoint,
        rows=len(rows),
        pages=pages,
        resumed_rows=resumed_rows,
        requests_sent=client.requests_sent,
        retries=client.retries,
        page_shrinks=pager.shrinks,
        complete=complete,
    )
