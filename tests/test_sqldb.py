"""Tests for the miniature relational engine."""

import pytest
from hypothesis import given, strategies as st

from repro.dataflow.engine import SimulatedOutOfMemory
from repro.sqldb import (
    Aggregate,
    Cursor,
    Database,
    Distinct,
    Filter,
    HashLeftOuterJoin,
    Project,
    Scan,
    SortMergeLeftOuterJoin,
    Table,
)
from repro.sqldb.storage import decode_row, encode_row


class TestRowCodec:
    @given(st.lists(st.one_of(st.text(max_size=15), st.integers(), st.none()), max_size=6))
    def test_roundtrip(self, values):
        row = tuple(values)
        assert decode_row(encode_row(row)) == row

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_row((1.5,))

    def test_corrupt_record_rejected(self):
        with pytest.raises(ValueError):
            decode_row(b"\x00\x00\x00\x02zq")


class TestTable:
    def test_insert_and_scan(self):
        table = Table("t", ("a", "b"))
        table.insert(("x", 1))
        table.insert_many([("y", 2), ("z", 3)])
        assert len(table) == 3
        assert sorted(table) == [("x", 1), ("y", 2), ("z", 3)]

    def test_arity_checked(self):
        table = Table("t", ("a", "b"))
        with pytest.raises(ValueError):
            table.insert(("only-one",))
        with pytest.raises(ValueError):
            table.insert_many([("a", 1, 2)])

    def test_column_validation(self):
        with pytest.raises(ValueError):
            Table("t", ())
        with pytest.raises(ValueError):
            Table("t", ("a", "a"))

    def test_column_index(self):
        table = Table("t", ("a", "b"))
        assert table.column_index("b") == 1
        with pytest.raises(KeyError):
            table.column_index("zz")

    def test_truncate_and_storage_bytes(self):
        table = Table("t", ("a",))
        table.insert(("hello",))
        assert table.storage_bytes() > 0
        table.truncate()
        assert len(table) == 0
        assert table.storage_bytes() == 0

    def test_repr(self):
        assert "0 rows" in repr(Table("t", ("a",)))


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        table = db.create_table("t", ("a",))
        assert db.table("t") is table
        assert "t" in db
        assert db.tables() == ["t"]

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_table("t", ("a",))
        with pytest.raises(ValueError):
            db.create_table("t", ("a",))

    def test_drop(self):
        db = Database()
        db.create_table("t", ("a",))
        db.drop_table("t")
        assert "t" not in db
        with pytest.raises(KeyError):
            db.drop_table("t")

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            Database().table("missing")


@pytest.fixture
def people():
    table = Table("people", ("name", "city"))
    table.insert_many(
        [("ann", "berlin"), ("bob", "doha"), ("cyd", "berlin"), ("dan", "paris")]
    )
    return table


@pytest.fixture
def cities():
    table = Table("cities", ("city",))
    table.insert_many([("berlin",), ("doha",), ("doha",)])
    return table


class TestOperators:
    def test_scan(self, people):
        assert len(Scan(people).rows()) == 4

    def test_project_single(self, people):
        assert set(Project(Scan(people), (1,))) == {("berlin",), ("doha",), ("paris",)}

    def test_project_multi_reorders(self, people):
        rows = Project(Scan(people), (1, 0)).rows()
        assert ("berlin", "ann") in rows

    def test_filter(self, people):
        rows = Filter(Scan(people), lambda row: row[1] == "berlin").rows()
        assert {row[0] for row in rows} == {"ann", "cyd"}

    def test_distinct(self, cities):
        assert sorted(Distinct(Scan(cities))) == [("berlin",), ("doha",)]

    def test_aggregate_counts(self, people):
        rows = Aggregate(Scan(people), key_fn=lambda row: (row[1],)).rows()
        assert ("berlin", 2) in rows and ("paris", 1) in rows

    def test_cursor_roundtrips_rows(self, people):
        assert sorted(Cursor(Scan(people))) == sorted(Scan(people))


class TestJoins:
    def _reference_left_outer(self, left, right, lk, rk):
        out = []
        arity = len(right[0]) if right else 0
        for lrow in left:
            matches = [r for r in right if r[rk] == lrow[lk]]
            if matches:
                out.extend(lrow + m for m in matches)
            else:
                out.append(lrow + (None,) * arity)
        return sorted(out, key=repr)

    @pytest.mark.parametrize("join_cls", [HashLeftOuterJoin, SortMergeLeftOuterJoin])
    def test_left_outer_semantics(self, join_cls, people, cities):
        got = sorted(
            join_cls(Scan(people), Distinct(Scan(cities)), left_key=1, right_key=0),
            key=repr,
        )
        want = self._reference_left_outer(
            list(people), sorted(set(cities)), 1, 0
        )
        assert got == want

    @pytest.mark.parametrize("join_cls", [HashLeftOuterJoin, SortMergeLeftOuterJoin])
    def test_duplicate_right_keys_multiply(self, join_cls):
        left = [("a", 1)]
        right = [(1, "x"), (1, "y")]
        rows = list(join_cls(left, right, left_key=1, right_key=0))
        assert len(rows) == 2

    def test_joins_agree(self, people, cities):
        hash_rows = sorted(
            HashLeftOuterJoin(Scan(people), Scan(cities), 1, 0), key=repr
        )
        merge_rows = sorted(
            SortMergeLeftOuterJoin(Scan(people), Scan(cities), 1, 0), key=repr
        )
        assert hash_rows == merge_rows

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25),
        st.lists(st.tuples(st.integers(0, 5),), max_size=10),
    )
    def test_join_property(self, left, right):
        hash_rows = sorted(
            HashLeftOuterJoin(left, right, left_key=1, right_key=0), key=repr
        )
        merge_rows = sorted(
            SortMergeLeftOuterJoin(left, right, left_key=1, right_key=0), key=repr
        )
        reference = self._reference_left_outer(left, right, 1, 0)
        assert hash_rows == reference
        assert merge_rows == reference


class TestMemoryBudgets:
    def test_distinct_budget(self, people):
        with pytest.raises(SimulatedOutOfMemory):
            list(Distinct(Scan(people), memory_budget=1))

    def test_aggregate_budget(self, people):
        with pytest.raises(SimulatedOutOfMemory):
            list(Aggregate(Scan(people), key_fn=lambda r: (r[0],), memory_budget=2))

    def test_hash_join_build_budget(self, people, cities):
        with pytest.raises(SimulatedOutOfMemory):
            list(HashLeftOuterJoin(Scan(people), Scan(cities), 1, 0, memory_budget=1))

    def test_sort_merge_budget(self, people, cities):
        with pytest.raises(SimulatedOutOfMemory):
            list(
                SortMergeLeftOuterJoin(Scan(people), Scan(cities), 1, 0, memory_budget=2)
            )
