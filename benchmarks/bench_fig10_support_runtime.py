"""Figure 10: runtime across support thresholds and datasets.

The paper sweeps h from 1 to 10,000 over seven datasets and observes a
characteristic pattern: runtimes are nearly constant for large h and rise
sharply once h drops below ~10, because almost all conditions are
infrequent (Figure 4) and the pruning loses its bite.

The sweep here starts at h=5 for the small datasets and h=25 for the
large ones (the paper's own Figures 9/13 use those floors for the larger
datasets); the DiscoveryCache shares these runs with Figure 11.
"""

import pytest

#: Sweep floors sit just above each dataset's per-entity triple count:
#: below it, per-entity subject conditions become frequent and the
#: pertinent set grows to millions (e.g. 18.6M on Diseasome at h=5,
#: 6.3M on LUBM-1 at h=5 — measured), which matches the paper's
#: observation that low supports explode but is infeasible to *hold* for
#: a whole suite in one process.
DATASET_SWEEPS = {
    "Countries": (5, 10, 100, 1000, 10000),
    "Diseasome": (10, 25, 100, 1000, 10000),
    "LUBM-1": (10, 25, 100, 1000, 10000),
    "DrugBank": (10, 25, 100, 1000, 10000),
    "LinkedMDB": (25, 100, 1000, 10000),
    "DB14-MPCE": (25, 100, 1000, 10000),
    "DB14-PLE": (25, 100, 1000, 10000),
}


@pytest.mark.parametrize("name", list(DATASET_SWEEPS))
def test_fig10_support_threshold_runtime(name, benchmark, report, cache):
    h_values = DATASET_SWEEPS[name]

    def body():
        return [(h, cache.run(name, h)[1]) for h in h_values]

    rows = benchmark.pedantic(body, rounds=1, iterations=1)

    section = report.section(f"Figure 10 — runtime vs support threshold, {name}")
    section.row(f"{'h':>7} | {'runtime':>9}")
    for h, elapsed in rows:
        section.row(f"{h:>7} | {elapsed:>8.2f}s")

    # Shape: the smallest threshold is the most expensive; large
    # thresholds are comparatively flat.
    runtimes = dict(rows)
    smallest, largest = h_values[0], h_values[-1]
    assert runtimes[smallest] >= runtimes[largest] * 0.8
    high_range = [runtimes[h] for h in h_values if h >= 1000]
    if len(high_range) >= 2:
        assert max(high_range) < runtimes[smallest] * 3 + 1.0
