"""Streaming updates: durable changelog, add/remove maintenance, recovery.

ROADMAP item 3: the batch reproduction learns to sit behind a live,
mutating knowledge graph.  The subsystem is a stack of small modules::

    changelog.py   durable CRC-framed add/remove log (ChangeLog):
                   monotonic sequence numbers, sealed/open segments,
                   replay-from-offset, truncated-tail recovery
    delta.py       DeltaStore: the mutable triple overlay — set-semantics
                   presence plus term reference counts, so removals
                   actually retract and the materialized dataset stays
                   byte-equal to a fresh batch load
    maintainer.py  StreamingRDFind: IncrementalRDFind's successor that
                   also handles removals (conditions deactivate below h,
                   interpretations shrink, groups lose members) with
                   monotonicity-aware re-evaluation and the dirty
                   capture-group set
    compaction.py  periodic checkpoint compaction: fingerprinted
                   manifests keyed on (changelog position, h, scope) so
                   a restart replays only the changelog suffix
    session.py     StreamSession: ties log + maintainer + compaction
                   together for the CLI (`rdfind stream`) and the
                   server's `/streams` endpoints

Correctness bar (enforced by the test suite): after *any* prefix of an
add/remove sequence, ``pertinent_cinds()`` equals a from-scratch run on
the materialized dataset, and the emitted result document is
byte-identical to batch ``rdfind discover -o`` on that dataset.
"""

from repro.streaming.changelog import (
    ChangeLog,
    ChangeLogCorruptError,
    ChangeLogError,
    ChangeRecord,
    OP_ADD,
    OP_REMOVE,
)
from repro.streaming.compaction import StreamCheckpointer
from repro.streaming.delta import DeltaStore
from repro.streaming.maintainer import StreamingRDFind
from repro.streaming.session import StreamSession

__all__ = [
    "OP_ADD",
    "OP_REMOVE",
    "ChangeLog",
    "ChangeLogCorruptError",
    "ChangeLogError",
    "ChangeRecord",
    "DeltaStore",
    "StreamCheckpointer",
    "StreamSession",
    "StreamingRDFind",
]
