"""Spilling-shuffle benchmark: inline vs disk-backed data plane.

Runs the full Diseasome discovery twice — once with the default
``shuffle='inline'`` data plane (all shuffle state in Python dicts) and
once with ``shuffle='spill'`` under a byte budget far below the inline
working set — and compares wall-clock plus *peak RSS*.

``resource.getrusage(...).ru_maxrss`` is a process-lifetime high-water
mark, so measuring both legs in one interpreter would let the first leg
mask the second.  Each leg therefore runs in its own subprocess that
prints a JSON record (elapsed seconds, ru_maxrss, an output digest and
the spill counters); the parent asserts the digests are identical and
that the spill leg actually spilled.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

DATASET = "Diseasome"
H = 25
#: Far below the inline shuffle's working set on Diseasome, so every
#: keyed operator is forced through the sorted-run/merge path.
SPILL_BUDGET_BYTES = 1 << 20

_CHILD_SCRIPT = """
import hashlib, json, resource, sys, time

from repro.core.discovery import RDFind, RDFindConfig
from repro.datasets import registry

dataset, h, shuffle, budget = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4])
)
encoded = registry.load(dataset, encoded=True)
config = RDFindConfig(
    support_threshold=h,
    shuffle=shuffle,
    memory_budget_bytes=budget or None,
)
started = time.perf_counter()
result = RDFind(config).discover(encoded)
elapsed = time.perf_counter() - started
payload = "\\n".join(result.render_cinds())
payload += "\\n--\\n" + "\\n".join(result.render_association_rules())
print(json.dumps({
    "elapsed": elapsed,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "digest": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
    "cinds": len(result.cinds),
    "spilled_runs": result.metrics.total_spilled_runs,
    "spilled_bytes": result.metrics.total_spilled_bytes,
    "merge_passes": result.metrics.total_merge_passes,
}))
"""


def _run_leg(shuffle: str, budget_bytes: int) -> dict:
    """One discovery run in a fresh interpreter; parsed JSON record."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    # The legs must not inherit a spill mode from the ambient shell.
    for var in ("RDFIND_SHUFFLE", "RDFIND_MEMORY_BUDGET_BYTES", "RDFIND_SPILL_DIR"):
        env.pop(var, None)
    proc = subprocess.run(
        [
            sys.executable, "-c", _CHILD_SCRIPT,
            DATASET, str(H), shuffle, str(budget_bytes),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_shuffle_spill(benchmark, report):
    def body():
        inline = _run_leg("inline", 0)
        spill = _run_leg("spill", SPILL_BUDGET_BYTES)
        return inline, spill

    inline, spill = benchmark.pedantic(body, rounds=1, iterations=1)

    slowdown = spill["elapsed"] / max(inline["elapsed"], 1e-9)
    section = report.section(
        f"Spilling shuffle — {DATASET} (h={H}, "
        f"budget={SPILL_BUDGET_BYTES // 1024} KiB)"
    )
    section.row(
        f"inline {inline['elapsed']:6.2f}s"
        f" | peak RSS {inline['ru_maxrss_kb'] / 1024:7.1f} MB"
        f" | {inline['cinds']:,} pertinent CINDs"
    )
    section.row(
        f"spill  {spill['elapsed']:6.2f}s ({slowdown:4.2f}x)"
        f" | peak RSS {spill['ru_maxrss_kb'] / 1024:7.1f} MB"
        f" | {spill['spilled_runs']:,} runs,"
        f" {spill['spilled_bytes'] / 1e6:6.1f} MB spilled,"
        f" {spill['merge_passes']:,} merge passes"
    )
    section.row(
        "output digests identical: "
        + ("yes" if inline["digest"] == spill["digest"] else "NO")
    )

    # The spilled plane must not change a single output byte, and under
    # a budget this small it must actually hit the disk.
    assert spill["digest"] == inline["digest"]
    assert spill["spilled_runs"] > 0
    assert spill["spilled_bytes"] > SPILL_BUDGET_BYTES
    # Keeping shuffle state on disk must not *cost* memory: allow noise,
    # but the spill leg may not materially exceed the inline high-water.
    assert spill["ru_maxrss_kb"] <= inline["ru_maxrss_kb"] * 1.25
