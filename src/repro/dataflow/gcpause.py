"""Pausing the cyclic garbage collector during measured runs.

The engine attributes wall-clock time to simulated workers; a CPython GC
pass triggered inside one partition's loop would be billed to that worker
and show up as (entirely fictitious) skew, distorting the simulated
parallel runtimes.  None of the pipeline's data structures form reference
cycles, so pausing the collector for the duration of a job is safe —
reference counting reclaims everything as usual.
"""

from __future__ import annotations

import gc


class gc_paused:
    """Context manager: disable cyclic GC, restoring the previous state."""

    __slots__ = ("_was_enabled",)

    def __enter__(self) -> "gc_paused":
        self._was_enabled = gc.isenabled()
        gc.disable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._was_enabled:
            gc.enable()
