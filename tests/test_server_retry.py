"""ServerClient resilience: transparent GET retries and 429 backoff.

Regression surface for the PR 10 satellites on the job-server client:

* idempotent GETs retry transparently on connection-level transients
  (never on HTTP error statuses — those are real answers);
* ``submit()`` retries a 429 within the bounded budget, honoring the
  server's ``Retry-After`` hint;
* :attr:`ServerError.retry_after` falls back to the HTTP ``Retry-After``
  header when the 429 body is not JSON (proxies, plain-text error
  paths), so the hint survives non-JSON error responses.

The scripted HTTP server below answers each request from a directive
list, which keeps every scenario offline and deterministic.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.core.retry import RetryPolicy
from repro.server.client import ServerClient, ServerError


class ScriptedServer:
    """Answers requests from a directive list; then repeats the last one.

    Directives: ``("json", status, payload_dict)`` or
    ``("plain", status, body_str)``; both send ``Retry-After`` when
    ``retry_after`` is not None.
    """

    def __init__(self, directives):
        self.directives = list(directives)
        self.requests = []
        self._lock = threading.Lock()
        self._server = None
        self._thread = None

    def _next(self, method, path):
        with self._lock:
            self.requests.append((method, path))
            index = min(len(self.requests) - 1, len(self.directives) - 1)
            return self.directives[index]

    @property
    def url(self):
        return f"http://127.0.0.1:{self._server.server_address[1]}"

    def __enter__(self):
        script = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, format, *args):  # noqa: A002
                pass

            def _answer(self):
                kind, status, payload, retry_after = script._next(
                    self.command, self.path
                )
                if kind == "json":
                    body = json.dumps(payload).encode("utf-8")
                    content_type = "application/json"
                else:
                    body = str(payload).encode("utf-8")
                    content_type = "text/plain"
                self.send_response(status)
                if retry_after is not None:
                    self.send_header("Retry-After", str(retry_after))
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            do_GET = do_POST = _answer

        self._server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._server.daemon_threads = True
        self._server.block_on_close = False
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._server.shutdown()
        self._server.server_close()


NO_RETRY = RetryPolicy(max_retries=0)
FAST_RETRY = RetryPolicy(
    max_retries=2, backoff_seconds=0.001, max_backoff_seconds=0.01, jitter=0.0
)


class TestRetryAfterHeaderFallback:
    def test_json_body_hint_wins(self):
        directives = [
            ("json", 429, {"error": "queue is full", "retry_after": 7}, 9),
        ]
        with ScriptedServer(directives) as server:
            client = ServerClient(server.url, timeout=2.0, retry=NO_RETRY)
            with pytest.raises(ServerError) as excinfo:
                client.submit(dataset="Countries")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 7  # body beats header

    def test_non_json_429_falls_back_to_header(self):
        """The regression: a plain-text 429 (proxy, non-JSON error path)
        must still surface the Retry-After header as the hint."""
        directives = [("plain", 429, "Too Many Requests", 5)]
        with ScriptedServer(directives) as server:
            client = ServerClient(server.url, timeout=2.0, retry=NO_RETRY)
            with pytest.raises(ServerError) as excinfo:
                client.submit(dataset="Countries")
        error = excinfo.value
        assert error.status == 429
        assert error.payload == {"error": "Too Many Requests"}
        assert error.retry_after_header == "5"
        assert error.retry_after == 5

    def test_no_hint_anywhere_is_none(self):
        directives = [("plain", 429, "slow down", None)]
        with ScriptedServer(directives) as server:
            client = ServerClient(server.url, timeout=2.0, retry=NO_RETRY)
            with pytest.raises(ServerError) as excinfo:
                client.submit(dataset="Countries")
        assert excinfo.value.retry_after is None

    def test_unparseable_hint_is_none(self):
        error = ServerError("x", status=429, retry_after_header="soon")
        assert error.retry_after is None


class TestSubmitRetry:
    def test_429_then_success_retries_with_hint(self):
        queued = {"error": "queue is full", "retry_after": 0.001}
        accepted = {
            "job": {"id": "j1", "state": "queued"},
            "cache": "miss",
        }
        directives = [
            ("plain", 429, "Too Many Requests", 0.001),  # header-only hint
            ("json", 429, queued, 0.001),                # body hint
            ("json", 200, accepted, None),
        ]
        slept = []
        with ScriptedServer(directives) as server:
            client = ServerClient(
                server.url, timeout=2.0, retry=FAST_RETRY,
                sleeper=slept.append,
            )
            job = client.submit(dataset="Countries", support_threshold=5)
        assert job["id"] == "j1" and job["cache"] == "miss"
        assert client.submit_retries == 2
        # Both waits honored a hint: retry_after 0.001 truncates to int 0,
        # so the policy floor (its own backoff) is what gets slept.
        assert slept == [
            FAST_RETRY.delay_with_hint(1, key="POST /jobs", hint=0),
            FAST_RETRY.delay_with_hint(2, key="POST /jobs", hint=0),
        ]

    def test_budget_exhaustion_raises_the_429(self):
        directives = [("json", 429, {"error": "full", "retry_after": 0}, 0)]
        slept = []
        with ScriptedServer(directives) as server:
            client = ServerClient(
                server.url, timeout=2.0, retry=FAST_RETRY,
                sleeper=slept.append,
            )
            with pytest.raises(ServerError) as excinfo:
                client.submit(dataset="Countries")
        assert excinfo.value.status == 429
        assert client.submit_retries == 2  # budget spent, then raised
        assert len(slept) == 2

    def test_non_429_errors_are_not_retried(self):
        directives = [("json", 400, {"error": "unknown dataset"}, None)]
        with ScriptedServer(directives) as server:
            client = ServerClient(server.url, timeout=2.0, retry=FAST_RETRY)
            with pytest.raises(ServerError) as excinfo:
                client.submit(dataset="nope")
        assert excinfo.value.status == 400
        assert client.submit_retries == 0


class TestTransientGetRetry:
    def test_get_retries_connection_errors_then_succeeds(self):
        # A server that only exists for the final attempt cannot be
        # scripted with one listener; instead: dead port → budget spent.
        policy = RetryPolicy(max_retries=2, backoff_seconds=0.001, jitter=0.0)
        slept = []
        client = ServerClient(
            "http://127.0.0.1:9", timeout=0.2, retry=policy,
            sleeper=slept.append,
        )
        with pytest.raises(ServerError) as excinfo:
            client.healthz()
        assert excinfo.value.status is None  # connection-level, no HTTP answer
        assert client.transient_retries == 2
        assert slept == [
            policy.delay(1, key="GET /healthz"),
            policy.delay(2, key="GET /healthz"),
        ]

    def test_http_error_statuses_are_not_retried_on_get(self):
        directives = [("json", 404, {"error": "no such job"}, None)]
        with ScriptedServer(directives) as server:
            client = ServerClient(server.url, timeout=2.0, retry=FAST_RETRY)
            with pytest.raises(ServerError) as excinfo:
                client.job("missing")
        assert excinfo.value.status == 404
        assert client.transient_retries == 0
        assert len(server.requests) == 1  # exactly one attempt

    def test_post_connection_errors_are_not_retried(self):
        client = ServerClient(
            "http://127.0.0.1:9", timeout=0.2, retry=FAST_RETRY,
            sleeper=lambda _s: None,
        )
        with pytest.raises(ServerError):
            client.cancel("j1")  # POST: not idempotent, no transparent retry
        assert client.transient_retries == 0
