"""Tests for the one-shot dataset profiling report."""

import pytest

from repro.apps import profile_dataset
from repro.datasets import countries


@pytest.fixture(scope="module")
def profile():
    return profile_dataset(countries(scale=0.25).encode())


class TestProfileReport:
    def test_shape_statistics(self, profile):
        assert profile.triples > 0
        assert set(profile.distinct_terms) == {"s", "p", "o"}
        assert all(count > 0 for count in profile.distinct_terms.values())

    def test_uses_advisor_recommendation_by_default(self, profile):
        recommended = next(
            rec.h
            for rec in profile.threshold_report.recommendations
            if rec.use_case == "knowledge discovery"
        )
        assert profile.chosen_h == recommended

    def test_explicit_h_override(self):
        explicit = profile_dataset(countries(scale=0.1).encode(), h=3)
        assert explicit.chosen_h == 3
        assert explicit.discovery.support_threshold == 3

    def test_all_sections_populated(self, profile):
        assert profile.discovery.cinds
        assert profile.ranking
        assert profile.ontology_hints
        assert len(profile.ranking) == len(profile.discovery.cinds)

    def test_describe_renders_everything(self, profile):
        text = profile.describe(limit=3)
        for marker in (
            "profile of", "support-threshold analysis", "discovery at h=",
            "most meaningful CINDs", "ontology hints",
        ):
            assert marker in text

    def test_min_support_respected_in_apps(self, profile):
        for hint in profile.ontology_hints:
            assert hint.support >= profile.chosen_h
        for fact in profile.knowledge_facts:
            assert fact.support >= profile.chosen_h
