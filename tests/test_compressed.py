"""Tests for the compressed storage layer (repro.storage.compressed)."""

import pickle
import random
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.columnar import EncodedDataset, packed_column_nbytes
from repro.storage.compressed import (
    BitPackedColumn,
    CompressedDataset,
    FrozenPostingList,
    frequency_order,
    frequency_rank,
    remap_by_frequency,
)
from repro.storage.dictionary import TermDictionary
from repro.storage.vertical import (
    PostingOverflowError,
    VerticalPartitionStore,
    _pack_posting,
)
from tests.conftest import random_rdf
from tests.test_storage import UNICODE_TERMS


class TestFrozenPostingList:
    def test_roundtrip_preserves_order_and_values(self):
        rng = random.Random(3)
        values = [rng.randrange(0, 1 << 45) for _ in range(500)]
        frozen = FrozenPostingList.from_values(values)
        assert len(frozen) == len(values)
        assert list(frozen) == values
        assert frozen.tolist() == values

    def test_empty(self):
        frozen = FrozenPostingList.from_values([])
        assert len(frozen) == 0
        assert list(frozen) == []
        assert frozen.nbytes() == 0

    def test_near_consecutive_values_pack_to_about_a_byte_each(self):
        # The vertical store's posting lists are runs of adjacent packed
        # offsets; deltas of 1 must cost 1 byte, not 8.
        base = 7 << 32
        values = [base + offset for offset in range(1000)]
        frozen = FrozenPostingList.from_values(values)
        assert list(frozen) == values
        # first delta is the large base, every later one is a 1-byte varint
        assert frozen.nbytes() < 1000 + 16
        mutable = array("q", values)
        assert frozen.nbytes() < mutable.itemsize * len(mutable) / 4

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**62)))
    def test_roundtrip_any_values(self, values):
        assert list(FrozenPostingList.from_values(values)) == values


class TestBitPackedColumn:
    def test_roundtrip_iter_and_getitem(self):
        rng = random.Random(11)
        values = [rng.randrange(0, 1 << 13) for _ in range(3000)]
        column = BitPackedColumn.pack(values)
        assert len(column) == len(values)
        assert list(column) == values
        for index in range(0, len(values), 97):
            assert column[index] == values[index]
        assert column[-1] == values[-1]
        assert column[0] == values[0]

    def test_chunk_boundaries(self):
        # Exactly at, one below, and one above the packing chunk size.
        for count in (1023, 1024, 1025, 2048, 2049):
            values = list(range(count))
            column = BitPackedColumn.pack(values)
            assert list(column) == values
            assert column[count - 1] == count - 1

    def test_width_is_per_column_maximum(self):
        assert BitPackedColumn.pack([0, 1]).width == 1
        assert BitPackedColumn.pack([255]).width == 8
        assert BitPackedColumn.pack([256]).width == 9
        assert BitPackedColumn.pack([]).width == 1

    def test_nbytes_matches_estimator_and_beats_arrays(self):
        values = array("i", [random.Random(5).randrange(0, 128) for _ in range(4000)])
        column = BitPackedColumn.pack(values)
        assert column.nbytes() == packed_column_nbytes(values)
        assert column.nbytes() * 4 <= values.itemsize * len(values)

    def test_to_array_roundtrip(self):
        values = [5, 0, 31, 7]
        assert list(BitPackedColumn.pack(values).to_array("q")) == values

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            BitPackedColumn.pack([3, -1, 2])

    def test_rejects_too_narrow_width(self):
        with pytest.raises(ValueError):
            BitPackedColumn.pack([256], width=8)

    def test_index_out_of_range(self):
        column = BitPackedColumn.pack([1, 2, 3])
        with pytest.raises(IndexError):
            column[3]

    def test_pickle_roundtrip(self):
        values = [9, 8, 7, 6]
        clone = pickle.loads(pickle.dumps(BitPackedColumn.pack(values)))
        assert list(clone) == values

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**40)))
    def test_roundtrip_any_values(self, values):
        column = BitPackedColumn.pack(values)
        assert list(column) == values
        assert [column[i] for i in range(len(values))] == values


class TestFrequencyRemap:
    def test_order_is_by_descending_count_then_id(self):
        encoded = EncodedDataset.from_terms(
            [("a", "p", "b"), ("a", "p", "c"), ("a", "p", "b")],
            deduplicate=False,
        )
        # counts: a=3, p=3, b=2, c=1 -> order a(0), p(1), b(2), c(3)
        assert frequency_order(encoded) == [0, 1, 2, 3]
        encoded2 = EncodedDataset.from_terms(
            [("x", "p", "y"), ("z", "p", "y"), ("w", "p", "y")],
            deduplicate=False,
        )
        order = frequency_order(encoded2)
        decode = encoded2.dictionary.decode
        assert decode(order[0]) == "p" or decode(order[1]) == "p"
        assert {decode(order[0]), decode(order[1])} == {"p", "y"}

    def test_rank_inverts_order(self):
        encoded = random_rdf(7, n_triples=80).encode()
        order = frequency_order(encoded)
        rank = frequency_rank(order)
        assert all(order[rank[tid]] == tid for tid in range(len(order)))

    def test_remap_preserves_decoded_triples(self):
        encoded = random_rdf(13, n_triples=120).encode()
        remapped = remap_by_frequency(encoded)
        assert sorted(map(tuple, remapped.decode())) == sorted(
            map(tuple, encoded.decode())
        )
        # hot terms get small codes: the remapped columns' maxima shrink
        assert max(max(c) for c in remapped.columns) <= max(
            max(c) for c in encoded.columns
        )


class TestCompressedDataset:
    def test_iterates_original_ids(self):
        encoded = random_rdf(21, n_triples=150).encode()
        compressed = CompressedDataset.from_encoded(encoded)
        assert len(compressed) == len(encoded)
        assert list(compressed) == list(encoded)
        assert compressed.budget_cells == encoded.cells

    def test_nbytes_shrinks_and_roundtrips(self):
        encoded = random_rdf(22, n_triples=400).encode()
        compressed = CompressedDataset.from_encoded(encoded)
        assert compressed.nbytes() < encoded.nbytes()
        assert compressed.total_nbytes() > compressed.nbytes()
        restored = compressed.to_encoded()
        assert list(restored) == list(encoded)
        assert restored.dictionary is encoded.dictionary

    def test_predicate_column_is_narrow(self):
        # Frequency-ordered codes put the handful of predicates at the
        # very front of the id space, so the p column packs sub-byte.
        encoded = random_rdf(23, n_triples=500, n_predicates=4).encode()
        compressed = CompressedDataset.from_encoded(encoded)
        assert compressed.columns[1].width <= 4


class TestVerticalStoreFreeze:
    def test_freeze_preserves_every_match_answer(self):
        dataset = random_rdf(31, n_triples=200)
        store = VerticalPartitionStore.from_dataset(dataset)
        reference = sorted(store.match())
        probes = [
            dict(),
            dict(p="p1"),
            dict(s="s2"),
            dict(o="x1"),
            dict(s="x0", o="x1"),
            dict(s="s1", p="p0"),
            dict(p="p2", o="o3"),
            dict(s="s0", p="p1", o="o2"),
            dict(p="nope"),
        ]
        answers = [sorted(store.match(**probe)) for probe in probes]
        nbytes_before = store.nbytes()
        assert store.freeze() is store
        assert store.frozen
        assert sorted(store.match()) == reference
        for probe, answer in zip(probes, answers):
            assert sorted(store.match(**probe)) == answer
        assert store.nbytes() < nbytes_before
        assert len(store) == len(reference)
        # membership + cardinality still served off the frozen form
        assert reference[0] in store
        assert store.cardinality_estimate(p="p1") >= store.count(p="p1")

    def test_freeze_is_idempotent_and_thaw_restores(self):
        store = VerticalPartitionStore.from_dataset(random_rdf(32, n_triples=60))
        reference = sorted(store.match())
        store.freeze()
        store.freeze()
        store.thaw()
        assert not store.frozen
        assert sorted(store.match()) == reference
        store.thaw()  # idempotent too

    def test_add_after_freeze_thaws_transparently(self):
        store = VerticalPartitionStore.from_dataset(random_rdf(33, n_triples=40))
        store.freeze()
        assert store.add(("new-s", "new-p", "new-o"))
        assert not store.frozen
        assert ("new-s", "new-p", "new-o") in store


class TestPostingOverflowGuard:
    def test_boundary_values_pack_exactly(self):
        packed = _pack_posting(2**31 - 1, 2**32 - 1)
        assert packed >> 32 == 2**31 - 1
        assert packed & (2**32 - 1) == 2**32 - 1
        # still fits a signed 64-bit array slot
        array("q", [packed])

    @pytest.mark.parametrize(
        "p_id, offset",
        [(2**31, 0), (0, 2**32), (-1, 0), (0, -1)],
    )
    def test_out_of_range_raises_typed_error(self, p_id, offset):
        with pytest.raises(PostingOverflowError):
            _pack_posting(p_id, offset)

    def test_error_is_an_overflow_error(self):
        with pytest.raises(OverflowError):
            _pack_posting(2**31, 0)


class TestStorageBugfixes:
    def test_dictionary_nbytes_counts_utf8_bytes(self):
        dictionary = TermDictionary()
        for term in UNICODE_TERMS:
            dictionary.encode(term)
        payload = sum(
            len(term.encode("utf-8", "surrogatepass")) for term in UNICODE_TERMS
        )
        assert dictionary.nbytes() == payload + 16 * len(UNICODE_TERMS)
        # the multibyte terms must price above their character count
        chars = sum(len(term) for term in UNICODE_TERMS)
        assert payload > chars

    def test_dictionary_nbytes_is_incremental_and_dedup_aware(self):
        dictionary = TermDictionary()
        dictionary.encode("日本")
        first = dictionary.nbytes()
        dictionary.encode("日本")  # re-encoding does not double-charge
        assert dictionary.nbytes() == first

    def test_dictionary_pickle_keeps_payload(self):
        dictionary = TermDictionary()
        dictionary.encode_many(UNICODE_TERMS)
        clone = pickle.loads(pickle.dumps(dictionary))
        assert clone.nbytes() == dictionary.nbytes()

    def test_dictionary_old_pickle_state_recomputes_payload(self):
        dictionary = TermDictionary()
        dictionary.encode_many(UNICODE_TERMS)
        # a pickle written before _utf8_payload existed lacks the slot
        state = {
            "_term_to_id": dictionary._term_to_id,
            "_id_to_term": dictionary._id_to_term,
        }
        stale = TermDictionary.__new__(TermDictionary)
        stale.__setstate__(state)
        assert stale.nbytes() == dictionary.nbytes()

    @pytest.mark.parametrize("bad", [(-1, 0, 0), (0, -5, 0), (0, 0, -(2**40))])
    def test_append_ids_rejects_negative(self, bad):
        encoded = EncodedDataset()
        with pytest.raises(ValueError, match="non-negative"):
            encoded.append_ids(*bad)
        assert len(encoded) == 0

    def test_from_columns_validates(self):
        dictionary = TermDictionary()
        dictionary.encode_many(["a", "b", "c"])
        good = EncodedDataset.from_columns(
            array("i", [0, 1]), array("i", [2, 2]), array("i", [1, 0]),
            dictionary=dictionary,
        )
        assert len(good) == 2
        with pytest.raises(ValueError):
            EncodedDataset.from_columns(
                array("i", [0]), array("i", [0, 1]), array("i", [0]),
                dictionary=dictionary,
            )
        with pytest.raises(ValueError):
            EncodedDataset.from_columns(
                array("i", [0]), array("q", [0]), array("i", [0]),
                dictionary=dictionary,
            )
        with pytest.raises(ValueError):
            EncodedDataset.from_columns(
                array("i", [-1]), array("i", [0]), array("i", [0]),
                dictionary=dictionary,
            )
