"""Tests for the Cinderella baseline and the minimal-first strategy."""

import pytest

from repro.baselines import (
    Cinderella,
    CinderellaConfig,
    minimal_first_discover,
)
from repro.core.discovery import find_pertinent_cinds
from repro.dataflow.engine import SimulatedOutOfMemory
from repro.rdf.model import ALL_ATTRS, Attr, Dataset
from tests.conftest import ar_set, cind_set, random_rdf


@pytest.fixture
def overlapping():
    """Dataset in which object values flow back into subjects."""
    rows = [
        ("e1", "type", "Person"), ("e2", "type", "Person"),
        ("e3", "type", "City"), ("e4", "type", "City"),
        ("e1", "livesIn", "e3"), ("e2", "livesIn", "e4"),
        ("e1", "knows", "e2"), ("e2", "knows", "e1"),
        ("e3", "partOf", "e4"),
    ]
    return Dataset.from_tuples(rows, name="overlapping")


ALL_VARIANTS = [
    CinderellaConfig(h=1),
    CinderellaConfig(h=1, optimized=True),
    CinderellaConfig(h=1, backend="mysql"),
    CinderellaConfig(h=1, backend="mysql", optimized=True),
]


class TestCinderellaConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CinderellaConfig(h=0)
        with pytest.raises(ValueError):
            CinderellaConfig(backend="oracle")

    def test_variant_names(self):
        assert CinderellaConfig().variant_name == "Cin/Pos"
        assert CinderellaConfig(optimized=True).variant_name == "Cin*/Pos"
        assert CinderellaConfig(backend="mysql").variant_name == "Cin/My"
        assert (
            CinderellaConfig(backend="mysql", optimized=True).variant_name
            == "Cin*/My"
        )


class TestCinderellaSemantics:
    @pytest.mark.parametrize("config", ALL_VARIANTS, ids=lambda c: c.variant_name)
    def test_all_variants_agree(self, config, overlapping):
        baseline = Cinderella(CinderellaConfig(h=1)).discover(overlapping)
        other = Cinderella(config).discover(overlapping)
        assert set(other.inclusions) == set(baseline.inclusions)

    def test_inclusions_are_sound(self, overlapping):
        """Every reported inclusion must actually hold on the data."""
        result = Cinderella(CinderellaConfig(h=1)).discover(overlapping)
        triples = list(overlapping)
        for row in result.inclusions:
            ref_values = {t[int(row.ref_attr)] for t in triples}
            selected = [t for t in triples if row.condition.matches(t)]
            assert selected, "condition must be satisfiable"
            dep_values = {t[int(row.dep_attr)] for t in selected}
            assert dep_values <= ref_values
            assert len(dep_values) == row.support

    def test_completeness_against_bruteforce(self, overlapping):
        """Cinderella finds every condition its problem statement admits."""
        result = Cinderella(CinderellaConfig(h=2)).discover(overlapping)
        found = set(result.inclusions)
        triples = list(overlapping)
        from repro.core.conditions import conditions_of_triple

        all_conditions = set()
        for triple in triples:
            all_conditions.update(conditions_of_triple(triple))
        for dep_attr in ALL_ATTRS:
            for ref_attr in ALL_ATTRS:
                if dep_attr == ref_attr:
                    continue
                ref_values = {t[int(ref_attr)] for t in triples}
                for condition in all_conditions:
                    if dep_attr in condition.attrs:
                        continue
                    selected = [t for t in triples if condition.matches(t)]
                    if not selected:
                        continue
                    dep_values = {t[int(dep_attr)] for t in selected}
                    if len(dep_values) >= 2 and dep_values <= ref_values:
                        assert any(
                            row.dep_attr == dep_attr
                            and row.ref_attr == ref_attr
                            and row.condition == condition
                            for row in found
                        ), (dep_attr, ref_attr, condition)

    def test_support_threshold_filters(self, overlapping):
        low = Cinderella(CinderellaConfig(h=1)).discover(overlapping)
        high = Cinderella(CinderellaConfig(h=3)).discover(overlapping)
        assert set(high.inclusions) <= set(low.inclusions)
        assert all(row.support >= 3 for row in high.inclusions)

    def test_accepts_encoded_dataset(self, overlapping):
        encoded = overlapping.encode()
        result = Cinderella(CinderellaConfig(h=1)).discover(encoded)
        assert result.inclusions

    def test_render(self, overlapping):
        result = Cinderella(CinderellaConfig(h=1)).discover(overlapping)
        lines = result.render(3)
        assert lines and all("⊆" in line for line in lines)
        assert "Cin/Pos" in repr(result)


class TestCinderellaMemory:
    def test_standard_fails_under_tight_budget(self, overlapping):
        config = CinderellaConfig(h=1, memory_budget=5)
        with pytest.raises(SimulatedOutOfMemory):
            Cinderella(config).discover(overlapping)

    def test_optimized_survives_where_standard_fails(self):
        dataset = random_rdf(77, n_triples=120)
        budgets = []
        for optimized in (False, True):
            result = Cinderella(
                CinderellaConfig(h=4, optimized=optimized)
            ).discover(dataset)
            budgets.append(result.peak_memory_cells)
        standard_peak, optimized_peak = budgets
        assert optimized_peak < standard_peak
        # a budget between the two peaks kills standard but not optimized
        budget = (standard_peak + optimized_peak) // 2
        with pytest.raises(SimulatedOutOfMemory):
            Cinderella(
                CinderellaConfig(h=4, memory_budget=budget)
            ).discover(dataset)
        Cinderella(
            CinderellaConfig(h=4, optimized=True, memory_budget=budget)
        ).discover(dataset)

    def test_optimized_memory_shrinks_with_h(self):
        dataset = random_rdf(78, n_triples=150)
        low = Cinderella(CinderellaConfig(h=2, optimized=True)).discover(dataset)
        high = Cinderella(CinderellaConfig(h=10, optimized=True)).discover(dataset)
        assert high.peak_memory_cells <= low.peak_memory_cells


class TestMinimalFirst:
    @pytest.mark.parametrize("seed", range(8))
    def test_equals_rdfind_output(self, seed):
        encoded = random_rdf(seed + 500, n_triples=40).encode()
        reference = find_pertinent_cinds(encoded, support_threshold=2)
        alternative = minimal_first_discover(encoded, h=2)
        assert cind_set(reference) == cind_set(alternative)
        assert ar_set(reference) == ar_set(alternative)

    def test_table1(self, table1_encoded):
        reference = find_pertinent_cinds(table1_encoded, support_threshold=2)
        alternative = minimal_first_discover(table1_encoded, h=2)
        assert cind_set(reference) == cind_set(alternative)

    def test_does_more_group_scans(self, table1_encoded):
        """The strategy's defining cost: multiple passes over the groups."""
        result = minimal_first_discover(table1_encoded, h=2)
        passes = [
            stage.name
            for stage in result.metrics.stages
            if stage.name.endswith("/candidates")
        ]
        assert len(passes) == 4  # Ψ1:2, Ψ1:1, Ψ2:2, Ψ2:1
