"""The durable triple changelog: an append-only add/remove record stream.

Built directly on :mod:`repro.core.framing` — every record is one
CRC-framed JSON payload ``[seq, op, s, p, o]`` — so the changelog
inherits the spill/checkpoint subsystems' corruption detection for free.

Layout: a directory of *segments*.  The writer appends to exactly one
``seg-<firstseq>.open`` file; when it exceeds ``max_segment_bytes`` the
segment is *sealed*: flushed, fsynced, and atomically renamed to
``seg-<firstseq>.log`` (the tmp+fsync+rename idiom — the ``.open`` name
is the tmp name, so a reader can always tell the one possibly-torn file
from the immutable history).  Sequence numbers are monotonic from 1 and
independent of segmentation, so a checkpoint only needs to remember one
integer to replay the exact suffix.

Failure semantics on replay/recovery:

* a **truncated tail** in the open segment is the writer dying
  mid-append — the torn record is dropped with a warning and the log
  continues from the last complete record;
* **CRC damage anywhere**, or truncation inside a *sealed* segment,
  is bit rot and raises :class:`ChangeLogCorruptError` — silently
  skipping records would silently fork the maintained state.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import BinaryIO, Iterator, List, NamedTuple, Optional, Tuple

from repro.core.framing import (
    FrameCorruptionError,
    FrameTruncatedError,
    read_frame,
    write_frame,
)

__all__ = [
    "OP_ADD",
    "OP_REMOVE",
    "ChangeLog",
    "ChangeLogCorruptError",
    "ChangeLogError",
    "ChangeRecord",
]

OP_ADD = "add"
OP_REMOVE = "remove"
_OPS = (OP_ADD, OP_REMOVE)

_SEGMENT_PREFIX = "seg-"
_SEALED_SUFFIX = ".log"
_OPEN_SUFFIX = ".open"
_SEQ_DIGITS = 12


class ChangeLogError(ValueError):
    """Base class for changelog failures."""


class ChangeLogCorruptError(ChangeLogError):
    """A changelog segment is damaged beyond safe replay.

    Raised for CRC mismatches anywhere and for truncation inside a
    *sealed* segment (sealed segments are complete by construction, so a
    short one means lost bytes, not a torn append).
    """


class ChangeRecord(NamedTuple):
    """One durable update: a sequenced add or remove of a string triple."""

    seq: int
    op: str
    s: str
    p: str
    o: str

    @property
    def triple(self) -> Tuple[str, str, str]:
        return (self.s, self.p, self.o)


def _segment_name(first_seq: int, sealed: bool) -> str:
    suffix = _SEALED_SUFFIX if sealed else _OPEN_SUFFIX
    return f"{_SEGMENT_PREFIX}{first_seq:0{_SEQ_DIGITS}d}{suffix}"


def _parse_segment_name(name: str) -> Optional[Tuple[int, bool]]:
    """``(first_seq, sealed)`` for a segment file name, else ``None``."""
    if not name.startswith(_SEGMENT_PREFIX):
        return None
    stem, dot, suffix = name[len(_SEGMENT_PREFIX) :].rpartition(".")
    if not dot or not stem.isdigit():
        return None
    if "." + suffix == _SEALED_SUFFIX:
        return int(stem), True
    if "." + suffix == _OPEN_SUFFIX:
        return int(stem), False
    return None


def _decode_record(payload: bytes, path: str) -> ChangeRecord:
    try:
        seq, op, s, p, o = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ChangeLogCorruptError(
            f"{path}: malformed changelog record: {error}"
        ) from error
    if op not in _OPS:
        raise ChangeLogCorruptError(f"{path}: unknown changelog op {op!r}")
    return ChangeRecord(int(seq), op, str(s), str(p), str(o))


class ChangeLog:
    """Durable, replayable add/remove log over a directory of segments.

    ``fsync=True`` (the default) makes :meth:`sync` a real fsync; tests
    and benchmarks that only need process-crash durability can turn it
    off.  Appends themselves only buffer — callers group records into
    batches and :meth:`sync` at batch boundaries (the session does this).
    """

    def __init__(
        self,
        directory: str,
        max_segment_bytes: int = 4 << 20,
        fsync: bool = True,
    ) -> None:
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be positive")
        self.directory = directory
        self.max_segment_bytes = max_segment_bytes
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        self._segments: List[Tuple[int, str]] = []  # (first_seq, path), sealed
        self._open_first_seq = 1
        self._open_path = ""
        self._handle: Optional[BinaryIO] = None
        self.last_seq = 0
        self._recover()

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        sealed: List[Tuple[int, str]] = []
        open_segments: List[Tuple[int, str]] = []
        for name in os.listdir(self.directory):
            parsed = _parse_segment_name(name)
            if parsed is None:
                continue
            first_seq, is_sealed = parsed
            path = os.path.join(self.directory, name)
            (sealed if is_sealed else open_segments).append((first_seq, path))
        sealed.sort()
        open_segments.sort()
        if len(open_segments) > 1:
            raise ChangeLogCorruptError(
                f"{self.directory}: multiple open segments: "
                f"{[os.path.basename(p) for _seq, p in open_segments]}"
            )
        if open_segments and sealed and open_segments[0][0] <= sealed[-1][0]:
            raise ChangeLogCorruptError(
                f"{self.directory}: open segment predates a sealed one"
            )
        self._segments = sealed
        if sealed:
            # The open segment's name pins where its sequence starts; with
            # no open segment, scan the last sealed one for the tail seq.
            self.last_seq = self._scan_sealed_tail(sealed[-1])
        if open_segments:
            self._open_first_seq, self._open_path = open_segments[0]
            self.last_seq = self._recover_open_segment()
        else:
            self._open_first_seq = self.last_seq + 1
            self._open_path = os.path.join(
                self.directory, _segment_name(self._open_first_seq, sealed=False)
            )
        self._handle = open(self._open_path, "ab")

    def _scan_sealed_tail(self, segment: Tuple[int, str]) -> int:
        first_seq, path = segment
        last = first_seq - 1
        for record in self._iter_segment(path, sealed=True):
            last = record.seq
        return last

    def _recover_open_segment(self) -> int:
        """Drop a torn tail record, truncate the file, return the tail seq."""
        last = self._open_first_seq - 1
        good_offset = 0
        with open(self._open_path, "rb") as stream:
            while True:
                try:
                    payload = read_frame(stream)
                except FrameTruncatedError:
                    warnings.warn(
                        f"{self._open_path}: dropping truncated tail record "
                        f"after seq {last} (writer died mid-append)",
                        stacklevel=2,
                    )
                    break
                except FrameCorruptionError as error:
                    raise ChangeLogCorruptError(
                        f"{self._open_path}: {error}"
                    ) from error
                if payload is None:
                    break
                record = _decode_record(payload, self._open_path)
                self._check_seq(record, last)
                last = record.seq
                good_offset = stream.tell()
        if good_offset != os.path.getsize(self._open_path):
            with open(self._open_path, "r+b") as stream:
                stream.truncate(good_offset)
        return last

    def _check_seq(self, record: ChangeRecord, previous: int) -> None:
        if record.seq != previous + 1:
            raise ChangeLogCorruptError(
                f"{self.directory}: sequence gap — record {record.seq} "
                f"follows {previous}"
            )

    # -- appending -----------------------------------------------------

    def append(self, op: str, s: str, p: str, o: str) -> int:
        """Append one record; returns its sequence number (not yet synced)."""
        if op not in _OPS:
            raise ValueError(f"unknown changelog op {op!r} (use add/remove)")
        if self._handle is None:
            raise ChangeLogError("changelog is closed")
        seq = self.last_seq + 1
        payload = json.dumps(
            [seq, op, s, p, o], ensure_ascii=False, separators=(",", ":")
        ).encode("utf-8")
        write_frame(self._handle, payload)
        self.last_seq = seq
        if self._handle.tell() >= self.max_segment_bytes:
            self.rotate()
        return seq

    def sync(self) -> None:
        """Flush (and fsync, unless disabled) the open segment."""
        if self._handle is None:
            return
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def rotate(self) -> None:
        """Seal the open segment and start a fresh one.

        Sealing is the durability point: flush + fsync, then an atomic
        rename from the ``.open`` (tmp) name to the immutable ``.log``
        name.  An empty open segment is left alone.
        """
        if self._handle is None or self._handle.tell() == 0:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        sealed_path = os.path.join(
            self.directory, _segment_name(self._open_first_seq, sealed=True)
        )
        os.replace(self._open_path, sealed_path)
        self._segments.append((self._open_first_seq, sealed_path))
        self._open_first_seq = self.last_seq + 1
        self._open_path = os.path.join(
            self.directory, _segment_name(self._open_first_seq, sealed=False)
        )
        self._handle = open(self._open_path, "ab")

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ChangeLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- replay --------------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[ChangeRecord]:
        """Yield every record with ``seq > after_seq`` in order.

        Whole segments strictly before the offset are skipped via their
        file names — replaying from a checkpoint reads only the suffix.
        """
        self.sync()
        segments = [(seq, path, True) for seq, path in self._segments]
        segments.append((self._open_first_seq, self._open_path, False))
        previous = after_seq
        for index, (first_seq, path, is_sealed) in enumerate(segments):
            next_first = (
                segments[index + 1][0] if index + 1 < len(segments) else None
            )
            if next_first is not None and next_first - 1 <= after_seq:
                continue  # the whole segment is at or before the offset
            for record in self._iter_segment(path, sealed=is_sealed):
                if record.seq <= after_seq:
                    continue
                self._check_seq(record, previous)
                previous = record.seq
                yield record

    def _iter_segment(self, path: str, sealed: bool) -> Iterator[ChangeRecord]:
        if not os.path.exists(path):
            return
        with open(path, "rb") as stream:
            while True:
                try:
                    payload = read_frame(stream)
                except FrameTruncatedError as error:
                    if sealed:
                        raise ChangeLogCorruptError(
                            f"{path}: truncated sealed segment: {error}"
                        ) from error
                    warnings.warn(
                        f"{path}: dropping truncated tail record on replay",
                        stacklevel=2,
                    )
                    return
                except FrameCorruptionError as error:
                    raise ChangeLogCorruptError(f"{path}: {error}") from error
                if payload is None:
                    return
                yield _decode_record(payload, path)

    # -- introspection -------------------------------------------------

    @property
    def segment_count(self) -> int:
        """Sealed segments plus the open one."""
        return len(self._segments) + 1

    def nbytes(self) -> int:
        """Total on-disk size of every segment."""
        if self._handle is not None:
            self._handle.flush()
        total = sum(
            os.path.getsize(path)
            for _seq, path in self._segments
            if os.path.exists(path)
        )
        if os.path.exists(self._open_path):
            total += os.path.getsize(self._open_path)
        return total

    def __repr__(self) -> str:
        return (
            f"<ChangeLog {self.directory!r}: seq {self.last_seq}, "
            f"{self.segment_count} segments>"
        )
