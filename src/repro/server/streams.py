"""Streams: the server front door onto :mod:`repro.streaming`.

Same layering discipline as jobs (routes → service/manager → durable
state): the routes call one :class:`StreamManager` method per endpoint,
and all durable state lives in per-stream :class:`StreamSession`
directories under ``<root>/``::

    <root>/
        st-000001/
            stream.json     the stream's config (h, scope, compact cadence)
            changelog/      the durable add/remove log
            checkpoints/    compaction snapshots

A restarted server reopens every stream directory it finds — recovery is
the session's own checkpoint-plus-suffix replay, so a server bounce
costs a changelog suffix, not a rebuild.

Endpoints (wired in :mod:`repro.server.routes`)::

    GET  /streams                 all stream summaries
    POST /streams                 create ({"support_threshold", "scope"?,
                                  "compact_every"?}) -> 201 + summary
    GET  /streams/<id>            status incl. MaintenanceStats.to_dict()
    POST /streams/<id>/deltas     apply {"deltas": [{"op","s","p","o"}, ...]}
    GET  /streams/<id>/results    pertinent CINDs + ARs; ?raw=1 returns the
                                  batch-identical result document bytes
    POST /streams/<id>/compact    checkpoint now (bounds restart replay)
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

from repro.core.conditions import ConditionScope
from repro.server.service import BadRequestError, UnknownJobError
from repro.streaming.session import StreamSession

__all__ = ["StreamManager"]

_META_NAME = "stream.json"
#: Delta batches beyond this are rejected (mirrors MAX_BODY_BYTES intent).
MAX_DELTAS_PER_BATCH = 100_000
#: Default compaction cadence for server-managed streams.
DEFAULT_COMPACT_EVERY = 10_000

_SCOPES = {"full": ConditionScope.full, "predicates": ConditionScope.predicates_only}


class StreamManager:
    """Owns every live :class:`StreamSession` under one root directory."""

    def __init__(self, root_dir: str) -> None:
        self.root_dir = root_dir
        os.makedirs(root_dir, exist_ok=True)
        self._lock = threading.RLock()
        self._sessions: Dict[str, StreamSession] = {}
        self._stream_locks: Dict[str, threading.Lock] = {}
        self._next_index = 1
        self._recover()

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        for name in sorted(os.listdir(self.root_dir)):
            meta_path = os.path.join(self.root_dir, name, _META_NAME)
            if not os.path.isfile(meta_path):
                continue
            with open(meta_path, "r", encoding="utf-8") as stream:
                meta = json.load(stream)
            self._sessions[name] = self._open_session(name, meta)
            self._stream_locks[name] = threading.Lock()
            index = int(name.rsplit("-", 1)[-1])
            self._next_index = max(self._next_index, index + 1)

    def _open_session(self, stream_id: str, meta: Dict[str, Any]) -> StreamSession:
        return StreamSession(
            os.path.join(self.root_dir, stream_id),
            h=int(meta["support_threshold"]),
            scope=_SCOPES[meta.get("scope", "full")](),
            compact_every=int(meta.get("compact_every", DEFAULT_COMPACT_EVERY)),
        )

    # -- lifecycle -----------------------------------------------------

    def create(self, body: Dict[str, Any]) -> Dict[str, Any]:
        h = body.get("support_threshold")
        if not isinstance(h, int) or isinstance(h, bool) or h < 1:
            raise BadRequestError(
                f"support_threshold must be a positive integer, got {h!r}"
            )
        scope_name = body.get("scope", "full")
        if scope_name not in _SCOPES:
            raise BadRequestError(
                f"unknown scope {scope_name!r} (use 'full' or 'predicates')"
            )
        compact_every = body.get("compact_every", DEFAULT_COMPACT_EVERY)
        if not isinstance(compact_every, int) or compact_every < 0:
            raise BadRequestError(
                f"compact_every must be a non-negative integer, got {compact_every!r}"
            )
        meta = {
            "support_threshold": h,
            "scope": scope_name,
            "compact_every": compact_every,
        }
        with self._lock:
            stream_id = f"st-{self._next_index:06d}"
            self._next_index += 1
            stream_dir = os.path.join(self.root_dir, stream_id)
            os.makedirs(stream_dir, exist_ok=True)
            meta_path = os.path.join(stream_dir, _META_NAME)
            tmp_path = meta_path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(dict(meta, id=stream_id), handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, meta_path)
            self._sessions[stream_id] = self._open_session(stream_id, meta)
            self._stream_locks[stream_id] = threading.Lock()
        return self.status(stream_id)

    def _session(self, stream_id: str) -> StreamSession:
        session = self._sessions.get(stream_id)
        if session is None:
            raise UnknownJobError(f"no stream {stream_id!r}")
        return session

    def _locked(self, stream_id: str) -> threading.Lock:
        with self._lock:
            lock = self._stream_locks.get(stream_id)
        if lock is None:
            raise UnknownJobError(f"no stream {stream_id!r}")
        return lock

    # -- endpoint bodies -------------------------------------------------

    def list_streams(self) -> List[Dict[str, Any]]:
        with self._lock:
            ids = sorted(self._sessions)
        return [self.status(stream_id) for stream_id in ids]

    def status(self, stream_id: str) -> Dict[str, Any]:
        session = self._session(stream_id)
        with self._locked(stream_id):
            return dict(session.status(), id=stream_id)

    def apply_deltas(self, stream_id: str, body: Dict[str, Any]) -> Dict[str, Any]:
        deltas = body.get("deltas")
        if not isinstance(deltas, list):
            raise BadRequestError("body must carry a 'deltas' list")
        if len(deltas) > MAX_DELTAS_PER_BATCH:
            raise BadRequestError(
                f"batch of {len(deltas)} deltas exceeds "
                f"{MAX_DELTAS_PER_BATCH}"
            )
        for index, delta in enumerate(deltas):
            if not isinstance(delta, dict):
                raise BadRequestError(f"delta #{index} is not an object")
            op = delta.get("op")
            if op not in ("add", "remove"):
                raise BadRequestError(
                    f"delta #{index} has unknown op {op!r} (use add/remove)"
                )
            for field in ("s", "p", "o"):
                if not isinstance(delta.get(field), str):
                    raise BadRequestError(
                        f"delta #{index} is missing string field {field!r}"
                    )
        session = self._session(stream_id)
        with self._locked(stream_id):
            counts = session.apply_batch(deltas)
            return dict(counts, id=stream_id, last_seq=session.applied_seq)

    def results(self, stream_id: str) -> Dict[str, Any]:
        session = self._session(stream_id)
        with self._locked(stream_id):
            cinds = session.pertinent_cinds()
            dictionary = session.maintainer.dictionary
            return {
                "id": stream_id,
                "support_threshold": session.h,
                "triples": session.maintainer.triples,
                "last_seq": session.applied_seq,
                "count": len(cinds),
                "cinds": [sc.render(dictionary) for sc in cinds],
            }

    def raw_results(self, stream_id: str) -> bytes:
        """The batch-identical result document (diffable vs ``discover -o``)."""
        session = self._session(stream_id)
        with self._locked(stream_id):
            return session.document_json().encode("utf-8")

    def compact(self, stream_id: str) -> Dict[str, Any]:
        session = self._session(stream_id)
        with self._locked(stream_id):
            session.compact()
        return self.status(stream_id)

    def close(self) -> None:
        with self._lock:
            for session in self._sessions.values():
                session.close()
            self._sessions.clear()
            self._stream_locks.clear()
