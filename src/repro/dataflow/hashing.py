"""Process-stable hashing for shuffle routing and spill-run sort keys.

Shuffles are routed by :func:`stable_hash`, a deterministic 64-bit hash
over the key types the pipeline uses.  Builtin ``hash`` would not do: it
is randomized per process for strings (``PYTHONHASHSEED``), which would
make partition assignment differ between pool workers and between runs.

The same hash doubles as the *sort key* of the spilling shuffle's run
files (:mod:`repro.dataflow.shuffle`): sorted runs from any process merge
into the same global order, which is what makes spilled execution
deterministic and byte-identical to the in-memory path.

This lives in its own module (rather than in :mod:`repro.dataflow.engine`,
which re-exports it) so the shuffle subsystem can import it without a
circular dependency on the engine.
"""

from __future__ import annotations

import hashlib
from typing import Any

_MASK64 = (1 << 64) - 1


def _mix_int(value: int) -> int:
    """splitmix64 finalizer — a cheap, well-mixed 64-bit int hash."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def stable_hash(key: Any) -> int:
    """A 64-bit hash that is stable across processes and interpreter runs.

    Covers the key types the discovery pipeline shuffles on: ints (term
    ids, :class:`~repro.rdf.model.Attr`), strings/bytes (via BLAKE2b —
    builtin ``hash`` is randomized for these), and (nested) tuples and
    frozensets thereof (conditions, captures, and NamedTuples of both).
    Unknown types fall back to builtin ``hash`` — acceptable only for
    types whose hash is process-invariant.
    """
    if key is None:
        return 0x9E3779B97F4A7C15
    if isinstance(key, bool):
        return _mix_int(2 if key else 1)
    if isinstance(key, int):
        return _mix_int(key)
    if isinstance(key, str):
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")
    if isinstance(key, bytes):
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big")
    if isinstance(key, tuple):
        accumulator = _mix_int(0x1000003 + len(key))
        for element in key:
            accumulator = _mix_int(accumulator ^ stable_hash(element))
        return accumulator
    if isinstance(key, frozenset):
        accumulator = 0
        for element in key:  # XOR: order-independent
            accumulator ^= stable_hash(element)
        return _mix_int(accumulator ^ len(key))
    return hash(key) & _MASK64


def hash_partition(key: Any, parallelism: int) -> int:
    """The reduce partition ``key`` is routed to."""
    return stable_hash(key) % parallelism
