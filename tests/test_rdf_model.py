"""Tests for the RDF data model (terms, triples, datasets, dictionary)."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf.model import (
    ALL_ATTRS,
    Attr,
    Dataset,
    EncodedTriple,
    TermDictionary,
    Triple,
)


class TestAttr:
    def test_values_are_spo_order(self):
        assert [int(a) for a in (Attr.S, Attr.P, Attr.O)] == [0, 1, 2]

    def test_symbols(self):
        assert [a.symbol for a in ALL_ATTRS] == ["s", "p", "o"]

    @pytest.mark.parametrize("symbol,expected", [
        ("s", Attr.S), ("p", Attr.P), ("o", Attr.O),
        ("S", Attr.S), ("O", Attr.O),
    ])
    def test_from_symbol(self, symbol, expected):
        assert Attr.from_symbol(symbol) is expected

    def test_from_symbol_rejects_garbage(self):
        with pytest.raises(ValueError):
            Attr.from_symbol("x")

    @pytest.mark.parametrize("attr,others", [
        (Attr.S, (Attr.P, Attr.O)),
        (Attr.P, (Attr.S, Attr.O)),
        (Attr.O, (Attr.S, Attr.P)),
    ])
    def test_others(self, attr, others):
        assert Attr.others(attr) == others


class TestTriple:
    def test_get_projects_by_attr(self):
        triple = Triple("a", "b", "c")
        assert triple.get(Attr.S) == "a"
        assert triple.get(Attr.P) == "b"
        assert triple.get(Attr.O) == "c"

    def test_str(self):
        assert str(Triple("a", "b", "c")) == "(a, b, c)"

    def test_is_tuple(self):
        assert Triple("a", "b", "c") == ("a", "b", "c")


class TestTermDictionary:
    def test_encode_assigns_dense_ids(self):
        dictionary = TermDictionary()
        assert dictionary.encode("a") == 0
        assert dictionary.encode("b") == 1
        assert dictionary.encode("a") == 0
        assert len(dictionary) == 2

    def test_decode_roundtrip(self):
        dictionary = TermDictionary()
        for term in ("x", "y", "z"):
            assert dictionary.decode(dictionary.encode(term)) == term

    def test_contains(self):
        dictionary = TermDictionary()
        dictionary.encode("a")
        assert "a" in dictionary
        assert "b" not in dictionary

    def test_encode_existing_raises_for_unknown(self):
        with pytest.raises(KeyError):
            TermDictionary().encode_existing("missing")

    def test_decode_unknown_id_raises(self):
        with pytest.raises(IndexError):
            TermDictionary().decode(5)

    def test_triple_roundtrip(self):
        dictionary = TermDictionary()
        triple = Triple("s", "p", "o")
        encoded = dictionary.encode_triple(triple)
        assert isinstance(encoded, EncodedTriple)
        assert dictionary.decode_triple(encoded) == triple

    def test_terms_in_id_order(self):
        dictionary = TermDictionary()
        for term in ("c", "a", "b"):
            dictionary.encode(term)
        assert list(dictionary.terms()) == ["c", "a", "b"]

    @given(st.lists(st.text(max_size=10)))
    def test_encoding_is_bijective(self, terms):
        dictionary = TermDictionary()
        ids = [dictionary.encode(term) for term in terms]
        assert [dictionary.decode(i) for i in ids] == terms
        assert len(dictionary) == len(set(terms))


class TestDataset:
    def test_deduplicates(self):
        ds = Dataset.from_tuples([("a", "b", "c"), ("a", "b", "c")])
        assert len(ds) == 1

    def test_preserves_insertion_order(self):
        rows = [("a", "p", "1"), ("b", "p", "2"), ("c", "p", "3")]
        ds = Dataset.from_tuples(rows)
        assert [tuple(t) for t in ds] == rows

    def test_add_reports_novelty(self):
        ds = Dataset()
        assert ds.add(Triple("a", "b", "c")) is True
        assert ds.add(Triple("a", "b", "c")) is False

    def test_update_counts_new(self):
        ds = Dataset.from_tuples([("a", "b", "c")])
        added = ds.update([Triple("a", "b", "c"), Triple("x", "y", "z")])
        assert added == 1

    def test_contains(self):
        ds = Dataset.from_tuples([("a", "b", "c")])
        assert Triple("a", "b", "c") in ds
        assert Triple("x", "y", "z") not in ds

    def test_equality_is_set_based(self):
        a = Dataset.from_tuples([("a", "b", "c"), ("d", "e", "f")])
        b = Dataset.from_tuples([("d", "e", "f"), ("a", "b", "c")])
        assert a == b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Dataset())

    def test_values_counter(self):
        ds = Dataset.from_tuples([("a", "p", "1"), ("a", "p", "2"), ("b", "q", "1")])
        assert ds.values(Attr.S) == {"a": 2, "b": 1}
        assert ds.distinct_values(Attr.O) == {"1", "2"}

    def test_sample_is_reproducible(self):
        ds = Dataset.from_tuples([(f"s{i}", "p", f"o{i}") for i in range(50)])
        assert ds.sample(10, seed=1) == ds.sample(10, seed=1)
        assert len(ds.sample(10, seed=1)) == 10

    def test_sample_larger_than_dataset_returns_all(self):
        ds = Dataset.from_tuples([("a", "b", "c")])
        assert len(ds.sample(10)) == 1

    def test_head(self):
        ds = Dataset.from_tuples([(f"s{i}", "p", "o") for i in range(5)])
        assert len(ds.head(3)) == 3

    def test_repr_mentions_name_and_size(self):
        ds = Dataset.from_tuples([("a", "b", "c")], name="demo")
        assert "demo" in repr(ds)
        assert "1" in repr(ds)


class TestEncodedDataset:
    def test_encode_decode_roundtrip(self, table1_dataset):
        encoded = table1_dataset.encode()
        assert encoded.decode() == table1_dataset

    def test_shared_dictionary(self):
        a = Dataset.from_tuples([("a", "p", "x")])
        dictionary = TermDictionary()
        ea = a.encode(dictionary)
        b = Dataset.from_tuples([("a", "q", "x")])
        eb = b.encode(dictionary)
        assert ea.triples[0].s == eb.triples[0].s
        assert ea.triples[0].o == eb.triples[0].o

    def test_len_and_iter(self, table1_encoded):
        assert len(table1_encoded) == 8
        assert len(list(table1_encoded)) == 8

    def test_values(self, table1_encoded):
        counts = table1_encoded.values(Attr.P)
        assert sorted(counts.values(), reverse=True) == [3, 3, 2]

    def test_repr(self, table1_encoded):
        assert "8 triples" in repr(table1_encoded)

    @given(st.lists(
        st.tuples(st.text(max_size=5), st.text(max_size=5), st.text(max_size=5)),
        max_size=30,
    ))
    def test_roundtrip_random(self, rows):
        ds = Dataset.from_tuples(rows)
        assert ds.encode().decode() == ds
