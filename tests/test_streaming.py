"""Tests for StreamingRDFind: add/remove maintenance vs the batch oracle."""

import json
import random

import pytest

from repro.core.cind import decode_cind
from repro.core.discovery import RDFind, RDFindConfig
from repro.core.serialization import result_to_dict
from repro.core.validation import NaiveProfiler
from repro.streaming import DeltaStore, StreamingRDFind
from tests.conftest import random_rdf


def oracle_decoded(dataset, h):
    """Ground truth under the maintainer's semantics (no AR rewriting)."""
    encoded = dataset.encode()
    profiler = NaiveProfiler(encoded, prune_ar_equivalents=False)
    return {
        (decode_cind(sc.cind, encoded.dictionary), sc.support)
        for sc in profiler.pertinent_cinds(h)
    }


def maintained_decoded(maintainer):
    return {
        (decode_cind(sc.cind, maintainer.dictionary), sc.support)
        for sc in maintainer.pertinent_cinds()
    }


def mixed_ops(seed, n_triples=40, n_ops=110):
    """An interleaved add/remove script with duplicate edges thrown in."""
    rng = random.Random(seed)
    pool = list(random_rdf(seed, n_triples=n_triples))
    live = []
    ops = []
    for _ in range(n_ops):
        if live and rng.random() < 0.4:
            triple = rng.choice(live)
            live.remove(triple)
            ops.append(("remove", triple))
            if rng.random() < 0.15:  # duplicate remove
                ops.append(("remove", triple))
        else:
            triple = rng.choice(pool)
            if triple not in live:
                live.append(triple)
            ops.append(("add", triple))
    return ops


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("h", [1, 2])
    def test_every_state_matches_oracle(self, seed, h):
        """After *every* add/remove, the maintainer equals a fresh batch run
        on the materialized dataset — the ISSUE's correctness bar."""
        maintainer = StreamingRDFind(h=h)
        for op, triple in mixed_ops(seed + 2000, n_triples=20, n_ops=60):
            maintainer.apply(op, triple)
            expected = oracle_decoded(maintainer.as_dataset(), h)
            assert maintained_decoded(maintainer) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_final_state_matches_oracle(self, seed):
        maintainer = StreamingRDFind(h=2)
        for op, triple in mixed_ops(seed + 2100):
            maintainer.apply(op, triple)
        assert maintained_decoded(maintainer) == oracle_decoded(
            maintainer.as_dataset(), 2
        )

    def test_remove_everything_leaves_empty_state(self):
        maintainer = StreamingRDFind(h=1)
        triples = list(random_rdf(2200, n_triples=25))
        for triple in triples:
            maintainer.add(triple)
        for triple in triples:
            maintainer.remove(triple)
        assert maintainer.triples == 0
        assert maintainer.pertinent_cinds() == []
        assert maintainer.broad_cinds() == {}


class TestBatchByteIdentity:
    @pytest.mark.parametrize("seed", range(5))
    def test_document_matches_batch_pipeline(self, seed):
        """result_document() must serialize byte-identically to the full
        batch pipeline run on the materialized dataset."""
        maintainer = StreamingRDFind(h=2)
        for op, triple in mixed_ops(seed + 2300):
            maintainer.apply(op, triple)
        batch = RDFind(RDFindConfig(support_threshold=2)).discover(
            maintainer.materialize()
        )
        expected = json.dumps(
            result_to_dict(batch), ensure_ascii=False, indent=1
        )
        assert maintainer.document_json() == expected


class TestThresholdChurn:
    """Satellite 3: a condition oscillating across h must activate,
    backfill, deactivate, and reactivate correctly."""

    def test_oscillation_across_threshold(self):
        maintainer = StreamingRDFind(h=2)

        def rendered():
            return {maintainer.render(sc) for sc in maintainer.pertinent_cinds()}

        maintainer.add(("a", "p", "x"))  # p=p freq 1: inactive
        maintainer.add(("a", "q", "x"))
        maintainer.add(("b", "q", "y"))  # p=q active at 2
        assert not any("p=p" in line for line in rendered())

        maintainer.add(("b", "p", "y"))  # p=p crosses h: backfill picks up 'a'
        assert "(s, p=p) ⊆ (s, p=q)  [support=2]" in rendered()

        deactivations = maintainer.stats.conditions_deactivated
        assert maintainer.remove(("b", "p", "y")) is True  # p=p back below h
        assert maintainer.stats.conditions_deactivated > deactivations
        assert not any("p=p" in line for line in rendered())

        maintainer.add(("b", "p", "y"))  # reactivate: backfill again
        assert "(s, p=p) ⊆ (s, p=q)  [support=2]" in rendered()

        # The whole dance must still agree with the oracle.
        assert maintained_decoded(maintainer) == oracle_decoded(
            maintainer.as_dataset(), 2
        )

    def test_duplicate_add_and_remove_edges(self):
        maintainer = StreamingRDFind(h=1)
        assert maintainer.add(("a", "b", "c")) is True
        assert maintainer.add(("a", "b", "c")) is False
        assert maintainer.stats.duplicates_ignored == 1
        assert maintainer.remove(("a", "b", "c")) is True
        assert maintainer.remove(("a", "b", "c")) is False
        assert maintainer.stats.removals_ignored == 1
        assert maintainer.remove(("never", "was", "here")) is False
        assert maintainer.stats.removals_ignored == 2
        assert maintainer.triples == 0

    def test_remove_then_oracle_on_repeated_churn(self):
        """Hammer one condition across the boundary many times."""
        maintainer = StreamingRDFind(h=2)
        maintainer.add(("a", "p", "x"))
        maintainer.add(("a", "q", "x"))
        maintainer.add(("b", "q", "y"))
        for _ in range(5):
            maintainer.add(("b", "p", "y"))
            maintainer.remove(("b", "p", "y"))
        assert maintained_decoded(maintainer) == oracle_decoded(
            maintainer.as_dataset(), 2
        )


class TestStatsAndStore:
    def test_stats_to_dict_matches_fields(self):
        """Satellite 2: to_dict() exposes every counter, StageMetrics-style."""
        maintainer = StreamingRDFind(h=1)
        maintainer.add(("a", "b", "c"))
        maintainer.remove(("a", "b", "c"))
        stats = maintainer.stats.to_dict()
        assert stats["triples_added"] == 1
        assert stats["triples_removed"] == 1
        assert set(stats) >= {
            "triples_added",
            "triples_removed",
            "duplicates_ignored",
            "removals_ignored",
            "conditions_activated",
            "conditions_deactivated",
            "evidences_applied",
            "evidences_retracted",
            "dependents_recomputed",
            "compactions",
            "queries",
        }
        assert all(isinstance(value, int) for value in stats.values())

    def test_delta_store_retracts_terms(self):
        store = DeltaStore()
        store.add(("a", "b", "c"))
        store.add(("a", "b", "d"))
        assert store.remove(("a", "b", "c")) is not None
        live = store.materialize("live")
        assert len(live) == 1
        decoded = live.decode()
        assert list(decoded) == [("a", "b", "d")]

    def test_as_dataset_roundtrip(self):
        dataset = random_rdf(2400, n_triples=25)
        maintainer = StreamingRDFind(h=1)
        maintainer.add_all(dataset)
        assert maintainer.as_dataset() == dataset

    def test_validation_and_repr(self):
        with pytest.raises(ValueError):
            StreamingRDFind(h=0)
        maintainer = StreamingRDFind(h=2)
        maintainer.add(("a", "b", "c"))
        assert "1 live triples" in repr(maintainer).replace(",", "")
