"""Countries: the paper's smallest evaluation dataset (~5.6k triples).

A geographic dataset of countries, their capitals, regions, currencies,
languages, and memberships.  Planted CIND-bearing structure:

* every subject of ``capital`` is a country (domain CIND);
* every object of ``capital`` is typed ``City`` (range CIND);
* all members of the EU lie in the Europe region (knowledge-discovery
  style CIND with moderate support);
* all eurozone members use the euro *and* are EU members (nested
  conditions).
"""

from __future__ import annotations

from repro.datasets.synth import GraphBuilder, entity_names, scaled
from repro.rdf.model import Dataset, EncodedDataset

REGIONS = ("Europe", "Asia", "Africa", "Americas", "Oceania")

_SUBREGIONS = {
    "Europe": ("WesternEurope", "EasternEurope", "NorthernEurope", "SouthernEurope"),
    "Asia": ("EasternAsia", "SouthernAsia", "CentralAsia", "WesternAsia"),
    "Africa": ("NorthernAfrica", "WesternAfrica", "EasternAfrica", "SouthernAfrica"),
    "Americas": ("NorthernAmerica", "SouthCentralAmerica", "Caribbean"),
    "Oceania": ("AustraliaNZ", "Melanesia", "Polynesia"),
}


def countries(scale: float = 1.0, seed: int = 101, encoded: bool = False) -> "Dataset | EncodedDataset":
    """Generate the Countries dataset (paper size ≈ 5,563 triples at scale 1)."""
    builder = GraphBuilder("Countries", seed)
    rng = builder.rng

    n_countries = scaled(335, scale, minimum=10)
    country_uris = entity_names("country", n_countries)
    city_uris = entity_names("city", n_countries)
    currencies = entity_names("currency", max(4, n_countries // 2))
    languages = entity_names("language", max(4, n_countries // 3))
    organizations = entity_names("org", 12)

    currency_chooser = builder.zipf(currencies, alpha=0.9)
    language_chooser = builder.zipf(languages, alpha=0.9)

    region_of = {}
    for index, country in enumerate(country_uris):
        region = REGIONS[index % len(REGIONS)]
        region_of[country] = region
        capital = city_uris[index]

        builder.add_type(country, "Country")
        builder.add(country, "name", f'"Country {index}"')
        builder.add(country, "capital", capital)
        builder.add(country, "region", region)
        builder.add(country, "subregion", builder.pick(_SUBREGIONS[region]))
        builder.add(country, "currency", currency_chooser.choice())
        builder.add(country, "officialLanguage", language_chooser.choice())
        builder.add(country, "population", f'"{rng.randint(10_000, 1_400_000_000)}"')

        builder.add_type(capital, "City")
        builder.add(capital, "name", f'"Capital {index}"')
        builder.add(capital, "capitalOf", country)

    # Borders: each country borders a few same-region neighbours.
    by_region = {region: [] for region in REGIONS}
    for country, region in region_of.items():
        by_region[region].append(country)
    for country, region in region_of.items():
        for neighbour in builder.pick_some(by_region[region], 2, 5):
            if neighbour != country:
                builder.add(country, "borders", neighbour)

    # Memberships: the UN takes everyone; the EU only European countries;
    # eurozone members are EU members that use the euro.
    europe = by_region["Europe"]
    eu_members = europe[: max(2, int(len(europe) * 0.6))]
    euro = currencies[0]
    for country in country_uris:
        builder.add(country, "memberOf", organizations[0])  # org/0 = UN
    for country in eu_members:
        builder.add(country, "memberOf", organizations[1])  # org/1 = EU
    eurozone = eu_members[: max(2, int(len(eu_members) * 0.7))]
    for country in eurozone:
        builder.add(country, "currencyUnion", euro)
        builder.add(country, "memberOf", organizations[2])  # org/2 = eurozone
    for organization in organizations[:3]:
        builder.add_type(organization, "Organization")

    # A sprinkling of loosely structured facts for the long tail.
    for index, country in enumerate(country_uris):
        if rng.random() < 0.5:
            builder.add(country, "motto", f'"motto {index}"')
        if rng.random() < 0.4:
            builder.add(country, "callingCode", f'"+{rng.randint(1, 999)}"')

    return builder.build_encoded() if encoded else builder.build()
