"""Demo: the support-threshold advisor and CIND ranking extensions.

The paper's future-work section (Section 10) asks for tooling that (a)
helps users pick an appropriate support threshold and (b) separates
meaningful from spurious CINDs.  This example runs both extensions on the
Diseasome dataset.

Run with::

    python examples/threshold_advisor.py
"""

from repro import find_pertinent_cinds
from repro.apps import rank_cinds, recommend_support_threshold, spurious
from repro.datasets import diseasome


def main() -> None:
    dataset = diseasome()
    print(f"dataset: {len(dataset):,} Diseasome triples\n")

    # 1. Ask the advisor which thresholds fit which use case.
    report = recommend_support_threshold(dataset)
    print(report.describe())

    # 2. Discover with the knowledge-discovery recommendation.
    recommended = next(
        rec.h
        for rec in report.recommendations
        if rec.use_case == "knowledge discovery"
    )
    encoded = dataset.encode()
    result = find_pertinent_cinds(encoded, support_threshold=recommended)
    print(
        f"\ndiscovery at recommended h={recommended}: "
        f"{len(result.cinds):,} pertinent CINDs, "
        f"{len(result.association_rules):,} ARs"
    )

    # 3. Rank by meaningfulness and flag spurious inclusions.
    ranking = rank_cinds(result, encoded)
    print("\nmost meaningful CINDs:")
    for row in ranking[:8]:
        print("  " + row.render(result.dictionary))

    flagged = spurious(ranking)
    print(
        f"\n{len(flagged)} of {len(ranking)} CINDs flagged as likely "
        f"spurious (inclusion into a near-universal capture), e.g.:"
    )
    for row in flagged[:4]:
        print("  " + row.render(result.dictionary))


if __name__ == "__main__":
    main()
