"""Stdlib client for the discovery job server.

Used by the test suite, the CI smoke leg, and the cache benchmark — and
small enough to crib for any script::

    from repro.server.client import ServerClient

    client = ServerClient("http://127.0.0.1:8745")
    job = client.submit(dataset="Diseasome", support_threshold=10)
    client.wait(job["id"])
    page = client.result(job["id"], limit=20)

Every method raises :class:`ServerError` (carrying the HTTP status and
decoded error body) on a non-2xx response, so callers never parse error
strings out of band.

Resilience (shared :mod:`repro.core.retry` machinery, seeded jitter so
delay sequences reproduce):

* idempotent GETs transparently retry on *transient connection* errors
  (refused/reset/unreachable — never on HTTP error statuses, which are
  real answers);
* :meth:`ServerClient.submit` retries a 429 (queue full) within the
  bounded retry budget, honoring the server's ``Retry-After`` hint —
  safe because submission is fingerprint-deduplicated server-side.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional

from repro.core.retry import RetryPolicy
from repro.server.store import TERMINAL_STATES

__all__ = ["DEFAULT_CLIENT_RETRY", "ServerClient", "ServerError"]

#: Conservative default: 2 retries, 50 ms → 200 ms with ±50% seeded
#: jitter, hints capped at 1 s.  Enough to ride out a server restart or
#: a queue-full blip without turning a dead server into a long hang.
DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_retries=2,
    backoff_seconds=0.05,
    backoff_factor=2.0,
    max_backoff_seconds=1.0,
    jitter=0.5,
    seed=0,
)


class ServerError(RuntimeError):
    """A non-2xx server response (or an unreachable server)."""

    def __init__(self, message: str, status: Optional[int] = None,
                 payload: Optional[Dict[str, Any]] = None,
                 retry_after_header: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.retry_after_header = retry_after_header

    @property
    def retry_after(self) -> Optional[int]:
        """Server's backoff hint on a 429, in seconds.

        Prefers the JSON body's ``retry_after`` field; falls back to the
        HTTP ``Retry-After`` response header, so the hint survives even
        when a proxy or a non-JSON error path produced the 429.
        """
        value = self.payload.get("retry_after")
        if value is None:
            value = self.retry_after_header
        if value is None:
            return None
        try:
            return int(float(value))
        except (TypeError, ValueError):
            return None


class ServerClient:
    """Minimal JSON-over-HTTP client; one instance per server.

    ``retry`` tunes the transient-GET/429-submit retry schedule (pass
    ``RetryPolicy(max_retries=0)`` to disable retries entirely);
    ``sleeper`` injects the backoff wait for tests.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = None,
                 sleeper: Callable[[float], None] = time.sleep) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_CLIENT_RETRY
        self._sleep = sleeper
        #: Transparent retries performed, by cause (a test/debug surface).
        self.transient_retries = 0
        self.submit_retries = 0

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        raw: bool = False,
    ) -> Any:
        """One endpoint call; transparent bounded retry for GET transients.

        Only connection-level failures (``status is None``) of idempotent
        GETs are retried here — an HTTP error status is the server's
        actual answer and is raised as-is.
        """
        retry_number = 0
        while True:
            try:
                return self._request_once(method, path, body=body, raw=raw)
            except ServerError as error:
                if (
                    method == "GET"
                    and error.status is None
                    and retry_number < self.retry.max_retries
                ):
                    retry_number += 1
                    self.transient_retries += 1
                    self._sleep(
                        self.retry.delay(retry_number, key=f"{method} {path}")
                    )
                    continue
                raise

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        raw: bool = False,
    ) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                content = response.read()
        except urllib.error.HTTPError as error:
            content = error.read()
            try:
                payload = json.loads(content.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                payload = {"error": content.decode("utf-8", "replace")}
            raise ServerError(
                f"{method} {path} -> {error.code}: "
                f"{payload.get('error', 'unknown error')}",
                status=error.code,
                payload=payload,
                retry_after_header=error.headers.get("Retry-After"),
            ) from None
        except (urllib.error.URLError, OSError) as error:
            raise ServerError(f"{method} {path} failed: {error}") from error
        if raw:
            return content
        return json.loads(content.decode("utf-8"))

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def datasets(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/datasets")["datasets"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def submit(self, **fields: Any) -> Dict[str, Any]:
        """Submit a job; returns the record dict with ``cache`` attached.

        Fields mirror :class:`repro.server.store.JobRequest` (``dataset``
        required; ``support_threshold``, ``scale``, ``scope``,
        ``variant``, ``parallelism``, ``storage``, ``executor``,
        ``workers`` optional).

        A 429 (queue full) is retried within the bounded retry budget,
        waiting at least the server's ``Retry-After`` hint (capped by the
        policy's backoff ceiling) with seeded jitter.  Resubmission is
        safe: identical requests fingerprint-join the existing job
        server-side.  Once the budget is spent, the 429 propagates.
        """
        retry_number = 0
        while True:
            try:
                response = self._request("POST", "/jobs", body=fields)
                break
            except ServerError as error:
                if error.status == 429 and retry_number < self.retry.max_retries:
                    retry_number += 1
                    self.submit_retries += 1
                    self._sleep(
                        self.retry.delay_with_hint(
                            retry_number,
                            key="POST /jobs",
                            hint=error.retry_after,
                        )
                    )
                    continue
                raise
        job = response["job"]
        job["cache"] = response["cache"]
        return job

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(
        self, job_id: str, offset: int = 0, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        query = f"?offset={offset}"
        if limit is not None:
            query += f"&limit={limit}"
        return self._request("GET", f"/jobs/{job_id}/result{query}")

    def raw_result(self, job_id: str) -> bytes:
        """The full result document bytes (diffable against ``discover -o``)."""
        return self._request("GET", f"/jobs/{job_id}/result?raw=1", raw=True)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel", body={})["job"]

    # -- streaming endpoints -------------------------------------------

    def streams(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/streams")["streams"]

    def create_stream(self, **fields: Any) -> Dict[str, Any]:
        """Create a streaming-maintenance stream.

        Fields: ``support_threshold`` (required), ``scope``
        (full/predicates), ``compact_every``.
        """
        return self._request("POST", "/streams", body=fields)["stream"]

    def stream(self, stream_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/streams/{stream_id}")["stream"]

    def post_deltas(
        self, stream_id: str, deltas: List[Dict[str, str]]
    ) -> Dict[str, Any]:
        """Apply ``[{"op", "s", "p", "o"}, ...]`` to a stream."""
        return self._request(
            "POST", f"/streams/{stream_id}/deltas", body={"deltas": deltas}
        )

    def stream_results(self, stream_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/streams/{stream_id}/results")

    def raw_stream_results(self, stream_id: str) -> bytes:
        """The stream's batch-identical result document bytes."""
        return self._request(
            "GET", f"/streams/{stream_id}/results?raw=1", raw=True
        )

    def compact_stream(self, stream_id: str) -> Dict[str, Any]:
        return self._request(
            "POST", f"/streams/{stream_id}/compact", body={}
        )["stream"]

    # -- polling helpers -----------------------------------------------

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.1) -> Dict[str, Any]:
        """Block until /healthz answers (server boot)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServerError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.1,
        expect: str = "succeeded",
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status.

        Raises :class:`ServerError` when the terminal state is not
        ``expect`` (pass ``expect=None`` to accept any terminal state),
        or on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in TERMINAL_STATES:
                if expect is not None and status["state"] != expect:
                    raise ServerError(
                        f"job {job_id} ended {status['state']!r} "
                        f"(expected {expect!r}): {status.get('error')}"
                    )
                return status
            if time.monotonic() >= deadline:
                raise ServerError(
                    f"timed out after {timeout}s waiting for job {job_id} "
                    f"(state {status['state']!r})"
                )
            time.sleep(poll)

    def wait_state(
        self, job_id: str, state: str, timeout: float = 60.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job reaches ``state`` (e.g. ``running``)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] == state:
                return status
            if status["state"] in TERMINAL_STATES or time.monotonic() >= deadline:
                raise ServerError(
                    f"job {job_id} is {status['state']!r}, expected {state!r}"
                )
            time.sleep(poll)
