"""Figure 11: number of pertinent CINDs across support thresholds.

The paper reports an inverse relationship — "decreasing the support
threshold by two orders of magnitude increases the number of cinds by
three orders of magnitude" — with ARs usually accounting for 10-50% of
the result.  It also showcases two high-support DBpedia CINDs
(associatedBand ⊑ associatedMusicalArtist on s and o), which this
reproduction's DB14-MPCE plants and must rediscover.

Runs are shared with Figure 10 through the session cache.
"""

import pytest

from benchmarks.bench_fig10_support_runtime import DATASET_SWEEPS


@pytest.mark.parametrize("name", list(DATASET_SWEEPS))
def test_fig11_support_threshold_results(name, benchmark, report, cache):
    h_values = DATASET_SWEEPS[name]

    def body():
        return [
            (
                h,
                len(cache.run(name, h)[0].cinds),
                len(cache.run(name, h)[0].association_rules),
            )
            for h in h_values
        ]

    rows = benchmark.pedantic(body, rounds=1, iterations=1)

    section = report.section(f"Figure 11 — pertinent CINDs vs support, {name}")
    section.row(f"{'h':>7} | {'CINDs':>10} | {'ARs':>7}")
    for h, cinds, ars in rows:
        section.row(f"{h:>7} | {cinds:>10,} | {ars:>7,}")

    counts = [cinds for _h, cinds, _ars in rows]
    # Shape: monotone non-increasing in h, with a steep low-h rise.
    assert counts == sorted(counts, reverse=True)
    if counts[-1] > 0:
        assert counts[0] >= counts[-1]


def test_fig11_associated_band_cinds(benchmark, report, cache):
    """The paper's flagship high-support pair on DBpedia.

    h=100 here: at 1/220 of the paper's dataset size, the o-side
    inclusion's support scales from the paper's 41,300 down to ~950.
    """
    result, _elapsed = benchmark.pedantic(
        cache.run, args=("DB14-MPCE", 100), rounds=1, iterations=1
    )
    rendered = set(result.render_cinds())
    matches = [
        line
        for line in rendered
        if "associatedBand" in line and "associatedMusicalArtist" in line
    ]
    section = report.section(
        "Figure 11 detail — associatedBand ⊑ associatedMusicalArtist "
        "(paper supports: 33,296 / 41,300 at full DBpedia size)"
    )
    for line in sorted(matches):
        section.row(line)
    # both the subject-side and the object-side inclusion must be found
    assert any(line.startswith("(s,") for line in matches)
    assert any(line.startswith("(o,") for line in matches)
