"""The spilling shuffle: frames, runs, byte budgets, and equivalence.

The disk-backed data plane must be a pure memory substitution: spill-mode
output byte-identical to the inline shuffle on both executor backends,
runs protected by CRC framing (corruption and truncation are loud, never
silent), the byte-pricing function honest against ``sys.getsizeof``, and
no spill files left behind — on success or across fault-injected retries.
"""

from __future__ import annotations

import os
import pickle
import sys

import pytest

from repro.core.discovery import RDFind, RDFindConfig
from repro.core.framing import (
    FrameCorruptionError,
    FrameError,
    FrameTruncatedError,
    iter_frames,
    pack_frame,
    read_frame,
    write_frame,
)
from repro.dataflow.engine import ExecutionEnvironment, record_bytes
from repro.dataflow.faults import TRANSIENT, FaultPlan
from repro.dataflow.shuffle import (
    SHUFFLE_MODES,
    MemoryBudget,
    RunInfo,
    SpillConfig,
    read_run,
    write_run,
)
from tests.conftest import ar_set, cind_set, random_rdf


# ----------------------------------------------------------------------
# binary frames (satellite: CRC corruption + truncation error paths)
# ----------------------------------------------------------------------


class TestFrames:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "frames.bin"
        payloads = [b"", b"x", b"hello" * 100, bytes(range(256))]
        with open(path, "wb") as stream:
            written = sum(write_frame(stream, p) for p in payloads)
        assert written == os.path.getsize(path)
        with open(path, "rb") as stream:
            assert list(iter_frames(stream)) == payloads

    def test_read_frame_none_at_clean_eof(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with open(path, "rb") as stream:
            assert read_frame(stream) is None

    def test_corrupted_payload_fails_crc(self, tmp_path):
        frame = bytearray(pack_frame(b"payload-bytes"))
        frame[-1] ^= 0xFF  # flip a payload bit, header stays intact
        path = tmp_path / "corrupt.bin"
        path.write_bytes(bytes(frame))
        with open(path, "rb") as stream:
            with pytest.raises(FrameCorruptionError):
                read_frame(stream)

    def test_absurd_length_is_corruption_not_allocation(self, tmp_path):
        # A flipped high bit in the length field must not make the reader
        # try to allocate gigabytes before the CRC check.
        path = tmp_path / "absurd.bin"
        path.write_bytes(b"\xff\xff\xff\xff\x00\x00\x00\x00")
        with open(path, "rb") as stream:
            with pytest.raises(FrameCorruptionError):
                read_frame(stream)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short-header.bin"
        path.write_bytes(pack_frame(b"data")[:3])
        with open(path, "rb") as stream:
            with pytest.raises(FrameTruncatedError):
                read_frame(stream)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "short-payload.bin"
        path.write_bytes(pack_frame(b"data-that-gets-cut")[:-5])
        with open(path, "rb") as stream:
            with pytest.raises(FrameTruncatedError):
                read_frame(stream)


# ----------------------------------------------------------------------
# byte-accurate record pricing (satellite: getsizeof calibration)
# ----------------------------------------------------------------------


def _deep_sizeof(record) -> int:
    """Reference deep size: getsizeof recursively over containers."""
    size = sys.getsizeof(record)
    if isinstance(record, (tuple, list, set, frozenset)):
        size += sum(_deep_sizeof(field) for field in record)
    elif isinstance(record, dict):
        size += sum(
            _deep_sizeof(k) + _deep_sizeof(v) for k, v in record.items()
        )
    return size


class TestRecordBytes:
    # The record shapes the encoded-storage pipeline actually shuffles:
    # EncodedTriple-style id tuples, (key, value) pairs, capture-ish
    # nested tuples, frozensets of small ints, and aggregation sets.
    SHAPES = [
        7,
        123456789,
        (1, 2, 3),
        ((4, 11), 982),
        ("ex:WHO", "rdf:type", "ex:Agency"),
        (1, (2, 3), frozenset({4, 5, 6})),
        frozenset(range(20)),
        {(i, i + 1) for i in range(15)},
        [(-i, i * 3) for i in range(25)],
        ((1, 2), ({3, 4, 5}, 6, True)),
    ]

    @pytest.mark.parametrize("record", SHAPES, ids=[repr(s)[:40] for s in SHAPES])
    def test_honest_within_2x(self, record):
        estimate = record_bytes(record)
        true = _deep_sizeof(record)
        assert 0.5 <= estimate / true <= 2.0, (
            f"record_bytes({record!r}) = {estimate}, deep getsizeof = {true}"
        )

    def test_container_pricing_is_length_linear(self):
        # Re-pricing a growing aggregation set must be O(1)-per-call and
        # grow with the element count, not stay flat.
        small = record_bytes(frozenset(range(10)))
        large = record_bytes(frozenset(range(1000)))
        assert large > small * 10


class TestMemoryBudget:
    def test_charge_release_peak(self):
        budget = MemoryBudget(100)
        budget.charge(80)
        assert not budget.exceeded
        budget.charge(40)
        assert budget.exceeded
        assert budget.peak_bytes == 120
        budget.release(60)
        assert budget.used_bytes == 60
        assert budget.peak_bytes == 120
        budget.reset()
        assert budget.used_bytes == 0
        assert budget.peak_bytes == 120

    def test_unlimited_never_exceeds(self):
        budget = MemoryBudget(None)
        budget.charge(10**12)
        assert not budget.exceeded

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)

    def test_spill_config_validation(self):
        with pytest.raises(ValueError):
            SpillConfig(budget_bytes=0)
        with pytest.raises(ValueError):
            SpillConfig(frame_records=0)
        with pytest.raises(ValueError):
            SpillConfig(merge_fanin=1)


# ----------------------------------------------------------------------
# run files (satellite: round-trips, empty runs, error paths)
# ----------------------------------------------------------------------


def _records(n, partition=0):
    return [((i * 131) % 997, (partition, i), i % 13, ("payload", i)) for i in range(n)]


class TestRunFiles:
    def test_round_trip(self, tmp_path):
        records = _records(1000)
        info = write_run(str(tmp_path / "a.run"), 3, records, frame_records=64)
        assert info == RunInfo(str(tmp_path / "a.run"), 3, 1000, info.bytes)
        assert info.bytes == os.path.getsize(info.path)
        assert list(read_run(info.path)) == records

    def test_empty_run_is_header_only(self, tmp_path):
        info = write_run(str(tmp_path / "empty.run"), 0, [])
        assert info.records == 0
        assert list(read_run(info.path)) == []

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_run(str(tmp_path / "a.run"), 0, _records(10))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.run"]

    def test_rewrite_is_idempotent(self, tmp_path):
        # A retried task overwrites its own run cleanly (tmp + rename).
        path = str(tmp_path / "a.run")
        write_run(path, 0, _records(10))
        write_run(path, 0, _records(10))
        assert list(read_run(path)) == _records(10)

    def test_not_a_run_file(self, tmp_path):
        path = tmp_path / "json.run"
        with open(path, "wb") as stream:
            write_frame(stream, pickle.dumps({"magic": "something-else"}))
        with pytest.raises(FrameError):
            list(read_run(str(path)))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "future.run"
        with open(path, "wb") as stream:
            write_frame(
                stream,
                pickle.dumps({"magic": "rdfind-spill", "version": 999}),
            )
        with pytest.raises(FrameError, match="version"):
            list(read_run(str(path)))

    def test_empty_file_is_truncated(self, tmp_path):
        path = tmp_path / "zero.run"
        path.write_bytes(b"")
        with pytest.raises(FrameTruncatedError):
            list(read_run(str(path)))

    def test_mid_frame_truncation_detected(self, tmp_path):
        info = write_run(str(tmp_path / "a.run"), 0, _records(500), frame_records=50)
        data = open(info.path, "rb").read()
        open(info.path, "wb").write(data[: len(data) - 37])
        with pytest.raises(FrameTruncatedError):
            list(read_run(info.path))

    def test_lost_trailing_frames_detected_by_count(self, tmp_path):
        # Cut the file at an exact frame boundary: every remaining frame
        # passes its CRC, so only the header record count catches it.
        info = write_run(str(tmp_path / "a.run"), 0, _records(500), frame_records=50)
        with open(info.path, "rb") as stream:
            frames = list(iter_frames(stream))
        with open(info.path, "wb") as stream:
            for payload in frames[:-2]:
                write_frame(stream, payload)
        with pytest.raises(FrameTruncatedError, match="declares"):
            list(read_run(info.path))

    def test_bit_rot_detected_by_crc(self, tmp_path):
        info = write_run(str(tmp_path / "a.run"), 0, _records(200), frame_records=50)
        data = bytearray(open(info.path, "rb").read())
        data[len(data) // 2] ^= 0x10
        open(info.path, "wb").write(bytes(data))
        with pytest.raises((FrameCorruptionError, FrameTruncatedError)):
            list(read_run(info.path))


# ----------------------------------------------------------------------
# engine equivalence: spill == inline, on both backends
# ----------------------------------------------------------------------


def _add(a, b):
    return a + b


def _mod7(x):
    return x % 7


def _identity(x):
    return x


def _expand_pairs(x):
    return [((x % 11, x % 3), 1), ((x % 5, 1), x)]


def _count_join(key, left, right):
    return [(key, len(left), len(right), sum(left) + sum(right))]


def _skewed_records(n=4000):
    # One dominant key (~half the records) plus a long tail — the bucket
    # shape that makes bounded-memory grouping interesting.
    return [(i * 17) % 101 if i % 2 else 0 for i in range(n)]


def _run_keyed_pipeline(shuffle, executor="serial", **env_kwargs):
    data = _skewed_records()
    with ExecutionEnvironment(
        parallelism=4, executor=executor, shuffle=shuffle, **env_kwargs
    ) as env:
        ds = env.from_collection(data, name="src")
        reduced = ds.reduce_by_key(_mod7, _identity, _add).partitions
        streamed = ds.reduce_by_key(
            _mod7, _identity, _add, combine=False
        ).partitions
        fused = ds.flat_map_reduce_by_key(_expand_pairs, _add).partitions
        grouped = ds.group_by_key(_mod7).partitions
        other = env.from_collection(data[::3], name="src2")
        joined = ds.co_group(other, _mod7, _mod7, _count_join).partitions
        summary = env.metrics.summary()
    return (reduced, streamed, fused, grouped, joined), summary


class TestSpillEquivalence:
    def test_spill_matches_inline_serial(self):
        inline, _ = _run_keyed_pipeline("inline")
        spill, summary = _run_keyed_pipeline("spill", memory_budget_bytes=4096)
        assert spill == inline
        assert summary["spilled_runs"] > 0
        assert summary["spilled_bytes"] > 0

    def test_spill_matches_inline_process(self):
        inline, _ = _run_keyed_pipeline("inline")
        spill, _ = _run_keyed_pipeline(
            "spill",
            executor="process",
            workers=2,
            memory_budget_bytes=4096,
        )
        assert spill == inline

    def test_cross_backend_merged_order_deterministic(self):
        # Same spill config on both backends: identical partitions AND
        # identical group order within every partition (list equality).
        serial, serial_summary = _run_keyed_pipeline(
            "spill", memory_budget_bytes=2048
        )
        process, process_summary = _run_keyed_pipeline(
            "spill", executor="process", workers=2, memory_budget_bytes=2048
        )
        assert serial == process
        assert serial_summary["spilled_runs"] == process_summary["spilled_runs"]
        assert serial_summary["spilled_bytes"] == process_summary["spilled_bytes"]

    def test_unbudgeted_spill_still_matches(self):
        # No byte budget: one final flush per task, everything through disk.
        inline, _ = _run_keyed_pipeline("inline")
        spill, summary = _run_keyed_pipeline("spill")
        assert spill == inline
        assert summary["spilled_runs"] > 0

    def test_multi_pass_merge_matches(self):
        inline, _ = _run_keyed_pipeline("inline")
        spill, summary = _run_keyed_pipeline(
            "spill",
            spill_config=SpillConfig(
                budget_bytes=512, merge_fanin=2, frame_records=16
            ),
        )
        assert spill == inline
        assert summary["merge_passes"] > 0

    def test_rejects_unknown_mode(self):
        assert SHUFFLE_MODES == ("inline", "spill")
        with pytest.raises(ValueError, match="shuffle"):
            ExecutionEnvironment(shuffle="mmap")


class TestBoundedMemory:
    def test_oversized_bucket_completes_within_budget(self):
        # Acceptance: a reduce_by_key whose single dominant bucket is
        # >= 10x the byte budget completes by spilling — runs on disk,
        # peak in-memory state bounded, no SimulatedOutOfMemory even
        # though the record-count budget would have fired inline.
        data = [0] * 20000  # one bucket, all records
        budget_bytes = 8192
        with ExecutionEnvironment(
            parallelism=2,
            shuffle="spill",
            memory_budget_bytes=budget_bytes,
            memory_budget=100,  # record-count simulation: ignored by spill
        ) as env:
            pairs = env.from_collection(data).reduce_by_key(
                _identity, _identity, _add, combine=False
            )
            [result] = pairs.collect(name="result")
            summary = env.metrics.summary()
        assert result == (0, 0)
        bucket_bytes = summary["spilled_bytes"]
        assert bucket_bytes >= 10 * budget_bytes
        assert summary["spilled_runs"] > 0
        # One record of slack: the budget check runs after the charge.
        assert summary["peak_state_bytes"] <= 2 * budget_bytes

    def test_inline_same_bucket_would_oom_but_spill_completes(self):
        # The counterpart: grouping the same oversized bucket inline under
        # a record-count budget raises; the spill path just spills.
        from repro.dataflow.faults import SimulatedOutOfMemory

        data = [0] * 20000
        with ExecutionEnvironment(parallelism=2, memory_budget=100) as env:
            with pytest.raises(SimulatedOutOfMemory):
                env.from_collection(data).group_by_key(_identity)
        with ExecutionEnvironment(
            parallelism=2,
            memory_budget=100,
            shuffle="spill",
            memory_budget_bytes=8192,
        ) as env:
            groups = env.from_collection(data).group_by_key(_identity)
            [(key, members)] = groups.collect(name="groups")
        assert key == 0 and len(members) == 20000


# ----------------------------------------------------------------------
# spill-dir hygiene (satellite: no leaked runs, even across retries)
# ----------------------------------------------------------------------


class TestSpillHygiene:
    def test_workspace_removed_on_close(self, tmp_path):
        spill_dir = str(tmp_path / "spills")
        env = ExecutionEnvironment(
            parallelism=2, shuffle="spill", spill_dir=spill_dir
        )
        env.from_collection(range(100)).reduce_by_key(
            _mod7, _identity, _add
        )
        workspaces = os.listdir(spill_dir)
        assert len(workspaces) == 1  # mkdtemp workspace exists while open
        assert workspaces[0].startswith("rdfind-spill-")
        env.close()
        assert os.listdir(spill_dir) == []

    def test_stage_dirs_removed_between_operators(self, tmp_path):
        spill_dir = str(tmp_path / "spills")
        with ExecutionEnvironment(
            parallelism=2, shuffle="spill", spill_dir=spill_dir
        ) as env:
            ds = env.from_collection(range(500))
            ds.reduce_by_key(_mod7, _identity, _add)
            ds.group_by_key(_mod7)
            (workspace,) = os.listdir(spill_dir)
            # Runs are per-stage scratch: nothing survives the operator.
            assert os.listdir(os.path.join(spill_dir, workspace)) == []

    def test_inline_mode_never_touches_disk(self, tmp_path):
        spill_dir = str(tmp_path / "spills")
        with ExecutionEnvironment(
            parallelism=2, shuffle="inline", spill_dir=spill_dir
        ) as env:
            env.from_collection(range(100)).reduce_by_key(
                _mod7, _identity, _add
            )
        assert not os.path.exists(spill_dir)

    def test_no_leaks_across_fault_injected_retries(self, tmp_path):
        # Transient faults + worker crashes force task re-execution; the
        # rewritten runs must replace (not duplicate) the originals and
        # the workspace must still come out clean.
        spill_dir = str(tmp_path / "spills")
        plan = FaultPlan(
            seed=11,
            transient_rate=0.2,
            crash_rate=0.0,
            forced=(("reduce_by_key", 0, TRANSIENT), ("group", 1, TRANSIENT)),
        )
        clean, _ = _run_keyed_pipeline("spill", memory_budget_bytes=2048)
        faulty, summary = _run_keyed_pipeline(
            "spill",
            memory_budget_bytes=2048,
            fault_plan=plan,
            spill_dir=spill_dir,
        )
        assert faulty == clean
        assert summary["faults_injected"] > 0
        assert summary["retries"] > 0
        assert os.listdir(spill_dir) == []


# ----------------------------------------------------------------------
# discovery equivalence + config plumbing
# ----------------------------------------------------------------------


def _discover(dataset, **overrides):
    overrides.setdefault("support_threshold", 2)
    overrides.setdefault("parallelism", 4)
    return RDFind(RDFindConfig(**overrides)).discover(dataset)


class TestDiscoveryEquivalence:
    @pytest.fixture(scope="class")
    def dataset(self):
        return random_rdf(13, n_triples=250, n_subjects=14, n_objects=14)

    @pytest.fixture(scope="class")
    def inline_result(self, dataset):
        return _discover(dataset)

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_spill_discovery_identical(self, dataset, inline_result, executor):
        spill = _discover(
            dataset,
            shuffle="spill",
            memory_budget_bytes=4096,
            executor=executor,
            workers=2 if executor == "process" else None,
        )
        assert spill.cinds == inline_result.cinds
        assert spill.association_rules == inline_result.association_rules
        assert cind_set(spill) == cind_set(inline_result)
        assert ar_set(spill) == ar_set(inline_result)
        assert spill.metrics.total_spilled_runs > 0

    def test_spill_across_support_thresholds(self, dataset):
        # The Figure 8/12 axis: output equivalence must hold at every h.
        for h in (2, 4, 8):
            inline = _discover(dataset, support_threshold=h)
            spill = _discover(
                dataset, support_threshold=h, shuffle="spill",
                memory_budget_bytes=2048,
            )
            assert spill.cinds == inline.cinds
            assert spill.association_rules == inline.association_rules

    def test_spill_variants(self, dataset):
        # DE skips the pruning phases — different operator mix, same rule.
        inline = RDFind(
            RDFindConfig.direct_extraction(support_threshold=2, parallelism=4)
        ).discover(dataset)
        spill = RDFind(
            RDFindConfig.direct_extraction(
                support_threshold=2,
                parallelism=4,
                shuffle="spill",
                memory_budget_bytes=2048,
            )
        ).discover(dataset)
        assert spill.cinds == inline.cinds


class TestConfigPlumbing:
    def test_rejects_unknown_shuffle(self):
        with pytest.raises(ValueError, match="shuffle"):
            RDFindConfig(shuffle="tape")

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            RDFindConfig(memory_budget_bytes=0)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("RDFIND_SHUFFLE", "spill")
        monkeypatch.setenv("RDFIND_MEMORY_BUDGET_BYTES", "65536")
        monkeypatch.setenv("RDFIND_SPILL_DIR", "/tmp/spill-here")
        config = RDFindConfig()
        assert config.shuffle == "spill"
        assert config.memory_budget_bytes == 65536
        assert config.spill_dir == "/tmp/spill-here"

    def test_env_defaults_absent(self, monkeypatch):
        monkeypatch.delenv("RDFIND_SHUFFLE", raising=False)
        monkeypatch.delenv("RDFIND_MEMORY_BUDGET_BYTES", raising=False)
        monkeypatch.delenv("RDFIND_SPILL_DIR", raising=False)
        config = RDFindConfig()
        assert config.shuffle == "inline"
        assert config.memory_budget_bytes is None
        assert config.spill_dir is None
