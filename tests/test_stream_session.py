"""StreamSession durability: compaction, crash-resume, and the CLI door."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.streaming.session import StreamSession
from tests.conftest import random_rdf

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def scripted_ops(seed, n_ops=60):
    import random

    rng = random.Random(seed)
    pool = [(f"s{rng.randrange(8)}", f"p{rng.randrange(4)}", f"o{rng.randrange(8)}")
            for _ in range(40)]
    live = []
    ops = []
    for _ in range(n_ops):
        if live and rng.random() < 0.35:
            triple = rng.choice(live)
            live.remove(triple)
            ops.append(("remove",) + triple)
        else:
            triple = rng.choice(pool)
            if triple not in live:
                live.append(triple)
            ops.append(("add",) + triple)
    return ops


class TestResume:
    def test_reopen_replays_full_log_without_checkpoint(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamSession(directory, h=2) as session:
            for op, s, p, o in scripted_ops(1):
                session.apply(op, s, p, o)
            tail = session.applied_seq
            expected = session.document_json()
        with StreamSession(directory, h=2) as session:
            assert not session.resumed_from_checkpoint
            assert session.replayed_records == tail
            assert session.document_json() == expected

    def test_checkpoint_bounds_replay_to_suffix(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamSession(directory, h=2) as session:
            for op, s, p, o in scripted_ops(2, n_ops=50):
                session.apply(op, s, p, o)
            session.compact()
            for op, s, p, o in scripted_ops(3, n_ops=12):
                session.apply(op, s, p, o)
            session.changelog.sync()
            expected = session.document_json()
        with StreamSession(directory, h=2) as session:
            assert session.resumed_from_checkpoint
            assert session.replayed_records == 12
            assert session.document_json() == expected

    def test_compact_every_cadence(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamSession(directory, h=2, compact_every=20) as session:
            for op, s, p, o in scripted_ops(4, n_ops=50):
                session.apply(op, s, p, o)
            assert session.maintainer.stats.compactions == 2
        with StreamSession(directory, h=2) as session:
            assert session.resumed_from_checkpoint
            assert session.replayed_records == 10

    def test_mismatched_h_falls_back_to_full_replay(self, tmp_path):
        directory = str(tmp_path / "state")
        with StreamSession(directory, h=2) as session:
            for op, s, p, o in scripted_ops(5, n_ops=30):
                session.apply(op, s, p, o)
            session.compact()
        with pytest.warns(UserWarning, match="fingerprint mismatch"):
            with StreamSession(directory, h=3) as session:
                assert not session.resumed_from_checkpoint
                assert session.replayed_records == 30

    def test_sigkill_resumes_from_last_checkpoint(self, tmp_path):
        """A SIGKILLed writer loses nothing durable: the restarted session
        replays only the changelog suffix and matches a full replay."""
        directory = str(tmp_path / "state")
        child = textwrap.dedent(
            """
            import os, signal, sys
            sys.path.insert(0, sys.argv[1])
            sys.path.insert(0, sys.argv[3])
            from repro.streaming.session import StreamSession
            from tests.test_stream_session import scripted_ops
            session = StreamSession(sys.argv[2], h=2, compact_every=25)
            for op, s, p, o in scripted_ops(6, n_ops=63):
                session.apply(op, s, p, o)
            session.changelog.sync()
            print(session.applied_seq, flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        repo_root = os.path.dirname(SRC_DIR)
        proc = subprocess.run(
            [sys.executable, "-c", child, SRC_DIR, directory, repo_root],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == -9, proc.stderr
        tail = int(proc.stdout.split()[-1])
        assert tail == 63

        with StreamSession(directory, h=2) as session:
            assert session.resumed_from_checkpoint
            # checkpoints at 25 and 50; only 51..63 replays
            assert session.replayed_records == 13
            assert session.applied_seq == 63
            resumed = session.document_json()

        # Byte-identical to a from-scratch replay of the whole changelog.
        fresh_dir = str(tmp_path / "fresh")
        os.makedirs(fresh_dir)
        os.rename(
            os.path.join(directory, "changelog"),
            os.path.join(fresh_dir, "changelog"),
        )
        with StreamSession(fresh_dir, h=2) as session:
            assert not session.resumed_from_checkpoint
            assert session.replayed_records == 63
            assert session.document_json() == resumed


class TestBatchAndStatus:
    def test_apply_batch_counts(self, tmp_path):
        with StreamSession(str(tmp_path / "state"), h=1) as session:
            counts = session.apply_batch(
                [
                    {"op": "add", "s": "a", "p": "b", "o": "c"},
                    {"op": "add", "s": "a", "p": "b", "o": "c"},
                    ("remove", "a", "b", "c"),
                    {"op": "remove", "s": "x", "p": "y", "o": "z"},
                ]
            )
            assert counts == {
                "applied": 4,
                "added": 1,
                "removed": 1,
                "ignored": 2,
            }

    def test_status_is_json_safe(self, tmp_path):
        with StreamSession(str(tmp_path / "state"), h=2) as session:
            session.load_initial(random_rdf(7, n_triples=15))
            status = session.status()
            json.dumps(status)  # must not raise
            assert status["support_threshold"] == 2
            assert status["triples"] == session.maintainer.triples
            assert status["stats"]["triples_added"] > 0


class TestCliDoor:
    def test_stream_cli_matches_discover(self, tmp_path, capsys):
        """The in-process `rdfind stream` run is byte-identical to
        `rdfind discover -o` on the dataset it materializes."""
        from repro.rdf.model import Dataset
        from repro.rdf.ntriples import write_ntriples_file

        triples = list(random_rdf(8, n_triples=60))
        split = int(len(triples) * 0.8)
        write_ntriples_file(
            Dataset(triples[:split], name="init"), str(tmp_path / "initial.nt")
        )
        updates = [
            {"op": "add", "s": t.s, "p": t.p, "o": t.o}
            for t in triples[split:]
        ] + [
            {"op": "remove", "s": t.s, "p": t.p, "o": t.o}
            for t in triples[: split : 4]
        ]
        with open(tmp_path / "updates.jsonl", "w", encoding="utf-8") as handle:
            for update in updates:
                handle.write(json.dumps(update) + "\n")

        assert cli_main(
            [
                "stream",
                str(tmp_path / "state"),
                "-s", "2",
                "--init", str(tmp_path / "initial.nt"),
                "--updates", str(tmp_path / "updates.jsonl"),
                "--compact-every", "30",
                "-n", "0",
                "-o", str(tmp_path / "streamed.json"),
                "--dump-dataset", str(tmp_path / "materialized.nt"),
            ]
        ) == 0
        assert cli_main(
            [
                "discover",
                str(tmp_path / "materialized.nt"),
                "-s", "2",
                "--limit", "0",
                "-o", str(tmp_path / "batch.json"),
            ]
        ) == 0
        capsys.readouterr()
        streamed = (tmp_path / "streamed.json").read_bytes()
        batch = (tmp_path / "batch.json").read_bytes()
        assert streamed == batch

    def test_stream_cli_resumes_and_ignores_init(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert cli_main(
            ["stream", state, "-s", "2", "--compact-on-exit", "-n", "0"]
        ) == 0
        with StreamSession(state, h=2) as session:
            session.load_initial(random_rdf(9, n_triples=10))
        assert cli_main(["stream", state, "-s", "2", "-n", "0"]) == 0
        out = capsys.readouterr().out
        assert "resumed at seq 10" in out

    def test_stream_cli_rejects_bad_update_line(self, tmp_path):
        (tmp_path / "bad.jsonl").write_text('{"op": "add", "s": "x"}\n')
        with pytest.raises(SystemExit, match="bad delta"):
            cli_main(
                [
                    "stream",
                    str(tmp_path / "state"),
                    "-s", "2",
                    "--updates", str(tmp_path / "bad.jsonl"),
                ]
            )
