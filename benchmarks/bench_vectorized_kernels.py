"""Vectorized-kernel benchmark: record path vs batch kernels vs planner.

Runs the full Diseasome discovery three times — planner ``off`` (the
record-at-a-time oracle), planner ``static`` (every batch kernel forced
on), and planner ``adaptive`` (cost-based decisions, warmed by the
static run's metrics) — and compares end-to-end wall-clock.

The kernels are pure execution-strategy changes, so all three legs must
produce byte-identical result documents (asserted on the canonical JSON
serialization).  The acceptance bar for the kernel layer is a >=1.5x
end-to-end speedup over the record path on Diseasome at h=10; the
measured ratios land around 1.8-2.0x.

Besides the report section, the bench writes ``BENCH_kernels.json`` at
the repo root: one machine-readable record per leg (elapsed seconds,
speedup, planner decisions) for downstream tooling.
"""

import json
import time
from pathlib import Path

from repro.core.discovery import RDFind, RDFindConfig
from repro.core.serialization import result_to_dict
from repro.datasets import registry

DATASET = "Diseasome"
H = 10
PARALLELISM = 4
#: Acceptance floor for the kernel layer's end-to-end win.
MIN_SPEEDUP = 1.5

OUTPUT_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _run_leg(encoded, planner: str) -> dict:
    config = RDFindConfig(
        support_threshold=H,
        parallelism=PARALLELISM,
        planner=planner,
    )
    started = time.perf_counter()
    result = RDFind(config).discover(encoded)
    elapsed = time.perf_counter() - started
    decisions = {
        stage.name: stage.planner_choice
        for stage in result.metrics.stages
        if stage.planner_choice
    }
    return {
        "planner": planner,
        "elapsed": elapsed,
        "digest": json.dumps(result_to_dict(result), sort_keys=True),
        "cinds": len(result.cinds),
        "association_rules": len(result.association_rules),
        "planner_decisions": decisions,
        "gc_suppressed": result.metrics.total_gc_suppressed_collections,
    }


def test_vectorized_kernels(benchmark, report):
    encoded = registry.load(DATASET, encoded=True)

    def body():
        legs = [_run_leg(encoded, planner) for planner in ("off", "static", "adaptive")]
        return legs

    legs = benchmark.pedantic(body, rounds=1, iterations=1)
    off, static, adaptive = legs

    section = report.section(f"Vectorized kernels — {DATASET} (h={H})")
    for leg in legs:
        speedup = off["elapsed"] / max(leg["elapsed"], 1e-9)
        section.row(
            f"planner={leg['planner']:<8} {leg['elapsed']:6.2f}s"
            f" ({speedup:4.2f}x)"
            f" | {leg['cinds']:,} pertinent CINDs"
            f" | {len(leg['planner_decisions'])} planner decisions"
            f" | {leg['gc_suppressed']:,} GC passes suppressed"
        )
    identical = all(leg["digest"] == off["digest"] for leg in legs)
    section.row("output digests identical: " + ("yes" if identical else "NO"))

    rows = [
        {
            "planner": leg["planner"],
            "elapsed_seconds": round(leg["elapsed"], 4),
            "speedup_vs_record": round(off["elapsed"] / max(leg["elapsed"], 1e-9), 3),
            "pertinent_cinds": leg["cinds"],
            "association_rules": leg["association_rules"],
            "planner_decisions": leg["planner_decisions"],
            "gc_suppressed_collections": leg["gc_suppressed"],
            "output_identical_to_record": leg["digest"] == off["digest"],
        }
        for leg in legs
    ]
    OUTPUT_JSON.write_text(
        json.dumps(
            {"dataset": DATASET, "h": H, "parallelism": PARALLELISM, "legs": rows},
            indent=2,
        )
        + "\n"
    )

    # The kernels are execution strategy only: not a single output byte
    # may move, and the static plan must clear the acceptance speedup.
    assert identical
    assert static["planner_decisions"], "static planner stamped no decisions"
    assert off["elapsed"] / static["elapsed"] >= MIN_SPEEDUP
    # Adaptive must engage the kernels on a dataset this size too.
    assert any(
        choice.startswith("kernel")
        for choice in adaptive["planner_decisions"].values()
    )
