"""Use case: cross-dataset CINDs for data integration.

Treats two of the synthetic sources — the geographic Countries dataset
and the encyclopedic DB14-MPCE dataset — as independent datasets to be
integrated, and mines the cross-dataset inclusions that reveal join
paths and schema correspondences between them.

Run with::

    python examples/data_integration.py
"""

from repro.apps.integration import discover_cross_cinds
from repro.datasets import countries, lubm
from repro.rdf.model import Dataset, Triple


def main() -> None:
    # Two sources about overlapping universities: the LUBM instance and a
    # small "rankings" source that references the same university URIs.
    lubm_data = lubm(scale=0.3)
    lubm_data.name = "LUBM"

    rankings = Dataset(
        [
            Triple(f"university{index}", "rankedBy", "qs")
            for index in range(0, 800, 2)
        ]
        + [
            Triple(f"university{index}", "rankScore", f'"{900 - index}"')
            for index in range(0, 800, 2)
        ],
        name="Rankings",
    )

    report = discover_cross_cinds(rankings, lubm_data, h=25)
    print(report.describe(limit=10))

    # The integration insight: everything the rankings source talks about
    # is a university in LUBM — its subjects join LUBM's typed entities.
    rendered = {report.render(row) for row in report.cinds}
    assert any(
        "[Rankings] (s, p=rankedBy) ⊆ [LUBM] (s, p=rdf:type ∧ o=University)"
        in line
        for line in rendered
    ), "the join path to LUBM's university entities must be discovered"

    joins = report.join_paths()
    if joins:
        print("\nforeign-key style join paths (object side -> entity side):")
        for row in joins[:5]:
            print("  " + report.render(row))
    else:
        print(
            "\n(no object->subject joins here: the sources align on the "
            "same entity URIs, a same-as correspondence rather than a "
            "foreign key)"
        )

    print("\ncross-dataset join path recovered ✔")


if __name__ == "__main__":
    main()
