"""Use case: SPARQL query minimization with CINDs (paper Figure 14).

Generates a LUBM instance, discovers its pertinent CINDs, and uses them
to rewrite LUBM query Q2 from six triple patterns (five joins) down to
three (two joins) — then executes both forms on the mini BGP engine and
verifies identical results plus the speed-up.

Run with::

    python examples/query_minimization.py
"""

import time

from repro import find_pertinent_cinds
from repro.datasets import lubm
from repro.rdf.store import TripleStore
from repro.sparql import QueryMinimizer, evaluate, lubm_q1, lubm_q2


def main() -> None:
    dataset = lubm()
    print(f"generated {len(dataset):,} LUBM triples")

    started = time.perf_counter()
    result = find_pertinent_cinds(dataset.encode(), support_threshold=10)
    print(
        f"discovered {len(result.cinds):,} pertinent CINDs and "
        f"{len(result.association_rules):,} ARs "
        f"in {time.perf_counter() - started:.1f}s"
    )

    minimizer = QueryMinimizer.from_discovery(result)

    report = minimizer.minimize(lubm_q2())
    print("\n" + report.describe())

    store = TripleStore.from_dataset(dataset)
    rows_original, stats_original = evaluate(store, lubm_q2())
    rows_minimized, stats_minimized = evaluate(store, report.minimized)
    assert rows_original == rows_minimized
    print(f"\nboth forms return {len(rows_original)} rows")
    print(f"original:  {stats_original.describe()}")
    print(f"minimized: {stats_minimized.describe()}")
    speedup = stats_original.elapsed_seconds / stats_minimized.elapsed_seconds
    print(f"speed-up: {speedup:.2f}x (the paper measured ~3x in RDF-3X)")

    # Control: Q1's rdf:type pattern is load-bearing (undergraduates take
    # courses too), so a sound minimizer must not touch it.
    control = minimizer.minimize(lubm_q1())
    assert len(control.minimized.patterns) == 2
    print("\ncontrol query Q1 left unchanged (its type pattern is not redundant)")


if __name__ == "__main__":
    main()
