"""Driver-level checkpoint/restore: crash-resumable discovery jobs.

PR 3 made *tasks* survive failures inside a live driver and PR 4 gave the
shuffle a durable on-disk format — but a killed driver still lost the
whole three-phase pipeline.  This module closes that gap the way RDFind's
Flink substrate does (PAPER.md Section 8): at each phase/stage boundary
the driver atomically persists the boundary's materialized result, plus a
:class:`JobManifest` that records which boundaries completed, under which
configuration, and how often each injected driver crash point has already
fired.  A relaunch with ``resume=True`` validates the manifest, loads the
completed boundaries instead of recomputing them, and continues from the
last durable one — with byte-identical final output on both executor
backends.

On-disk layout (everything written tmp-then-``os.replace``, the spill
plane's atomicity discipline, so a crash mid-write leaves either the old
state or ``*.tmp`` litter, never a half-valid artifact)::

    <checkpoint-dir>/
      manifest.json      completed steps, config fingerprint, crash counts
      fc.ckpt            one CRC-framed file per completed step
      cg.ckpt            (step names are sanitized: '/' -> '-')
      ...

A step file is a stream of :mod:`repro.core.framing` frames: a pickled
header frame (magic, version, step name, payload kind, config
fingerprint) followed by pickled payload frames.  The manifest stores a
BLAKE2b digest over the payload frames; a load re-verifies it, so frame
CRCs catch bit rot and the digest catches whole-file substitution.

Failure semantics — never silent wrong answers:

* manifest fingerprint mismatch on resume ⇒ :class:`CheckpointMismatchError`
  (typed error; the caller asked to resume *this* job, not that one);
* corrupt/truncated manifest or step file ⇒ the affected step is
  recomputed cleanly (and re-checkpointed), with a warning on stderr;
* resume with no checkpoint on disk ⇒ a clean fresh run;
* a non-resume run wipes stale step files so they can never be loaded.

Driver crash points (:meth:`FaultPlan.decide_driver_crash`) are evaluated
before and after every boundary.  A firing point first persists its
incremented attempt count into the manifest, then aborts the process via
``os._exit`` — the moral equivalent of SIGKILL: no ``finally`` blocks, no
atexit hooks.  Because the count is durable, the resumed run sees
``attempt >= fire_attempts`` and sails past the same boundary — the
"fault state for deterministic replay" part of the manifest.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from repro.core.framing import FrameError, iter_frames, write_frame
from repro.dataflow import workspace
from repro.dataflow.faults import DRIVER_CRASH_EXIT_CODE, FaultPlan

__all__ = [
    "CHECKPOINT_MODES",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointCorruptError",
    "CheckpointManager",
    "JobManifest",
    "StepRecord",
    "dataset_digest",
    "fingerprint_fields",
]

#: Recognised checkpoint granularities, coarse to fine.  ``phase``
#: checkpoints the three pipeline phases (fc / cg / ex); ``stage``
#: additionally checkpoints sub-stage boundaries inside them.
CHECKPOINT_MODES = ("off", "phase", "stage")

#: Granularity levels a step can declare (``stage`` implies ``phase``).
PHASE = "phase"
STAGE = "stage"

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "rdfind-job-manifest"
MANIFEST_VERSION = 1

CHECKPOINT_MAGIC = "rdfind-checkpoint"
CHECKPOINT_VERSION = 1

#: Payload kinds a step file can hold.
VALUE = "value"  # one pickled driver-side value
DATASET = "dataset"  # a partitioned DataSet, chunked per partition

#: Records per payload frame of a dataset-kind checkpoint: bounds the
#: bytes a single corrupted frame can invalidate, and keeps every frame
#: far below framing.MAX_FRAME_BYTES.
DATASET_CHUNK_RECORDS = 4096

#: Pickle protocol pinned for stability across interpreter minors.
_PICKLE_PROTOCOL = 4

_MISSING = object()


class CheckpointError(RuntimeError):
    """Base class for checkpoint subsystem failures."""


class CheckpointMismatchError(CheckpointError):
    """Resume was requested against a manifest for a different job config."""


class CheckpointCorruptError(CheckpointError):
    """A manifest or step file failed validation (CRC, digest, header).

    Internal signal: the manager converts it into a clean recompute of
    the affected step, never into a silently wrong answer.
    """


def fingerprint_fields(**fields: Any) -> str:
    """A stable BLAKE2b fingerprint over named configuration fields.

    Fields are canonicalized as sorted ``key=value`` lines, so two
    configs fingerprint equal iff every field does — insertion order and
    dict iteration order cannot leak in.
    """
    digest = hashlib.blake2b(digest_size=16)
    for key in sorted(fields):
        digest.update(f"{key}={fields[key]!r}\n".encode("utf-8"))
    return digest.hexdigest()


def dataset_digest(encoded) -> str:
    """Content digest of an :class:`~repro.rdf.model.EncodedDataset`.

    Covers the three id columns byte-for-byte plus every dictionary term,
    so any change to the triples — content *or* encoding order — changes
    the digest and therefore the job fingerprint.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"triples={len(encoded)}\n".encode("utf-8"))
    for column in encoded.columns:
        digest.update(column.typecode.encode("ascii"))
        digest.update(column.tobytes())
    dictionary = encoded.dictionary
    digest.update(f"terms={len(dictionary)}\n".encode("utf-8"))
    for term in dictionary.terms():
        digest.update(term.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class StepRecord:
    """Manifest entry for one completed checkpoint step."""

    kind: str
    digest: str
    bytes: int
    seconds: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "digest": self.digest,
            "bytes": self.bytes,
            "seconds": self.seconds,
        }

    @classmethod
    def from_json(cls, data: Any) -> "StepRecord":
        if not isinstance(data, dict):
            raise CheckpointCorruptError(f"step record is not an object: {data!r}")
        try:
            return cls(
                kind=str(data["kind"]),
                digest=str(data["digest"]),
                bytes=int(data["bytes"]),
                seconds=float(data["seconds"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointCorruptError(f"bad step record {data!r}") from error


@dataclass
class JobManifest:
    """The durable record of a job's checkpoint state.

    ``fingerprint`` identifies the configuration the checkpoints belong
    to; ``steps`` maps completed step names to their :class:`StepRecord`;
    ``crash_attempts`` counts, per ``moment:step`` crash point, how often
    an injected driver crash has already fired — persisted *before* the
    abort so the count survives it.
    """

    fingerprint: str
    mode: str
    steps: Dict[str, StepRecord] = field(default_factory=dict)
    crash_attempts: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "mode": self.mode,
            "steps": {name: record.to_json() for name, record in self.steps.items()},
            "crash_attempts": dict(self.crash_attempts),
        }

    @classmethod
    def from_json(cls, data: Any) -> "JobManifest":
        if not isinstance(data, dict):
            raise CheckpointCorruptError("manifest is not a JSON object")
        if data.get("format") != MANIFEST_FORMAT:
            raise CheckpointCorruptError(
                f"not a {MANIFEST_FORMAT} file (format={data.get('format')!r})"
            )
        if data.get("version") != MANIFEST_VERSION:
            raise CheckpointCorruptError(
                f"unsupported manifest version {data.get('version')!r}"
            )
        try:
            steps = {
                str(name): StepRecord.from_json(record)
                for name, record in dict(data["steps"]).items()
            }
            crash_attempts = {
                str(point): int(count)
                for point, count in dict(data.get("crash_attempts", {})).items()
            }
            return cls(
                fingerprint=str(data["fingerprint"]),
                mode=str(data["mode"]),
                steps=steps,
                crash_attempts=crash_attempts,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointCorruptError(f"malformed manifest: {error}") from error

    def save(self, path: str) -> None:
        """Atomically write the manifest (tmp-then-rename + fsync)."""
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(self.to_json(), stream, indent=1, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "JobManifest":
        """Read and validate a manifest; corruption raises the typed error."""
        try:
            with open(path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
        except (OSError, ValueError) as error:
            raise CheckpointCorruptError(f"unreadable manifest {path}: {error}") from error
        return cls.from_json(data)


def _dataset_chunks(partitions: List[List[Any]]) -> Iterator[bytes]:
    """Pickled payload frames for a partitioned dataset.

    Each frame carries ``(partition_count, partition_index, records)``
    so a restore rebuilds the exact partition layout — downstream
    operator output (and hence the final result) depends on it.
    """
    count = len(partitions)
    for index, partition in enumerate(partitions):
        if not partition:
            yield pickle.dumps((count, index, []), protocol=_PICKLE_PROTOCOL)
            continue
        for offset in range(0, len(partition), DATASET_CHUNK_RECORDS):
            chunk = partition[offset : offset + DATASET_CHUNK_RECORDS]
            yield pickle.dumps((count, index, chunk), protocol=_PICKLE_PROTOCOL)


class CheckpointManager:
    """Persists and restores pipeline boundaries for one discovery job.

    The discovery facade creates one manager per job (when the
    configured mode is not ``off``), attaches it to the execution
    environment as ``env.checkpoint``, and wraps each pipeline boundary
    in :meth:`step` / :meth:`step_dataset`.  The manager decides, per
    boundary, whether to load the persisted result (resume), compute and
    persist it, or merely pass through (granularity disabled) — and
    evaluates the fault plan's driver crash points on both sides of every
    enabled boundary.
    """

    def __init__(
        self,
        directory: str,
        mode: str,
        fingerprint: str,
        *,
        resume: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        metrics=None,
    ) -> None:
        if mode not in CHECKPOINT_MODES or mode == "off":
            raise ValueError(
                f"checkpoint mode must be 'phase' or 'stage', got {mode!r}"
            )
        self.directory = str(directory)
        self.mode = mode
        self.fingerprint = fingerprint
        self.resume = bool(resume)
        self.fault_plan = fault_plan
        self.metrics = metrics
        self.manifest: Optional[JobManifest] = None
        self._workspace_token: Optional[int] = None

    # -- lifecycle -----------------------------------------------------

    def open(self) -> None:
        """Create/validate the workspace and load or initialize the manifest.

        Resume semantics: a missing manifest means a clean fresh run; a
        corrupt manifest is discarded with a warning (clean recompute); a
        manifest for a different config fingerprint is a
        :class:`CheckpointMismatchError`.  A non-resume run always starts
        fresh, wiping stale step files.
        """
        os.makedirs(self.directory, exist_ok=True)
        self._workspace_token = workspace.register(
            self.directory, kind=workspace.TMP_ONLY
        )
        manifest_path = self._manifest_path()
        if self.resume and os.path.exists(manifest_path):
            try:
                manifest = JobManifest.load(manifest_path)
            except CheckpointCorruptError as error:
                self._warn(f"discarding corrupt manifest: {error}")
            else:
                if manifest.fingerprint != self.fingerprint:
                    raise CheckpointMismatchError(
                        "checkpoint manifest belongs to a different job "
                        f"configuration (manifest fingerprint "
                        f"{manifest.fingerprint}, this job {self.fingerprint}); "
                        "rerun without --resume to start over"
                    )
                manifest.mode = self.mode
                self.manifest = manifest
                return
        self._start_fresh()

    def close(self) -> None:
        """Detach from the workspace registry (checkpoints stay durable)."""
        if self._workspace_token is not None:
            workspace.unregister(self._workspace_token)
            self._workspace_token = None

    # -- step API ------------------------------------------------------

    def enabled(self, level: str) -> bool:
        """Whether boundaries of ``level`` granularity are checkpointed."""
        if level == PHASE:
            return self.mode in (PHASE, STAGE)
        if level == STAGE:
            return self.mode == STAGE
        raise ValueError(f"unknown checkpoint level {level!r}")

    def completed(self, name: str) -> bool:
        """Whether a durable checkpoint for ``name`` exists on disk."""
        return (
            self.manifest is not None
            and name in self.manifest.steps
            and os.path.exists(self._path(name))
        )

    def discard(self, name: str) -> None:
        """Drop a step's checkpoint (tests/benchmarks simulate partial state)."""
        if self.manifest is not None and name in self.manifest.steps:
            del self.manifest.steps[name]
            self._save_manifest()
        try:
            os.unlink(self._path(name))
        except OSError:
            pass

    def step(self, name: str, level: str, compute: Callable[[], Any]) -> Any:
        """Run one value boundary: restore it, or compute and persist it."""
        if not self.enabled(level):
            return compute()
        self._maybe_crash("before", name)
        value = self._restore(name, VALUE)
        if value is _MISSING:
            value = compute()
            self._persist(
                name,
                VALUE,
                [pickle.dumps(value, protocol=_PICKLE_PROTOCOL)],
            )
        self._maybe_crash("after", name)
        return value

    def step_dataset(self, name: str, level: str, env, compute: Callable[[], Any]) -> Any:
        """Like :meth:`step` for a partitioned DataSet boundary.

        Partitions are persisted in chunked frames and restored through
        ``env.from_partitions`` with the exact original layout, so every
        downstream stage sees the same per-worker data either way.
        """
        if not self.enabled(level):
            return compute()
        self._maybe_crash("before", name)
        payloads = self._restore(name, DATASET)
        if payloads is _MISSING:
            dataset = compute()
            self._persist(name, DATASET, _dataset_chunks(dataset.partitions))
        else:
            count = 1
            partitions: List[List[Any]] = []
            for raw in payloads:
                count, index, chunk = pickle.loads(raw)
                while len(partitions) < count:
                    partitions.append([])
                partitions[index].extend(chunk)
            while len(partitions) < count:
                partitions.append([])
            dataset = env.from_partitions(
                partitions, name=f"checkpoint/restore:{name}"
            )
        self._maybe_crash("after", name)
        return dataset

    # -- internals -----------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _path(self, name: str) -> str:
        safe = name.replace("/", "-")
        return os.path.join(self.directory, f"{safe}.ckpt")

    def _warn(self, message: str) -> None:
        print(f"checkpoint: {message}", file=sys.stderr, flush=True)

    def _start_fresh(self) -> None:
        for entry in os.listdir(self.directory):
            if entry.endswith(".ckpt") or entry.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.directory, entry))
                except OSError:
                    pass
        self.manifest = JobManifest(fingerprint=self.fingerprint, mode=self.mode)
        self._save_manifest()

    def _save_manifest(self) -> None:
        assert self.manifest is not None
        self.manifest.save(self._manifest_path())

    def _maybe_crash(self, moment: str, name: str) -> None:
        plan = self.fault_plan
        if plan is None or self.manifest is None:
            return
        point = f"{moment}:{name}"
        attempt = self.manifest.crash_attempts.get(point, 0)
        if not plan.decide_driver_crash(name, moment, attempt):
            return
        # Persist the incremented count FIRST: the abort below must not
        # re-fire on the resumed run (deterministic replay).
        self.manifest.crash_attempts[point] = attempt + 1
        self._save_manifest()
        self._warn(
            f"injected driver crash at {point} (attempt {attempt}); aborting"
        )
        sys.stderr.flush()
        sys.stdout.flush()
        # SIGKILL any pool workers first: a dead driver's cluster manager
        # would reclaim its containers, and orphaned idle workers holding
        # inherited stdout/stderr pipes would hang any pipe-reading parent.
        try:
            for child in multiprocessing.active_children():
                child.kill()
        except Exception:  # noqa: BLE001 - the abort must happen regardless
            pass
        os._exit(DRIVER_CRASH_EXIT_CODE)

    def _persist(self, name: str, kind: str, payloads: Iterable[bytes]) -> None:
        assert self.manifest is not None
        started = time.perf_counter()
        path = self._path(name)
        tmp = path + ".tmp"
        digest = hashlib.blake2b(digest_size=16)
        framed_bytes = 0
        header = pickle.dumps(
            {
                "magic": CHECKPOINT_MAGIC,
                "version": CHECKPOINT_VERSION,
                "step": name,
                "kind": kind,
                "fingerprint": self.fingerprint,
            },
            protocol=_PICKLE_PROTOCOL,
        )
        with open(tmp, "wb") as stream:
            framed_bytes += write_frame(stream, header)
            for payload in payloads:
                digest.update(payload)
                framed_bytes += write_frame(stream, payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
        seconds = time.perf_counter() - started
        self.manifest.steps[name] = StepRecord(
            kind=kind,
            digest=digest.hexdigest(),
            bytes=framed_bytes,
            seconds=seconds,
        )
        self._save_manifest()
        if self.metrics is not None:
            self.metrics.checkpoint_bytes += framed_bytes
            self.metrics.checkpoint_seconds += seconds
            stage = self.metrics.new_stage(f"checkpoint/save:{name}")
            stage.wall_seconds = seconds
            stage.records_out = [1]

    def _restore(self, name: str, kind: str):
        """The step's payload frames, or ``_MISSING`` when it must be computed.

        Any validation failure — frame CRC/truncation, digest mismatch,
        wrong header — degrades to ``_MISSING`` after dropping the bad
        checkpoint: a clean recompute, never a silently wrong load.
        """
        if not self.completed(name):
            return _MISSING
        started = time.perf_counter()
        try:
            payloads = self._read_step_file(name, kind)
        except CheckpointCorruptError as error:
            self._warn(f"recomputing step {name!r}: {error}")
            self.discard(name)
            return _MISSING
        seconds = time.perf_counter() - started
        if self.metrics is not None:
            self.metrics.resumed_stages += 1
            self.metrics.checkpoint_seconds += seconds
            stage = self.metrics.new_stage(f"checkpoint/resume:{name}")
            stage.wall_seconds = seconds
            stage.records_out = [len(payloads)]
        if kind == VALUE:
            return pickle.loads(payloads[0]) if payloads else _MISSING
        return payloads

    def _read_step_file(self, name: str, kind: str) -> List[bytes]:
        assert self.manifest is not None
        record = self.manifest.steps[name]
        if record.kind != kind:
            raise CheckpointCorruptError(
                f"step {name!r} has kind {record.kind!r}, expected {kind!r}"
            )
        digest = hashlib.blake2b(digest_size=16)
        payloads: List[bytes] = []
        try:
            with open(self._path(name), "rb") as stream:
                frames = iter_frames(stream)
                try:
                    header_raw = next(frames)
                except StopIteration:
                    raise CheckpointCorruptError("step file has no header frame")
                self._validate_header(name, kind, header_raw)
                for payload in frames:
                    digest.update(payload)
                    payloads.append(payload)
        except FrameError as error:
            raise CheckpointCorruptError(f"bad frame: {error}") from error
        except OSError as error:
            raise CheckpointCorruptError(f"unreadable step file: {error}") from error
        if digest.hexdigest() != record.digest:
            raise CheckpointCorruptError(
                f"payload digest mismatch (manifest {record.digest}, "
                f"file {digest.hexdigest()})"
            )
        return payloads

    def _validate_header(self, name: str, kind: str, raw: bytes) -> Dict[str, Any]:
        try:
            header = pickle.loads(raw)
        except Exception as error:  # noqa: BLE001 - any unpickle failure is corruption
            raise CheckpointCorruptError(f"unreadable header frame: {error}") from error
        if not isinstance(header, dict) or header.get("magic") != CHECKPOINT_MAGIC:
            raise CheckpointCorruptError("header magic mismatch")
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointCorruptError(
                f"unsupported checkpoint version {header.get('version')!r}"
            )
        if header.get("step") != name or header.get("kind") != kind:
            raise CheckpointCorruptError(
                f"header identifies step {header.get('step')!r} kind "
                f"{header.get('kind')!r}, expected {name!r}/{kind!r}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointCorruptError("header fingerprint mismatch")
        return header
