"""Broad-to-pertinent consolidation: minimality filtering (Section 7.3).

A broad CIND is *minimal* — and hence pertinent — unless it can be
inferred from another valid CIND by

* **dependent implication**: relaxing a binary dependent condition to one
  of its unary parts, or
* **referenced implication**: tightening a unary referenced condition to a
  binary one.

Any such implier has at least the support of the implied CIND (the
dependent either grows or stays identical), so an implier of a broad CIND
is itself broad; checking membership in the broad set is therefore a
complete minimality test.  The paper organizes this as two consolidation
rounds over the four arity classes (Ψ2:1 against Ψ1:1 and Ψ2:2, then Ψ1:1
and Ψ2:2 against Ψ1:2); the set-membership formulation here performs the
identical checks in a single pass.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.cind import CIND, Capture, SupportedCIND
from repro.core.extraction import BroadCINDs


def broad_cind_list(broad: BroadCINDs) -> List[SupportedCIND]:
    """Flatten the adjacency form into non-trivial ``SupportedCIND`` rows."""
    result: List[SupportedCIND] = []
    for dependent, (refs, support) in broad.items():
        for referenced in refs:
            cind = CIND(dependent, referenced)
            if not cind.is_trivial():
                result.append(SupportedCIND(cind, support))
    result.sort(key=lambda sc: (-sc.support, sc.cind))
    return result


def consolidate_pertinent(broad: BroadCINDs) -> List[SupportedCIND]:
    """Keep only the minimal CINDs among the broad ones.

    ``broad`` is the extractor's adjacency form: dependent capture ->
    (exact referenced captures, support).  Trivial inclusions are dropped
    on the fly.
    """
    pertinent: List[SupportedCIND] = []
    for dependent, (refs, support) in broad.items():
        relaxations = tuple(dependent.unary_relaxations())
        binary_parts = _binary_ref_index(refs)
        for referenced in refs:
            cind = CIND(dependent, referenced)
            if cind.is_trivial():
                continue
            if _dependent_implied(cind, relaxations, broad):
                continue
            if _referenced_implied(cind, binary_parts):
                continue
            pertinent.append(SupportedCIND(cind, support))
    pertinent.sort(key=lambda sc: (-sc.support, sc.cind))
    return pertinent


def _binary_ref_index(refs: FrozenSet[Capture]) -> Set[Capture]:
    """Unary relaxations of the binary captures among ``refs``.

    If a dependent's reference set contains a binary capture, the same
    capture relaxed to either unary part is a referenced-implication
    victim: the binary (tighter) inclusion implies the unary (looser) one.
    """
    index: Set[Capture] = set()
    for capture in refs:
        for relaxed in capture.unary_relaxations():
            index.add(relaxed)
    return index


def _dependent_implied(
    cind: CIND, relaxations: Tuple[Capture, ...], broad: BroadCINDs
) -> bool:
    """Is the CIND inferable by relaxing its (binary) dependent condition?

    A valid relaxed CIND ``(α, φ1') ⊆ ref`` with ``φ1 ⇒ φ1'`` implies the
    tighter ``(α, φ1) ⊆ ref`` because ``I(α, φ1) ⊆ I(α, φ1')``.  So the
    CIND is non-minimal when a relaxation of its dependent capture
    references the same capture in the broad set.
    """
    for relaxed in relaxations:
        entry = broad.get(relaxed)
        if entry is None:
            continue
        refs, _support = entry
        implier = CIND(relaxed, cind.referenced)
        if cind.referenced in refs and implier != cind and not implier.is_trivial():
            return True
    return False


def _referenced_implied(cind: CIND, binary_parts: Set[Capture]) -> bool:
    """Is the CIND inferable by tightening its (unary) referenced condition?

    The tightened implier shares the dependent capture, hence lives in the
    same adjacency row; ``binary_parts`` indexes the unary relaxations of
    that row's binary references.  A unary reference found there is
    implied — unless the only tightening is the trivial self-inclusion,
    which :func:`_binary_ref_index` cannot produce because trivial binary
    references never appear for the same dependent (a capture never
    references itself and arity classes differ).
    """
    referenced = cind.referenced
    if referenced.is_binary:
        return False
    return referenced in binary_parts


def count_minimal(broad: BroadCINDs) -> int:
    """Number of pertinent CINDs without materializing them all."""
    return len(consolidate_pertinent(broad))
