"""Tests for the dictionary-encoded columnar storage subsystem."""

import random
from array import array
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.discovery import RDFind, RDFindConfig
from repro.rdf.model import Attr, Dataset, Triple
from repro.rdf.store import TripleStore
from repro.sparql import BGPQuery, TriplePattern, Var, evaluate
from repro.storage import (
    EncodedDataset,
    EncodedTriple,
    TermDictionary,
    VerticalPartitionStore,
)
from tests.conftest import random_rdf

UNICODE_TERMS = [
    "http://example.org/résumé",
    "日本語のリテラル",
    "emoji \U0001f600 term",
    '"literal"@ру',
    "plain",
    "",
]


class TestTermDictionary:
    def test_ids_are_dense_and_first_seen(self):
        dictionary = TermDictionary()
        assert [dictionary.encode(t) for t in ("a", "b", "a", "c")] == [0, 1, 0, 2]
        assert len(dictionary) == 3

    def test_decode_encode_roundtrip_unicode(self):
        dictionary = TermDictionary()
        for term in UNICODE_TERMS:
            assert dictionary.decode(dictionary.encode(term)) == term

    def test_ids_stable_under_incremental_appends(self):
        dictionary = TermDictionary()
        first = {t: dictionary.encode(t) for t in ("a", "b", "c")}
        dictionary.encode_many(UNICODE_TERMS)
        # appending new terms never moves existing ids
        for term, term_id in first.items():
            assert dictionary.encode(term) == term_id
            assert dictionary.lookup(term) == term_id
        # and re-encoding after the append is still a pure lookup
        assert dictionary.encode("b") == first["b"]

    def test_lookup_unknown_returns_none(self):
        assert TermDictionary().lookup("nope") is None

    def test_triple_roundtrip(self):
        dictionary = TermDictionary()
        triple = Triple("s", "p", "o")
        encoded = dictionary.encode_triple(triple)
        assert isinstance(encoded, EncodedTriple)
        assert dictionary.decode_triple(encoded) == triple

    def test_typecode_and_nbytes(self):
        dictionary = TermDictionary()
        dictionary.encode_many(["a", "bb", "ccc"])
        assert dictionary.typecode == "i"
        assert dictionary.nbytes() > 0


class TestEncodedDatasetColumns:
    def test_from_terms_matches_dataset_encode(self):
        dataset = random_rdf(5, n_triples=60)
        direct = EncodedDataset.from_terms(dataset.triples, name=dataset.name)
        via_dataset = dataset.encode()
        assert list(direct) == list(via_dataset)
        assert list(direct.dictionary.terms()) == list(
            via_dataset.dictionary.terms()
        )

    def test_from_terms_deduplicates(self):
        rows = [("a", "p", "b"), ("a", "p", "b"), ("a", "p", "c")]
        encoded = EncodedDataset.from_terms(rows)
        assert len(encoded) == 2

    def test_columns_are_parallel_arrays(self):
        encoded = random_rdf(6, n_triples=40).encode()
        s, p, o = encoded.columns
        assert isinstance(s, array)
        assert len(s) == len(p) == len(o) == len(encoded)
        assert list(encoded)[0] == EncodedTriple(s[0], p[0], o[0])

    def test_values_agree_with_row_iteration(self):
        encoded = random_rdf(7, n_triples=50).encode()
        for attr in (Attr.S, Attr.P, Attr.O):
            assert encoded.values(attr) == Counter(
                t.get(attr) for t in encoded
            )

    def test_decode_roundtrip(self):
        dataset = random_rdf(8, n_triples=45)
        assert dataset.encode().decode().triples == dataset.triples

    def test_append_ids_widens_past_int32(self):
        encoded = EncodedDataset()
        encoded.append_ids(1, 2, 3)
        assert encoded.columns[0].typecode == "i"
        encoded.append_ids(2**40, 4, 5)
        assert encoded.columns[0].typecode == "q"
        assert list(encoded) == [
            EncodedTriple(1, 2, 3),
            EncodedTriple(2**40, 4, 5),
        ]

    def test_cells_and_nbytes(self):
        encoded = random_rdf(9, n_triples=30).encode()
        assert encoded.cells == 3 * len(encoded)
        assert encoded.nbytes() > 0


def _pattern_terms(dataset):
    subjects = sorted(dataset.distinct_values(Attr.S))
    predicates = sorted(dataset.distinct_values(Attr.P))
    objects = sorted(dataset.distinct_values(Attr.O))
    return subjects, predicates, objects


class TestVerticalPartitionStoreEquivalence:
    @pytest.fixture
    def dataset(self):
        return random_rdf(11, n_triples=120, n_subjects=8, n_objects=8)

    @pytest.fixture
    def baseline(self, dataset):
        return TripleStore.from_dataset(dataset)

    @pytest.fixture
    def vertical(self, dataset):
        return VerticalPartitionStore.from_encoded(dataset.encode())

    def test_len_and_iter_roundtrip(self, dataset, baseline, vertical):
        assert len(vertical) == len(baseline) == len(dataset)
        assert sorted(vertical) == sorted(baseline)
        assert vertical.to_dataset() == dataset

    def test_vocabulary_views(self, baseline, vertical):
        assert vertical.subjects() == baseline.subjects()
        assert vertical.predicates() == baseline.predicates()
        assert vertical.objects() == baseline.objects()

    def test_randomized_patterns_agree(self, dataset, baseline, vertical):
        subjects, predicates, objects = _pattern_terms(dataset)
        rng = random.Random(99)
        for _ in range(300):
            s = rng.choice(subjects + [None, "missing-term"])
            p = rng.choice(predicates + [None, "missing-term"])
            o = rng.choice(objects + [None, "missing-term"])
            expected = sorted(baseline.match(s, p, o))
            got = sorted(vertical.match(s, p, o))
            assert got == expected, (s, p, o)
            estimate = vertical.cardinality_estimate(s, p, o)
            assert estimate >= len(expected), (s, p, o)

    @settings(max_examples=60, deadline=None)
    @given(
        s=st.sampled_from(["s0", "s1", "x0", "absent", None]),
        p=st.sampled_from(["p0", "p1", "p2", "absent", None]),
        o=st.sampled_from(["o0", "o1", "x1", "absent", None]),
    )
    def test_property_patterns_agree(self, s, p, o):
        dataset = random_rdf(13, n_triples=90, n_subjects=6, n_objects=6)
        baseline = TripleStore.from_dataset(dataset)
        vertical = VerticalPartitionStore.from_encoded(dataset.encode())
        assert sorted(vertical.match(s, p, o)) == sorted(baseline.match(s, p, o))

    def test_full_scan_is_deterministic(self, vertical):
        assert list(vertical.match()) == list(vertical.match())

    def test_contains_and_add(self, dataset):
        store = VerticalPartitionStore()
        assert store.add_all(dataset) == len(dataset)
        assert store.add_all(dataset) == 0  # all duplicates
        first = dataset.triples[0]
        assert first in store
        assert Triple("no", "such", "triple") not in store

    def test_from_dataset_equals_from_encoded(self, dataset):
        a = VerticalPartitionStore.from_dataset(dataset)
        b = VerticalPartitionStore.from_encoded(dataset.encode())
        assert sorted(a) == sorted(b)
        assert a.predicate_ids() == b.predicate_ids()

    def test_match_ids_fast_path(self, dataset, vertical):
        dictionary = vertical.dictionary
        triple = dataset.triples[0]
        p_id = dictionary.lookup(triple.p)
        rows = list(vertical.match_ids(p_id=p_id))
        assert all(row.p == p_id for row in rows)
        assert len(rows) == sum(1 for t in dataset if t.p == triple.p)

    def test_nbytes_positive(self, vertical):
        assert vertical.nbytes() > 0


class TestSparqlOnEitherStore:
    def test_query_results_agree(self):
        dataset = random_rdf(17, n_triples=100, n_subjects=7, n_objects=7)
        x, y = Var("x"), Var("y")
        predicate = sorted(dataset.distinct_values(Attr.P))[0]
        query = BGPQuery(
            patterns=(
                TriplePattern(x, predicate, y),
                TriplePattern(x, "p1", y),
            ),
            projection=(x, y),
        )
        rows_hash, _ = evaluate(TripleStore.from_dataset(dataset), query)
        rows_vertical, _ = evaluate(
            VerticalPartitionStore.from_encoded(dataset.encode()), query
        )
        assert rows_vertical == rows_hash


class TestStorageVariantIdentity:
    def test_discovery_output_is_byte_identical(self):
        dataset = random_rdf(23, n_triples=150, n_subjects=8, n_objects=8)
        results = {}
        for storage in ("strings", "encoded"):
            config = RDFindConfig(
                support_threshold=3, parallelism=3, storage=storage
            )
            result = RDFind(config).discover(dataset)
            results[storage] = (
                result.render_cinds(),
                result.render_association_rules(),
            )
        assert results["encoded"] == results["strings"]

    def test_encoded_run_uses_columnar_stages(self):
        dataset = random_rdf(29, n_triples=80)
        result = RDFind(RDFindConfig(support_threshold=3)).discover(dataset)
        names = [stage.name for stage in result.metrics.stages]
        assert "fc/unary-columnar" in names
        assert "fc/binary-columnar" in names

    def test_strings_run_uses_dataflow_stages(self):
        dataset = random_rdf(29, n_triples=80)
        config = RDFindConfig(support_threshold=3, storage="strings")
        result = RDFind(config).discover(dataset)
        names = [stage.name for stage in result.metrics.stages]
        assert "fc/unary-counters" in names
        assert not any("columnar" in name for name in names)

    def test_invalid_storage_rejected(self):
        with pytest.raises(ValueError):
            RDFindConfig(storage="parquet")

    def test_loader_encoding_matches_post_hoc_encoding(self):
        from repro.datasets.registry import load

        direct = load("Countries", scale=0.1, encoded=True)
        assert isinstance(direct, EncodedDataset)
        via_strings = load("Countries", scale=0.1).encode()
        assert list(direct) == list(via_strings)
        assert list(direct.dictionary.terms()) == list(
            via_strings.dictionary.terms()
        )
