"""Snapshot warm-start benchmark: mmap load vs N-Triples re-parse.

The job server and ``--resume`` both want a dataset back *now*; before
snapshots, every warm start re-tokenized and re-interned the whole
N-Triples file.  This bench writes Diseasome to disk once, then times

1.  the cold path — ``parse_ntriples_file`` + dictionary encoding, and
2.  the warm path — :func:`repro.storage.snapshot.load_snapshot`
    (mmap + three ``frombytes`` column adoptions + lazy term decode),

asserts the snapshot is at least ``MIN_SPEEDUP``x faster, that it
reproduces the source dataset's exact checkpoint digest, and that
end-to-end discovery from the snapshot is byte-identical to the
parse-from-source run on both executors.

Writes ``BENCH_snapshot.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.discovery import RDFind, RDFindConfig
from repro.core.serialization import result_to_dict
from repro.dataflow.checkpoint import dataset_digest
from repro.datasets import registry
from repro.rdf.ntriples import parse_ntriples_file, write_ntriples_file
from repro.storage.snapshot import load_snapshot, save_snapshot

DATASET = "Diseasome"
H = 10
#: Acceptance floor: snapshot load vs N-Triples parse + encode.
MIN_SPEEDUP = 20.0

OUTPUT_JSON = Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"


def _discovery_digest(dataset, executor: str) -> str:
    config = RDFindConfig(support_threshold=H, executor=executor)
    result = RDFind(config).discover(dataset)
    return json.dumps(result_to_dict(result), sort_keys=True)


def test_snapshot_load(benchmark, report, tmp_path):
    nt_path = str(tmp_path / "diseasome.nt")
    snap_path = str(tmp_path / "diseasome.snap")
    write_ntriples_file(registry.load(DATASET), nt_path)

    def body():
        started = time.perf_counter()
        parsed = parse_ntriples_file(nt_path).encode()
        parse_seconds = time.perf_counter() - started

        started = time.perf_counter()
        save_snapshot(parsed, snap_path)
        save_seconds = time.perf_counter() - started

        started = time.perf_counter()
        loaded = load_snapshot(snap_path)
        load_seconds = time.perf_counter() - started

        assert dataset_digest(loaded) == dataset_digest(parsed)

        identity = {}
        for executor in ("serial", "process"):
            source_digest = _discovery_digest(parsed, executor)
            snap_digest = _discovery_digest(load_snapshot(snap_path), executor)
            identity[executor] = source_digest == snap_digest
        return {
            "triples": len(parsed),
            "terms": len(parsed.dictionary),
            "nt_bytes": os.path.getsize(nt_path),
            "snap_bytes": os.path.getsize(snap_path),
            "parse_seconds": parse_seconds,
            "save_seconds": save_seconds,
            "load_seconds": load_seconds,
            "identity": identity,
        }

    row = benchmark.pedantic(body, rounds=1, iterations=1)
    speedup = row["parse_seconds"] / max(row["load_seconds"], 1e-9)

    section = report.section(
        f"Snapshot load — {DATASET} ({row['triples']:,} triples, h={H})"
    )
    section.row(
        f"parse+encode {row['parse_seconds']*1000:8.1f}ms ->"
        f" mmap load {row['load_seconds']*1000:6.1f}ms"
        f" ({speedup:6.1f}x; save {row['save_seconds']*1000:6.1f}ms)"
    )
    section.row(
        f"file size {row['nt_bytes']:,} B N-Triples ->"
        f" {row['snap_bytes']:,} B snapshot"
    )
    section.row(
        "discovery from snapshot byte-identical:"
        f" serial={row['identity']['serial']}"
        f" process={row['identity']['process']}"
    )

    OUTPUT_JSON.write_text(
        json.dumps(dict(row, speedup=speedup, h=H), indent=2, sort_keys=True)
        + "\n"
    )

    assert all(row["identity"].values())
    assert speedup >= MIN_SPEEDUP
