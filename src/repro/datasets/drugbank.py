"""DrugBank: drugs, targets, and interactions.

The paper profiles the full 517k-triple DrugBank dump; the generator's
default ``scale=1.0`` produces ~1/6 of that (documented scale factor, see
DESIGN.md) so the whole benchmark harness stays laptop-sized.  Planted
structure:

* the paper's knowledge-discovery example — everything targeted by
  ``drug/30`` is also targeted by ``drug/47``
  (``(o, s=drug/30 ∧ p=target) ⊆ (o, s=drug/47 ∧ p=target)``, support 14);
* classification-function literals with a planted hierarchy: everything
  classified ``"hydrolase activity"`` is also classified
  ``"catalytic activity"`` (the paper's ontology-engineering hint);
* per-category brand-name vocabularies and unique CAS numbers for the
  long tail.
"""

from __future__ import annotations

from repro.datasets.synth import GraphBuilder, entity_names, scaled
from repro.rdf.model import Dataset, EncodedDataset

DRUG_CATEGORIES = (
    "SmallMolecule",
    "Biotech",
    "Approved",
    "Experimental",
    "Nutraceutical",
    "Illicit",
    "Withdrawn",
)

CLASSIFICATION_PAIRS = (
    ('"hydrolase activity"', '"catalytic activity"'),
    ('"kinase activity"', '"catalytic activity"'),
    ('"dna binding"', '"binding"'),
    ('"protein binding"', '"binding"'),
)


def drugbank(scale: float = 1.0, seed: int = 404, encoded: bool = False) -> "Dataset | EncodedDataset":
    """Generate the DrugBank dataset (~85k triples at scale 1; paper: 517k)."""
    builder = GraphBuilder("DrugBank", seed)
    rng = builder.rng

    n_drugs = scaled(3600, scale, minimum=60)
    n_targets = scaled(6500, scale, minimum=40)
    drug_uris = entity_names("drug", n_drugs)
    target_uris = entity_names("target", n_targets)
    target_chooser = builder.zipf(target_uris, alpha=0.8)
    category_chooser = builder.zipf(DRUG_CATEGORIES, alpha=0.6)

    for index, drug in enumerate(drug_uris):
        builder.add_type(drug, "Drug")
        builder.add_type(drug, category_chooser.choice())
        builder.add(drug, "name", f'"Drug {index}"')
        builder.add(drug, "casNumber", f'"{index:05d}-{index % 83:02d}-{index % 7}"')
        builder.add(drug, "state", '"solid"' if rng.random() < 0.7 else '"liquid"')
        if rng.random() < 0.6:
            builder.add(drug, "halfLife", f'"{rng.randint(1, 96)} hours"')
        if index not in (30 % n_drugs, 47 % n_drugs):
            # the two special drugs get only the planted target sets below
            # sorted(): set order follows per-process string hashing; keep
            # generation process-independent so resume runs see the same bytes.
            for target in sorted({target_chooser.choice() for _ in range(rng.randint(1, 6))}):
                builder.add(drug, "target", target)
        for other_index in builder.pick_some(range(n_drugs), 0, 8):
            if other_index != index:
                builder.add(drug, "interactsWith", drug_uris[other_index])
        for brand in range(rng.randint(0, 3)):
            builder.add(drug, "brandName", f'"Brand {index}-{brand}"')

    for index, target in enumerate(target_uris):
        builder.add_type(target, "Target")
        builder.add(target, "name", f'"Target {index}"')
        builder.add(target, "geneName", f'"GENE{index}"')
        specific, general = CLASSIFICATION_PAIRS[index % len(CLASSIFICATION_PAIRS)]
        builder.add(target, "classificationFunction", specific)
        builder.add(target, "classificationFunction", general)
        if rng.random() < 0.5:
            builder.add(target, "cellularLocation", builder.pick(
                ('"membrane"', '"cytoplasm"', '"nucleus"', '"extracellular"')
            ))

    # The paper's drug/30 ⊆ drug/47 target-set example (support 14).
    special_targets = target_uris[:14]
    for target in special_targets:
        builder.add(drug_uris[30 % n_drugs], "target", target)
        builder.add(drug_uris[47 % n_drugs], "target", target)
    for target in target_uris[14:20]:
        builder.add(drug_uris[47 % n_drugs], "target", target)

    return builder.build_encoded() if encoded else builder.build()
