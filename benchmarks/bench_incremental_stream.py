"""Streaming maintenance benchmark: delta updates vs full re-discovery.

The streaming subsystem's whole reason to exist: after a batch of
add/remove updates, answering ``pertinent_cinds()`` from the maintained
state must be much cheaper than re-running batch RDFind on the
materialized dataset.  This bench loads ~90% of Diseasome into a
:class:`~repro.streaming.maintainer.StreamingRDFind`, then sweeps update
batch sizes — each batch a mix of adds (from the held-out tail) and
removes (of loaded triples) — timing

1.  the delta path — apply the batch to the maintainer + query, and
2.  the full path — materialize the post-batch dataset and run
    ``RDFind(...).discover`` from scratch,

asserting the two agree exactly (same pertinent CIND set) and that the
delta path wins at every batch size.

Writes ``BENCH_stream.json`` at the repo root.
"""

import json
import random
import time
from pathlib import Path

from repro.core.discovery import RDFind, RDFindConfig
from repro.datasets import registry
from repro.streaming import StreamingRDFind

DATASET = "Diseasome"
H = 10
BATCH_SIZES = [1, 8, 64, 512]
#: Acceptance floor: per-batch delta maintenance vs full re-discovery.
MIN_SPEEDUP = 1.0

OUTPUT_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"


def batch_cind_set(dataset):
    result = RDFind(RDFindConfig(support_threshold=H)).discover(dataset)
    dictionary = result.dictionary
    return {
        (sc.cind.render(dictionary), sc.support) for sc in result.cinds
    }


def stream_cind_set(maintainer):
    cinds, _rules = maintainer.batch_result()
    dictionary = maintainer.dictionary
    return {
        (sc.cind.render(dictionary), sc.support) for sc in cinds
    }


def test_streaming_vs_full_rerun(benchmark, report):
    rng = random.Random(42)
    triples = list(registry.load(DATASET))
    split = int(len(triples) * 0.9)
    initial, tail = triples[:split], triples[split:]

    def body():
        maintainer = StreamingRDFind(h=H)
        maintainer.add_all(initial)
        maintainer.pertinent_cinds()  # settle the caches

        live = list(initial)
        tail_pool = list(tail)
        rows = []
        for batch_size in BATCH_SIZES:
            batch = []
            for _ in range(batch_size):
                if live and (not tail_pool or rng.random() < 0.5):
                    victim = live.pop(rng.randrange(len(live)))
                    batch.append(("remove", victim))
                else:
                    fresh = tail_pool.pop(rng.randrange(len(tail_pool)))
                    live.append(fresh)
                    batch.append(("add", fresh))

            started = time.perf_counter()
            for op, triple in batch:
                maintainer.apply(op, triple)
            delta_set = stream_cind_set(maintainer)
            delta_seconds = time.perf_counter() - started

            started = time.perf_counter()
            full_set = batch_cind_set(maintainer.materialize())
            full_seconds = time.perf_counter() - started

            assert delta_set == full_set
            rows.append(
                {
                    "batch_size": batch_size,
                    "live_triples": maintainer.triples,
                    "cinds": len(delta_set),
                    "delta_seconds": delta_seconds,
                    "full_seconds": full_seconds,
                    "speedup": full_seconds / max(delta_seconds, 1e-9),
                }
            )
        return {
            "dataset": DATASET,
            "h": H,
            "initial_triples": len(initial),
            "batches": rows,
        }

    result = benchmark.pedantic(body, rounds=1, iterations=1)

    section = report.section(
        f"Streaming maintenance — {DATASET} "
        f"({result['initial_triples']:,} initial triples, h={H})"
    )
    for row in result["batches"]:
        section.row(
            f"batch {row['batch_size']:>4}: delta "
            f"{row['delta_seconds']*1000:8.1f}ms vs full re-run "
            f"{row['full_seconds']*1000:8.1f}ms "
            f"({row['speedup']:6.1f}x, {row['cinds']:,} CINDs agree)"
        )

    OUTPUT_JSON.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    for row in result["batches"]:
        assert row["speedup"] >= MIN_SPEEDUP, row
