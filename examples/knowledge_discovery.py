"""Use case: knowledge discovery (paper Appendix B).

Low-support CINDs reveal instance-level facts that are not explicitly
stated in the data.  This example recovers the paper's three showcases:

* the AC/DC fact — Angus and Malcolm Young wrote all their songs
  together (mutual CINDs with support 26);
* area code 559 lies entirely within California (support 98);
* everything one drug targets is targeted by another (support 14).

Run with::

    python examples/knowledge_discovery.py
"""

from repro import find_pertinent_cinds
from repro.apps import discover_knowledge
from repro.datasets import db14_mpce, drugbank


def main() -> None:
    print("=== DB14-MPCE (DBpedia-like) ===")
    result = find_pertinent_cinds(db14_mpce().encode(), support_threshold=25)
    facts = discover_knowledge(result, min_support=20)
    equivalences = [f for f in facts if f.kind == "equivalence"]
    rules = [f for f in facts if f.kind == "rule"]
    print(f"{len(rules)} rules, {len(equivalences)} equivalences; highlights:")
    for fact in facts:
        text = fact.describe()
        if "Young" in text or "559" in text:
            print("  " + text)

    rendered = {f.describe() for f in facts}
    assert any("Angus_Young" in r and "Malcolm_Young" in r for r in rendered)
    assert any('areaCode="559"' in r and "California" in r for r in rendered)

    print("\n=== DrugBank ===")
    result = find_pertinent_cinds(drugbank().encode(), support_threshold=10)
    facts = discover_knowledge(result, min_support=10)
    drug_rules = [
        f for f in facts
        if f.kind == "rule" and "drug/" in f.lhs and "drug/" in f.rhs
    ]
    print(f"{len(drug_rules)} drug-target rules; the paper's pattern:")
    for fact in drug_rules[:5]:
        print("  " + fact.describe())
    assert any(f.support == 14 for f in drug_rules), "planted support-14 rule"

    print("\npaper examples recovered ✔")


if __name__ == "__main__":
    main()
