"""Torture tests for the durable triple changelog (PR 4/5 harness style)."""

import os

import pytest

from repro.core.framing import FRAME_HEADER
from repro.streaming.changelog import (
    OP_ADD,
    OP_REMOVE,
    ChangeLog,
    ChangeLogCorruptError,
    ChangeLogError,
    ChangeRecord,
)


def fill(log, count, start=0):
    for index in range(start, start + count):
        op = OP_ADD if index % 3 else OP_REMOVE
        log.append(op, f"s{index}", f"p{index % 4}", f"o{index}")


def segment_files(directory):
    return sorted(
        name for name in os.listdir(directory) if name.startswith("seg-")
    )


class TestRoundtrip:
    def test_append_replay_roundtrip(self, tmp_path):
        directory = str(tmp_path / "log")
        with ChangeLog(directory) as log:
            seqs = [
                log.append(OP_ADD, "a", "p", "x"),
                log.append(OP_ADD, "b", "p", "y"),
                log.append(OP_REMOVE, "a", "p", "x"),
            ]
            assert seqs == [1, 2, 3]
            records = list(log.replay())
        assert records == [
            ChangeRecord(1, "add", "a", "p", "x"),
            ChangeRecord(2, "add", "b", "p", "y"),
            ChangeRecord(3, "remove", "a", "p", "x"),
        ]
        # A fresh reader sees the same history.
        with ChangeLog(directory) as log:
            assert list(log.replay()) == records
            assert log.last_seq == 3

    def test_bad_op_rejected(self, tmp_path):
        with ChangeLog(str(tmp_path / "log")) as log:
            with pytest.raises(ValueError):
                log.append("upsert", "a", "b", "c")

    def test_closed_log_rejects_appends(self, tmp_path):
        log = ChangeLog(str(tmp_path / "log"))
        log.close()
        with pytest.raises(ChangeLogError):
            log.append(OP_ADD, "a", "b", "c")

    def test_unicode_terms_roundtrip(self, tmp_path):
        with ChangeLog(str(tmp_path / "log")) as log:
            log.append(OP_ADD, "søren", "häßt", "naïveté ∧ 空")
            (record,) = list(log.replay())
        assert record.triple == ("søren", "häßt", "naïveté ∧ 空")


class TestRotation:
    def test_rotation_seals_segments(self, tmp_path):
        directory = str(tmp_path / "log")
        with ChangeLog(directory, max_segment_bytes=256) as log:
            fill(log, 40)
            assert log.segment_count > 1
            assert len(list(log.replay())) == 40
        names = segment_files(directory)
        assert sum(name.endswith(".log") for name in names) >= 2
        assert sum(name.endswith(".open") for name in names) <= 1
        # Sealed names pin their first sequence number.
        assert names[0] == "seg-000000000001.log"

    def test_reopen_after_rotation(self, tmp_path):
        directory = str(tmp_path / "log")
        with ChangeLog(directory, max_segment_bytes=256) as log:
            fill(log, 40)
            tail = log.last_seq
        with ChangeLog(directory, max_segment_bytes=256) as log:
            assert log.last_seq == tail
            fill(log, 10, start=100)
            assert len(list(log.replay())) == 50

    def test_replay_from_offset_skips_whole_segments(self, tmp_path):
        directory = str(tmp_path / "log")
        with ChangeLog(directory, max_segment_bytes=256) as log:
            fill(log, 60)
            suffix = list(log.replay(after_seq=45))
            assert [record.seq for record in suffix] == list(range(46, 61))
            assert list(log.replay(after_seq=60)) == []


class TestCorruption:
    def test_truncated_open_tail_dropped_with_warning(self, tmp_path):
        directory = str(tmp_path / "log")
        log = ChangeLog(directory)
        fill(log, 5)
        log.close()
        (open_name,) = [
            n for n in segment_files(directory) if n.endswith(".open")
        ]
        path = os.path.join(directory, open_name)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        with pytest.warns(UserWarning, match="truncated tail"):
            log = ChangeLog(directory)
        assert log.last_seq == 4
        # The log keeps working: the torn record's seq is reused.
        assert log.append(OP_ADD, "new", "p", "o") == 5
        assert len(list(log.replay())) == 5
        log.close()

    def test_crc_damage_in_open_segment_raises(self, tmp_path):
        directory = str(tmp_path / "log")
        log = ChangeLog(directory)
        fill(log, 5)
        log.close()
        (open_name,) = [
            n for n in segment_files(directory) if n.endswith(".open")
        ]
        path = os.path.join(directory, open_name)
        with open(path, "r+b") as handle:
            handle.seek(FRAME_HEADER.size + 2)  # inside record 1's payload
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(ChangeLogCorruptError):
            ChangeLog(directory)

    def test_sealed_segment_damage_raises_on_replay(self, tmp_path):
        directory = str(tmp_path / "log")
        with ChangeLog(directory, max_segment_bytes=128) as log:
            fill(log, 30)
            sealed = [n for n in segment_files(directory) if n.endswith(".log")]
            assert sealed
        path = os.path.join(directory, sealed[0])
        with open(path, "r+b") as handle:
            handle.seek(FRAME_HEADER.size + 1)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        log = ChangeLog(directory)  # recovery only scans the tail
        with pytest.raises(ChangeLogCorruptError):
            list(log.replay())
        log.close()

    def test_truncated_sealed_segment_raises(self, tmp_path):
        directory = str(tmp_path / "log")
        with ChangeLog(directory, max_segment_bytes=128) as log:
            fill(log, 30)
            sealed = [n for n in segment_files(directory) if n.endswith(".log")]
        path = os.path.join(directory, sealed[-1])
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 2)
        # The damaged sealed segment is the one recovery scans for the
        # tail seq, so the error surfaces at open time.
        with pytest.raises(ChangeLogCorruptError):
            ChangeLog(directory)

    def test_multiple_open_segments_rejected(self, tmp_path):
        directory = str(tmp_path / "log")
        log = ChangeLog(directory)
        fill(log, 3)
        log.close()
        stray = os.path.join(directory, "seg-000000000099.open")
        with open(stray, "wb"):
            pass
        with pytest.raises(ChangeLogCorruptError, match="multiple open"):
            ChangeLog(directory)
