"""Indexed in-memory triple store with triple-pattern matching.

The SPARQL query-minimization use case (Appendix B / Figure 14 of the
paper) needs a substrate that can answer basic graph patterns.  This store
keeps three hash indexes (by subject, predicate, and object) plus the
pairwise ``(p, o)`` and ``(p, s)`` indexes that condition evaluation and
selective scans benefit from, and exposes a :meth:`match` primitive over
``None``-wildcarded patterns.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.model import Dataset, Triple


Pattern = Tuple[Optional[str], Optional[str], Optional[str]]


class TripleStore:
    """An in-memory triple store supporting pattern matching.

    Lookup strategy: the most selective available index for the bound
    positions of the pattern is used; fully unbound patterns scan.
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: Set[Triple] = set()
        self._by_s: Dict[str, Set[Triple]] = defaultdict(set)
        self._by_p: Dict[str, Set[Triple]] = defaultdict(set)
        self._by_o: Dict[str, Set[Triple]] = defaultdict(set)
        self._by_po: Dict[Tuple[str, str], Set[Triple]] = defaultdict(set)
        self._by_sp: Dict[Tuple[str, str], Set[Triple]] = defaultdict(set)
        self.add_all(triples)

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "TripleStore":
        """Index all triples of ``dataset``."""
        return cls(dataset)

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns True if it was new."""
        if not isinstance(triple, Triple):
            triple = Triple(*triple)
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_s[triple.s].add(triple)
        self._by_p[triple.p].add(triple)
        self._by_o[triple.o].add(triple)
        self._by_po[(triple.p, triple.o)].add(triple)
        self._by_sp[(triple.s, triple.p)].add(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number that were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple; returns True if it was present."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        for index, key in (
            (self._by_s, triple.s),
            (self._by_p, triple.p),
            (self._by_o, triple.o),
            (self._by_po, (triple.p, triple.o)),
            (self._by_sp, (triple.s, triple.p)),
        ):
            bucket = index[key]
            bucket.discard(triple)
            if not bucket:
                del index[key]  # keep vocabulary views exact
        return True

    def match(
        self,
        s: Optional[str] = None,
        p: Optional[str] = None,
        o: Optional[str] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the pattern (None = wildcard).

        A fully unbound pattern scans in sorted triple order, so repeated
        scans (and everything built on them, e.g. SPARQL results) are
        deterministic rather than subject to ``set`` iteration order.
        """
        if s is None and p is None and o is None:
            candidates: Iterable[Triple] = sorted(self._triples)
        else:
            candidates = self._candidates(s, p, o)
        for triple in candidates:
            if s is not None and triple.s != s:
                continue
            if p is not None and triple.p != p:
                continue
            if o is not None and triple.o != o:
                continue
            yield triple

    def count(
        self,
        s: Optional[str] = None,
        p: Optional[str] = None,
        o: Optional[str] = None,
    ) -> int:
        """Number of triples matching the pattern."""
        return sum(1 for _ in self.match(s, p, o))

    def cardinality_estimate(
        self,
        s: Optional[str] = None,
        p: Optional[str] = None,
        o: Optional[str] = None,
    ) -> int:
        """Cheap upper bound on the match count (index bucket size)."""
        return len(self._candidates(s, p, o))

    def _candidates(
        self, s: Optional[str], p: Optional[str], o: Optional[str]
    ) -> Iterable[Triple]:
        if s is not None and p is not None:
            return self._by_sp.get((s, p), ())
        if p is not None and o is not None:
            return self._by_po.get((p, o), ())
        if s is not None:
            return self._by_s.get(s, ())
        if o is not None:
            return self._by_o.get(o, ())
        if p is not None:
            return self._by_p.get(p, ())
        return self._triples

    def subjects(self) -> Set[str]:
        """Distinct subjects."""
        return set(self._by_s)

    def predicates(self) -> Set[str]:
        """Distinct predicates."""
        return set(self._by_p)

    def objects(self) -> Set[str]:
        """Distinct objects."""
        return set(self._by_o)

    def to_dataset(self, name: str = "") -> Dataset:
        """Materialize the store contents as a :class:`Dataset`."""
        return Dataset(sorted(self._triples), name=name)
