"""Materializing discovered schema hints as RDFS triples.

Closes the ontology-reverse-engineering loop (Appendix B): the hints
mined by :func:`repro.apps.ontology.reverse_engineer_ontology` become an
RDF dataset using the RDFS vocabulary —

========================  =========================================
hint kind                 emitted triple
========================  =========================================
``subclass``              ``C1 rdfs:subClassOf C2``
``subproperty``           ``P1 rdfs:subPropertyOf P2``
``domain``                ``P rdfs:domain C``
``range``                 ``P rdfs:range C``
``class``                 ``C rdf:type rdfs:Class``
========================  =========================================

— which can be serialized as N-Triples, loaded into a store, or merged
back into the instance data.  Mutually-subsuming class pairs (equal
extents produce subclass hints both ways) are optionally collapsed into
``owl:equivalentClass`` statements.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.apps.ontology import OntologyHint
from repro.rdf.model import Dataset, Triple
from repro.rdf.namespaces import OWL, RDF, RDFS


def materialize_ontology(
    hints: Iterable[OntologyHint],
    collapse_equivalences: bool = True,
    min_support: int = 1,
) -> Dataset:
    """Turn ontology hints into an RDFS/OWL dataset.

    With ``collapse_equivalences`` (default), subclass hints that occur in
    both directions between the same two classes are emitted as a single
    ``owl:equivalentClass`` statement instead of a cycle.
    """
    rows = [hint for hint in hints if hint.support >= min_support]

    subclass_pairs: Set[Tuple[str, str]] = {
        (hint.subject, hint.object) for hint in rows if hint.kind == "subclass"
    }
    equivalent: Set[Tuple[str, str]] = set()
    if collapse_equivalences:
        for subject, obj in subclass_pairs:
            if (obj, subject) in subclass_pairs and subject < obj:
                equivalent.add((subject, obj))

    triples: List[Triple] = []
    emitted_classes: Set[str] = set()
    for hint in rows:
        if hint.kind == "subclass":
            pair = tuple(sorted((hint.subject, hint.object)))
            if pair in equivalent:
                continue  # handled below
            triples.append(
                Triple(hint.subject, RDFS.subClassOf, hint.object)
            )
        elif hint.kind == "subproperty":
            triples.append(
                Triple(hint.subject, RDFS.subPropertyOf, hint.object)
            )
        elif hint.kind == "domain":
            triples.append(Triple(hint.subject, RDFS.domain, hint.object))
        elif hint.kind == "range":
            triples.append(Triple(hint.subject, RDFS.range, hint.object))
        elif hint.kind == "class":
            if hint.subject not in emitted_classes:
                emitted_classes.add(hint.subject)
                triples.append(Triple(hint.subject, RDF.type, RDFS.Class))

    for subject, obj in sorted(equivalent):
        triples.append(Triple(subject, OWL.equivalentClass, obj))

    return Dataset(triples, name="materialized-ontology")


def subclass_closure(ontology: Dataset) -> Dict[str, Set[str]]:
    """Transitive closure of the emitted ``rdfs:subClassOf`` statements.

    Useful for validating the materialized hierarchy (acyclic once
    equivalences are collapsed) and for downstream reasoning.
    """
    direct: Dict[str, Set[str]] = {}
    for triple in ontology:
        if triple.p == RDFS.subClassOf:
            direct.setdefault(triple.s, set()).add(triple.o)

    closure: Dict[str, Set[str]] = {}

    def ancestors(node: str, trail: Tuple[str, ...]) -> Set[str]:
        if node in closure:
            return closure[node]
        if node in trail:
            raise ValueError(f"subclass cycle through {node!r}")
        found: Set[str] = set()
        for parent in direct.get(node, ()):
            found.add(parent)
            found |= ancestors(parent, trail + (node,))
        closure[node] = found
        return found

    for node in list(direct):
        ancestors(node, ())
    return closure
