"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestCli:
    def test_datasets(self, capsys):
        out = run(capsys, "datasets")
        assert "Diseasome" in out and "3,000,673,968" in out

    def test_discover_dataset_input(self, capsys):
        out = run(
            capsys, "discover", "dataset:Countries", "--scale", "0.1",
            "-s", "5", "-n", "3",
        )
        assert "pertinent" in out and "⊆" in out

    def test_discover_storage_variants_identical(self, capsys):
        outputs = {}
        for storage in ("strings", "encoded"):
            out = run(
                capsys, "discover", "dataset:Countries", "--scale", "0.1",
                "-s", "5", "-n", "10", "--storage", storage,
            )
            # drop the header line, whose timings differ between runs,
            # and the planner summary line: with RDFIND_PLANNER set, the
            # stage-decision *count* differs between storage layouts
            # (encoded exposes kernel-capable stages that strings lacks)
            # even though the discovered output is identical.
            outputs[storage] = [
                line
                for line in out.splitlines()[1:]
                if not line.startswith("planner:")
            ]
        assert outputs["encoded"] == outputs["strings"]
        assert outputs["encoded"]

    def test_discover_variant_de(self, capsys):
        out = run(
            capsys, "discover", "dataset:Countries", "--scale", "0.1",
            "-s", "5", "--variant", "de", "-n", "2",
        )
        assert "RDFind-DE" in out

    def test_discover_predicates_scope(self, capsys):
        out = run(
            capsys, "discover", "dataset:Countries", "--scale", "0.1",
            "-s", "5", "--scope", "predicates", "-n", "2",
        )
        assert "pertinent" in out

    def test_generate_then_discover_file(self, capsys, tmp_path):
        path = tmp_path / "tiny.nt"
        out = run(capsys, "generate", "Countries", "-o", str(path), "--scale", "0.05")
        assert "wrote" in out
        out = run(capsys, "discover", str(path), "-s", "3", "-n", "2")
        assert "pertinent" in out

    def test_funnel(self, capsys):
        out = run(capsys, "funnel", "dataset:Countries", "--scale", "0.05", "-s", "3")
        assert "all CIND candidates" in out

    def test_histogram(self, capsys):
        out = run(capsys, "histogram", "dataset:Countries", "--scale", "0.05")
        assert "frequency" in out

    def test_ontology(self, capsys):
        out = run(
            capsys, "ontology", "dataset:Countries", "--scale", "0.3", "-s", "5"
        )
        assert "ontology hints" in out

    def test_facts(self, capsys):
        out = run(capsys, "facts", "dataset:DB14-MPCE", "--scale", "0.05", "-s", "5")
        assert "knowledge facts" in out

    def test_discover_json_export(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        out = run(
            capsys, "discover", "dataset:Countries", "--scale", "0.1",
            "-s", "5", "-n", "1", "-o", str(path),
        )
        assert "full result written" in out
        import json

        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["format"] == "rdfind-result"
        assert payload["cinds"]

    def test_advise(self, capsys):
        out = run(capsys, "advise", "dataset:Countries", "--scale", "0.2")
        assert "query minimization" in out and "broad captures" in out

    def test_rank(self, capsys):
        out = run(
            capsys, "rank", "dataset:Countries", "--scale", "0.2",
            "-s", "5", "-n", "3",
        )
        assert "ranked" in out and "score=" in out

    def test_inds(self, capsys):
        out = run(capsys, "inds", "dataset:Countries", "--scale", "0.2")
        assert "plain INDs" in out

    def test_cross(self, capsys, tmp_path):
        left = tmp_path / "a.nt"
        right = tmp_path / "b.nt"
        left.write_text(
            "".join(f"<c{i}> <capital> <city{i}> .\n" for i in range(4)),
            encoding="utf-8",
        )
        right.write_text(
            "".join(f"<city{i}> <rdf:type> <City> .\n" for i in range(6)),
            encoding="utf-8",
        )
        out = run(capsys, "cross", str(left), str(right), "-s", "4")
        assert "cross-dataset CINDs" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_bad_scope_rejected(self):
        with pytest.raises(SystemExit):
            main(["discover", "dataset:Countries", "--scope", "bogus"])
