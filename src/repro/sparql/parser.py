"""A parser for the SPARQL subset the BGP engine evaluates.

Grammar (a practical subset of SPARQL 1.1 SELECT):

.. code-block:: text

    query      := prologue? 'SELECT' ('DISTINCT')? projection 'WHERE'?
                  '{' triples '}'
    prologue   := ('PREFIX' PNAME ':' '<' IRI '>')*
    projection := '*' | var+
    triples    := pattern ('.' pattern)* '.'?
    pattern    := term term term
    term       := var | '<' IRI '>' | PNAME ':' local | literal | bare
    literal    := '"' chars '"' ('@' lang | '^^' ('<' IRI '>' | PNAME))

Variables are ``?name`` or ``$name``; bare tokens (e.g. ``rdf:type`` when
the prefix is known, or plain words in the synthetic datasets) are kept
verbatim, which matches how terms are stored throughout this library.
The engine's queries use set (DISTINCT) semantics either way, so the
DISTINCT keyword is accepted and ignored.

>>> q = parse_query(\"\"\"
...     PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
...     SELECT ?s WHERE { ?s rdf:type <http://ex/Person> . }
... \"\"\")
>>> str(q.projection[0])
'?s'
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple, Union

from repro.sparql.algebra import BGPQuery, TriplePattern, Var


class SparqlSyntaxError(ValueError):
    """Raised on malformed query text, with position information."""

    def __init__(self, message: str, position: int, text: str) -> None:
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|\#[^\n]*)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<IRI><[^<>\s]*>)
  | (?P<LITERAL>"(?:[^"\\]|\\.)*"(?:@[A-Za-z][A-Za-z0-9-]*|\^\^(?:<[^<>\s]*>|[A-Za-z_][\w.-]*:[\w.-]*))?)
  | (?P<LBRACE>\{)
  | (?P<RBRACE>\})
  | (?P<DOT>\.(?=\s|\}|$))
  | (?P<STAR>\*)
  | (?P<WORD>[^\s{}]+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character {text[position]!r}", position, text
            )
        kind = match.lastgroup
        if kind != "WS":
            yield _Token(kind, match.group(), position)
        position = match.end()
    yield _Token("EOF", "", length)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = list(_tokenize(text))
        self.index = 0
        self.prefixes: Dict[str, str] = {}

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def error(self, message: str) -> SparqlSyntaxError:
        return SparqlSyntaxError(message, self.current.position, self.text)

    def expect_word(self, keyword: str) -> None:
        token = self.current
        if token.kind != "WORD" or token.value.upper() != keyword:
            raise self.error(f"expected {keyword}")
        self.advance()

    def word_is(self, keyword: str) -> bool:
        token = self.current
        return token.kind == "WORD" and token.value.upper() == keyword

    # ------------------------------------------------------------------

    def parse(self) -> BGPQuery:
        self.parse_prologue()
        self.expect_word("SELECT")
        if self.word_is("DISTINCT"):
            self.advance()
        projection = self.parse_projection()
        if self.word_is("WHERE"):
            self.advance()
        if self.current.kind != "LBRACE":
            raise self.error("expected '{'")
        self.advance()
        patterns = self.parse_triples()
        if self.current.kind != "RBRACE":
            raise self.error("expected '}'")
        self.advance()
        if self.current.kind != "EOF":
            raise self.error("trailing content after '}'")

        if projection is None:  # SELECT *
            seen: List[Var] = []
            for pattern in patterns:
                for var in pattern:
                    if isinstance(var, Var) and var not in seen:
                        seen.append(var)
            projection = seen
        return BGPQuery(projection, patterns)

    def parse_prologue(self) -> None:
        while self.word_is("PREFIX"):
            self.advance()
            name_token = self.advance()
            if name_token.kind != "WORD" or not name_token.value.endswith(":"):
                raise self.error("expected a prefix name ending in ':'")
            iri_token = self.advance()
            if iri_token.kind != "IRI":
                raise self.error("expected an <IRI> after the prefix name")
            self.prefixes[name_token.value[:-1]] = iri_token.value[1:-1]

    def parse_projection(self) -> Optional[List[Var]]:
        if self.current.kind == "STAR":
            self.advance()
            return None
        names: List[Var] = []
        while self.current.kind == "VAR":
            names.append(Var(self.advance().value[1:]))
        if not names:
            raise self.error("expected '*' or at least one ?variable")
        return names

    def parse_triples(self) -> List[TriplePattern]:
        patterns: List[TriplePattern] = []
        while self.current.kind != "RBRACE":
            s = self.parse_term()
            p = self.parse_term()
            o = self.parse_term()
            patterns.append(TriplePattern(s, p, o))
            if self.current.kind == "DOT":
                self.advance()
            elif self.current.kind != "RBRACE":
                raise self.error("expected '.' or '}' after a triple pattern")
        if not patterns:
            raise self.error("the graph pattern is empty")
        return patterns

    def parse_term(self) -> Union[Var, str]:
        token = self.current
        if token.kind == "VAR":
            self.advance()
            return Var(token.value[1:])
        if token.kind == "IRI":
            self.advance()
            return token.value[1:-1]
        if token.kind == "LITERAL":
            self.advance()
            return token.value
        if token.kind == "WORD":
            self.advance()
            prefix, sep, local = token.value.partition(":")
            if sep and prefix in self.prefixes:
                return self.prefixes[prefix] + local
            return token.value
        raise self.error("expected a term (variable, IRI, literal, or name)")


def parse_query(text: str) -> BGPQuery:
    """Parse a SPARQL SELECT query (the supported subset) into algebra."""
    return _Parser(text).parse()
