"""Tests for discovery-result JSON serialization."""

import json

import pytest

from repro.core.cind import decode_cind, decode_condition
from repro.core.discovery import find_pertinent_cinds
from repro.core.serialization import (
    dump_result,
    load_result,
    parse_result_dict,
    result_to_dict,
)
from repro.sparql import QueryMinimizer, lubm_q2
from tests.conftest import random_rdf


@pytest.fixture(scope="module")
def result():
    return find_pertinent_cinds(random_rdf(990, n_triples=45).encode(), support_threshold=2)


class TestRoundtrip:
    def test_header_fields(self, result):
        payload = result_to_dict(result)
        assert payload["format"] == "rdfind-result"
        assert payload["support_threshold"] == 2
        assert payload["variant"] == "RDFind"

    def test_cinds_roundtrip_decoded(self, result):
        cinds, rules, h = parse_result_dict(result_to_dict(result))
        assert h == 2
        dictionary = result.dictionary
        expected_cinds = {
            (decode_cind(sc.cind, dictionary), sc.support) for sc in result.cinds
        }
        assert {(sc.cind, sc.support) for sc in cinds} == expected_cinds
        expected_rules = {
            (
                decode_condition(sa.rule.lhs, dictionary),
                decode_condition(sa.rule.rhs, dictionary),
                sa.support,
            )
            for sa in result.association_rules
        }
        assert {
            (sa.rule.lhs, sa.rule.rhs, sa.support) for sa in rules
        } == expected_rules

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "result.json"
        dump_result(result, path)
        cinds, rules, h = load_result(path)
        assert len(cinds) == len(result.cinds)
        assert len(rules) == len(result.association_rules)
        assert h == 2
        # the document must be plain JSON
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["format"] == "rdfind-result"

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            parse_result_dict({"format": "something-else"})
        with pytest.raises(ValueError):
            parse_result_dict({"format": "rdfind-result", "version": 99})


class TestReuseInMinimizer:
    def test_loaded_result_drives_the_minimizer(self, tmp_path):
        """Discover once, save, reload, minimize — the advertised flow."""
        from repro.datasets import lubm
        from repro.core.cind import AssociationRule

        dataset = lubm(scale=0.25)
        result = find_pertinent_cinds(dataset.encode(), support_threshold=5)
        path = tmp_path / "lubm-cinds.json"
        dump_result(result, path)

        cinds, rules, _h = load_result(path)
        minimizer = QueryMinimizer(
            (sc.cind for sc in cinds),
            (AssociationRule(sa.rule.lhs, sa.rule.rhs) for sa in rules),
        )
        report = minimizer.minimize(lubm_q2())
        assert len(report.minimized.patterns) == 3
