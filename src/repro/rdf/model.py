"""Core RDF data model.

RDFind (Kruse et al., SIGMOD 2016) treats an RDF dataset as a *set* of
subject-predicate-object triples and distinguishes only the three triple
attributes ``s``, ``p``, ``o`` on the structural level (Section 2 of the
paper).  This module provides:

* :class:`Attr` — the three triple attributes, used as projection and
  condition attributes throughout the system.
* :class:`Triple` — an immutable string triple.
* :class:`Dataset` — an ordered, duplicate-free collection of triples with
  convenience constructors and profiling helpers.
* :class:`TermDictionary` — a bidirectional string<->int term encoder.  The
  discovery pipeline works entirely on integer-encoded triples, which is
  both faster and mirrors the dictionary encoding used by RDF stores.
* :class:`EncodedDataset` — a :class:`Dataset` after dictionary encoding.

``TermDictionary``, ``EncodedTriple``, and ``EncodedDataset`` live in the
:mod:`repro.storage` subsystem (the dictionary-encoded columnar storage
layer) and are re-exported here for the data-model consumers.

Terms are plain Python strings.  Following the paper, blank nodes are
treated like URIs and literals are kept verbatim (including any datatype or
language annotation the source syntax carried).
"""

from __future__ import annotations

import random
from collections import Counter
from enum import IntEnum
from typing import Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.storage.columnar import EncodedDataset
from repro.storage.dictionary import EncodedTriple, TermDictionary


class Attr(IntEnum):
    """A triple attribute: subject, predicate, or object.

    The paper uses the symbols alpha/beta/gamma to range over these three
    attributes; conditions constrain one or two of them and captures
    project a third one.
    """

    S = 0
    P = 1
    O = 2  # noqa: E741 - O is the paper's name for the object attribute

    @property
    def symbol(self) -> str:
        """Single-letter lower-case name used in rendered conditions."""
        return "spo"[int(self)]

    @classmethod
    def from_symbol(cls, symbol: str) -> "Attr":
        """Return the attribute for ``'s'``, ``'p'``, or ``'o'``."""
        try:
            return {"s": cls.S, "p": cls.P, "o": cls.O}[symbol.lower()]
        except KeyError:
            raise ValueError(f"not a triple attribute symbol: {symbol!r}") from None

    @classmethod
    def others(cls, attr: "Attr") -> Tuple["Attr", "Attr"]:
        """The two attributes distinct from ``attr``, in (S, P, O) order."""
        return _OTHERS[attr]


_OTHERS = {
    Attr.S: (Attr.P, Attr.O),
    Attr.P: (Attr.S, Attr.O),
    Attr.O: (Attr.S, Attr.P),
}

#: All three attributes in canonical order.
ALL_ATTRS: Tuple[Attr, Attr, Attr] = (Attr.S, Attr.P, Attr.O)


class Triple(NamedTuple):
    """An RDF triple of string terms."""

    s: str
    p: str
    o: str

    def get(self, attr: Attr) -> str:
        """Project the triple onto ``attr`` (``t.alpha`` in the paper)."""
        return self[int(attr)]

    def __str__(self) -> str:
        return f"({self.s}, {self.p}, {self.o})"


class Dataset:
    """An RDF dataset: an ordered, duplicate-free sequence of triples.

    The paper's definitions operate on triple *sets*; we preserve insertion
    order for reproducibility but deduplicate on construction, matching the
    set semantics that the proofs (e.g. of Lemma 2) rely on.
    """

    __slots__ = ("_triples", "_triple_set", "name")

    def __init__(self, triples: Iterable[Triple] = (), name: str = "") -> None:
        self._triples: List[Triple] = []
        self._triple_set: set = set()
        self.name = name
        self.update(triples)

    @classmethod
    def from_tuples(
        cls, tuples: Iterable[Sequence[str]], name: str = ""
    ) -> "Dataset":
        """Build a dataset from ``(s, p, o)`` string tuples."""
        return cls((Triple(*t) for t in tuples), name=name)

    def add(self, triple: Triple) -> bool:
        """Add ``triple``; return True if it was new."""
        if triple in self._triple_set:
            return False
        self._triple_set.add(triple)
        self._triples.append(triple)
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return how many were new."""
        added = 0
        for triple in triples:
            if not isinstance(triple, Triple):
                triple = Triple(*triple)
            if self.add(triple):
                added += 1
        return added

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triple_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return self._triple_set == other._triple_set

    def __hash__(self) -> int:  # pragma: no cover - datasets are not hashed
        raise TypeError("Dataset is unhashable")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Dataset{label}: {len(self)} triples>"

    @property
    def triples(self) -> Sequence[Triple]:
        """The triples in insertion order (read-only view)."""
        return tuple(self._triples)

    def values(self, attr: Attr) -> Counter:
        """Frequency of each term in position ``attr``."""
        return Counter(t.get(attr) for t in self._triples)

    def distinct_values(self, attr: Attr) -> set:
        """Distinct terms occurring in position ``attr``."""
        return {t.get(attr) for t in self._triples}

    def sample(self, n: int, seed: int = 0) -> "Dataset":
        """A reproducible sample of ``n`` triples (all if ``n >= len``)."""
        if n >= len(self._triples):
            return Dataset(self._triples, name=self.name)
        rng = random.Random(seed)
        picked = rng.sample(self._triples, n)
        return Dataset(picked, name=f"{self.name}[sample:{n}]")

    def head(self, n: int) -> "Dataset":
        """The first ``n`` triples."""
        return Dataset(self._triples[:n], name=f"{self.name}[head:{n}]")

    def encode(self, dictionary: Optional[TermDictionary] = None) -> "EncodedDataset":
        """Dictionary-encode the dataset into a columnar representation.

        A fresh :class:`TermDictionary` is created unless one is supplied
        (supplying one lets several datasets share an id space).  The
        triples are already duplicate-free, so the columns are appended
        without a second deduplication pass.
        """
        return EncodedDataset.from_terms(
            self._triples, dictionary=dictionary, name=self.name, deduplicate=False
        )
