"""Durable job records for the discovery server.

One directory per job, next to the job's own checkpoint dir, so the job
*record* and the job's durable *state* live and die together::

    <job-dir>/
      j000001/
        job.json        the JobRecord — owned by the SERVER process only
        outcome.json    terminal verdict — written by the WORKER only
        progress.json   live JobMetrics snapshot (worker, overwritten)
        metrics.json    final JobMetrics (worker, once, on success)
        result.json     the rdfind-result document (worker, once)
        worker.log      the worker subprocess's stdout/stderr
        checkpoint/     the PR 5 checkpoint manifest + step files
      j000002/
        ...

The single-writer split is the concurrency story: the server mutates
``job.json`` (queued/running/cancelled bookkeeping), the worker writes
everything else, and both sides publish with the checkpoint plane's
tmp-then-``os.replace`` discipline — a reader never observes a torn
file, and a crash leaves at worst ``*.tmp`` litter for the workspace
sweeper.

Cache keys: :meth:`JobRequest.fingerprint` feeds the request's fields
through :func:`repro.dataflow.checkpoint.fingerprint_fields` — the same
BLAKE2b scheme the checkpoint manifests are keyed on.  Dataset
generators are seeded and deterministic, so ``(dataset, scale)``
identifies the triple content without generating it at admission time.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.dataflow.checkpoint import fingerprint_fields

__all__ = [
    "ACTIVE_STATES",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobRequest",
    "JobStore",
    "atomic_write_json",
    "read_json",
]

#: Lifecycle: queued -> running -> succeeded | failed | cancelled
#: (queued can also go straight to cancelled; running drops back to
#: queued when the server restarts over an orphaned job or retries a
#: crashed worker).
JOB_STATES = ("queued", "running", "succeeded", "failed", "cancelled")
TERMINAL_STATES = ("succeeded", "failed", "cancelled")
ACTIVE_STATES = ("queued", "running")

_JOB_ID_RE = re.compile(r"^j(\d{6,})$")

_SCOPES = ("full", "predicates")
_VARIANTS = ("rdfind", "de", "nf")
_STORAGES = ("strings", "encoded")
_EXECUTORS = ("serial", "process")


def atomic_write_json(path: str, payload: Any) -> None:
    """Publish a JSON document with tmp-then-rename + fsync atomicity."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=1, sort_keys=True)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)


def read_json(path: str) -> Optional[Any]:
    """Load a JSON document; ``None`` when absent or (briefly) unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return json.load(stream)
    except (OSError, ValueError):
        return None


@dataclass(frozen=True)
class JobRequest:
    """A validated discovery request (the ``POST /jobs`` body).

    ``dataset`` is a Table 2 registry name (``Diseasome``) or a
    server-local N-Triples/Turtle path.  ``hold``/``crash_point`` are
    deterministic test hooks: ``hold`` parks the worker until a
    ``release`` file appears in the job dir (how the tests pin a job
    mid-flight), ``crash_point`` forwards to
    :attr:`RDFindConfig.crash_points` so a worker can be SIGKILL-crashed
    at an exact checkpoint boundary and resumed.
    """

    dataset: str
    support_threshold: int = 25
    scale: float = 1.0
    scope: str = "full"
    variant: str = "rdfind"
    parallelism: int = 4
    storage: str = "encoded"
    executor: Optional[str] = None
    workers: Optional[int] = None
    hold: bool = False
    crash_point: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.dataset or not isinstance(self.dataset, str):
            raise ValueError("dataset is required")
        if self.support_threshold < 1:
            raise ValueError(
                f"support_threshold must be >= 1, got {self.support_threshold}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        if self.scope not in _SCOPES:
            raise ValueError(f"scope must be one of {_SCOPES}, got {self.scope!r}")
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {self.variant!r}"
            )
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.storage not in _STORAGES:
            raise ValueError(
                f"storage must be one of {_STORAGES}, got {self.storage!r}"
            )
        if self.executor is not None and self.executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    def effective_executor(self) -> str:
        """The backend this request will actually run on.

        Resolved at admission time with the same default chain
        :class:`RDFindConfig` uses, so the cache fingerprint and the
        worker agree even when the request leaves ``executor`` unset.
        """
        return self.executor or os.environ.get("RDFIND_EXECUTOR", "serial")

    def fingerprint(self) -> str:
        """The result-cache key: BLAKE2b over every result-shaping field.

        Uses :func:`repro.dataflow.checkpoint.fingerprint_fields` — the
        exact scheme the checkpoint manifests are keyed on.  Two requests
        fingerprint equal iff they would compute byte-identical results
        from the same deterministic generator output, so a cache hit can
        be served without recompute and an in-flight twin can be joined.
        """
        return fingerprint_fields(
            dataset=self.dataset,
            scale=self.scale,
            h=self.support_threshold,
            scope=self.scope,
            variant=self.variant,
            parallelism=self.parallelism,
            storage=self.storage,
            executor=self.effective_executor(),
            workers=self.workers,
            hold=self.hold,
            crash_point=self.crash_point,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "dataset": self.dataset,
            "support_threshold": self.support_threshold,
            "scale": self.scale,
            "scope": self.scope,
            "variant": self.variant,
            "parallelism": self.parallelism,
            "storage": self.storage,
            "executor": self.executor,
            "workers": self.workers,
            "hold": self.hold,
            "crash_point": self.crash_point,
        }

    @classmethod
    def from_json(cls, data: Any) -> "JobRequest":
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        known = {
            "dataset": data.get("dataset"),
            "support_threshold": int(data.get("support_threshold", 25)),
            "scale": float(data.get("scale", 1.0)),
            "scope": str(data.get("scope", "full")),
            "variant": str(data.get("variant", "rdfind")),
            "parallelism": int(data.get("parallelism", 4)),
            "storage": str(data.get("storage", "encoded")),
            "executor": data.get("executor") or None,
            "workers": int(data["workers"]) if data.get("workers") else None,
            "hold": bool(data.get("hold", False)),
            "crash_point": data.get("crash_point") or None,
        }
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(f"unknown request fields: {', '.join(unknown)}")
        return cls(**known)


@dataclass
class JobRecord:
    """One job's durable bookkeeping (the server-owned ``job.json``)."""

    id: str
    fingerprint: str
    request: JobRequest
    state: str = "queued"
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    attempts: int = 0
    cancel_requested: bool = False
    error: Optional[str] = None
    result_summary: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "request": self.request.to_json(),
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "result_summary": self.result_summary,
        }

    @classmethod
    def from_json(cls, data: Any) -> "JobRecord":
        if not isinstance(data, dict):
            raise ValueError("job record is not a JSON object")
        return cls(
            id=str(data["id"]),
            fingerprint=str(data["fingerprint"]),
            request=JobRequest.from_json(data["request"]),
            state=str(data["state"]),
            created=float(data.get("created") or 0.0),
            started=data.get("started"),
            finished=data.get("finished"),
            attempts=int(data.get("attempts", 0)),
            cancel_requested=bool(data.get("cancel_requested", False)),
            error=data.get("error"),
            result_summary=data.get("result_summary"),
        )


class JobStore:
    """Filesystem-backed registry of job records and their artifacts.

    Records are the source of truth on disk (a restarted server rebuilds
    its world by scanning them); the store adds a process-local lock so
    id allocation and fingerprint lookups are race-free across the HTTP
    handler threads.
    """

    def __init__(self, directory: str) -> None:
        # Absolute from the start: job paths are handed to worker
        # subprocesses whose cwd differs from the server's, so a relative
        # --job-dir must not survive into the spawn arguments.
        self.directory = os.path.abspath(str(directory))
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()

    # -- paths ---------------------------------------------------------

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.directory, job_id)

    def record_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "job.json")

    def outcome_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "outcome.json")

    def progress_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "progress.json")

    def metrics_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "metrics.json")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.json")

    def log_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "worker.log")

    def checkpoint_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "checkpoint")

    def snapshot_dir(self) -> str:
        """The store-wide dataset snapshot cache.

        Shared across jobs (keyed by input spec + scale, not by job), so
        every job over the same dataset after the first skips parsing —
        including cache *misses* of the result cache, which still re-run
        discovery but start from the mmap-ed snapshot.  Deliberately not
        a job id, so job listing (``j%06d`` directories) ignores it.
        """
        return os.path.join(self.directory, "snapshots")

    # -- records -------------------------------------------------------

    def create(self, request: JobRequest) -> JobRecord:
        """Allocate the next job id and persist a fresh queued record."""
        with self._lock:
            next_seq = 1 + max(
                (
                    int(match.group(1))
                    for match in map(_JOB_ID_RE.match, self._job_ids())
                    if match
                ),
                default=0,
            )
            record = JobRecord(
                id=f"j{next_seq:06d}",
                fingerprint=request.fingerprint(),
                request=request,
                created=time.time(),
            )
            os.makedirs(self.job_dir(record.id), exist_ok=True)
            self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        atomic_write_json(self.record_path(record.id), record.to_json())

    def get(self, job_id: str) -> Optional[JobRecord]:
        data = read_json(self.record_path(job_id))
        if data is None:
            return None
        try:
            return JobRecord.from_json(data)
        except (KeyError, TypeError, ValueError):
            return None

    def _job_ids(self) -> List[str]:
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(entry for entry in entries if _JOB_ID_RE.match(entry))

    def list_records(self) -> List[JobRecord]:
        """All valid records, oldest id first."""
        records = (self.get(job_id) for job_id in self._job_ids())
        return [record for record in records if record is not None]

    def find_by_fingerprint(self, fingerprint: str) -> Optional[JobRecord]:
        """The cacheable twin of a fingerprint, if one exists.

        Active jobs win (joinable), then the newest success (servable
        from cache).  Failed/cancelled runs are never returned — a
        resubmission after those must get a fresh compute.
        """
        active: Optional[JobRecord] = None
        succeeded: Optional[JobRecord] = None
        for record in self.list_records():
            if record.fingerprint != fingerprint:
                continue
            if record.state in ACTIVE_STATES:
                active = record
            elif record.state == "succeeded":
                succeeded = record
        return active if active is not None else succeeded

    def counts(self) -> Dict[str, int]:
        """Jobs per state (the /healthz body)."""
        counts = {state: 0 for state in JOB_STATES}
        for record in self.list_records():
            if record.state in counts:
                counts[record.state] += 1
        return counts

    # -- worker artifacts ----------------------------------------------

    def outcome(self, job_id: str) -> Optional[Dict[str, Any]]:
        data = read_json(self.outcome_path(job_id))
        return data if isinstance(data, dict) else None

    def progress(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Freshest metrics snapshot: live progress, else the final one."""
        for path in (self.progress_path(job_id), self.metrics_path(job_id)):
            data = read_json(path)
            if isinstance(data, dict):
                return data
        return None

    def final_metrics(self, job_id: str) -> Optional[Dict[str, Any]]:
        data = read_json(self.metrics_path(job_id))
        return data if isinstance(data, dict) else None

    def result_document(self, job_id: str) -> Optional[Dict[str, Any]]:
        data = read_json(self.result_path(job_id))
        return data if isinstance(data, dict) else None

    def raw_result(self, job_id: str) -> Optional[bytes]:
        """The result document's exact on-disk bytes (byte-diffable
        against the CLI's ``discover -o`` output)."""
        try:
            with open(self.result_path(job_id), "rb") as stream:
                return stream.read()
        except OSError:
            return None

    def requeue(self, record: JobRecord) -> JobRecord:
        """Put a (crashed or preempted) job back in line, keeping its
        checkpoints so the next attempt resumes instead of recomputing."""
        record = replace(
            record, state="queued", started=None, finished=None, error=None
        )
        self.save(record)
        return record
