"""Predicate-wise vertically partitioned triple store.

RDF data is extremely skewed by predicate: a handful of predicates
(``rdf:type``, labels) carry most triples.  Vertical partitioning — one
(s, o) column pair per predicate id — exploits that: a pattern with a
bound predicate touches exactly one partition, and the store needs no
per-triple Python objects at all.  This is the classic design of
SW-Store / the compressed vertical-partitioning line of work cited in
PAPERS.md, applied to this reproduction's in-memory scale.

:class:`VerticalPartitionStore` exposes the same string-level
``match(s, p, o)`` primitive (``None`` = wildcard) as
:class:`repro.rdf.store.TripleStore`, so SPARQL evaluation and query
minimization run unchanged on either store.  Subject- and object-bound
patterns without a predicate are served by posting lists that pack
``(predicate id, row offset)`` into single 64-bit ints, keeping the
secondary indexes columnar too.

Iteration and full scans are deterministic: ascending predicate id, then
insertion order within the partition.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.rdf.model import Dataset, Triple
from repro.storage.columnar import EncodedDataset
from repro.storage.dictionary import EncodedTriple, TermDictionary

#: Packing shift for posting-list entries: entry = (p_id << 32) | offset.
_OFFSET_BITS = 32
_OFFSET_MASK = (1 << _OFFSET_BITS) - 1
#: Largest predicate id a packed posting entry can carry: the entry is
#: stored in a *signed* 64-bit ``'q'`` slot, so the predicate field has
#: 31 usable bits, not 32.
_MAX_PACKED_PREDICATE = 2**31 - 1


class PostingOverflowError(OverflowError):
    """A posting entry does not fit the packed ``(p_id << 32) | offset``
    layout — predicate id beyond 2^31-1 or partition beyond 2^32 rows.

    Raised eagerly at insert: silently packing such an entry into a
    signed 64-bit array slot would corrupt it (a large ``p_id`` flips the
    sign bit; a large ``offset`` bleeds into the predicate field) and
    produce wrong matches much later.
    """


def _pack_posting(p_id: int, offset: int) -> int:
    """Pack a ``(predicate id, row offset)`` posting entry, checked."""
    if p_id < 0 or p_id > _MAX_PACKED_PREDICATE:
        raise PostingOverflowError(
            f"predicate id {p_id} outside packed range [0, {_MAX_PACKED_PREDICATE}]"
        )
    if offset < 0 or offset > _OFFSET_MASK:
        raise PostingOverflowError(
            f"partition row offset {offset} outside packed range [0, {_OFFSET_MASK}]"
        )
    return (p_id << _OFFSET_BITS) | offset


class VerticalPartitionStore:
    """An in-memory triple store partitioned by predicate id.

    Layout: ``partitions[p_id] = (s_column, o_column)`` parallel arrays,
    plus packed posting lists by subject id and object id for patterns
    that do not bind the predicate.
    """

    def __init__(
        self,
        triples: Iterable = (),
        dictionary: Optional[TermDictionary] = None,
    ) -> None:
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self._partitions: Dict[int, Tuple[array, array]] = {}
        self._s_postings: Dict[int, array] = {}
        self._o_postings: Dict[int, array] = {}
        self._size = 0
        self._frozen = False
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "VerticalPartitionStore":
        """Index a string dataset (encodes it on the way in)."""
        store = cls()
        append = store._append_ids
        encode = store.dictionary.encode
        for s, p, o in dataset:
            append(encode(s), encode(p), encode(o))
        return store

    @classmethod
    def from_encoded(cls, encoded: EncodedDataset) -> "VerticalPartitionStore":
        """Index an already-encoded columnar dataset (shares its dictionary).

        The dataset's set semantics are trusted — rows are not re-checked
        for duplicates.
        """
        store = cls(dictionary=encoded.dictionary)
        append = store._append_ids
        s_col, p_col, o_col = encoded.columns
        for index in range(len(s_col)):
            append(s_col[index], p_col[index], o_col[index])
        return store

    def _append_ids(self, s_id: int, p_id: int, o_id: int) -> None:
        """Append one encoded triple without a duplicate check."""
        if self._frozen:
            self.thaw()
        partition = self._partitions.get(p_id)
        if partition is None:
            partition = (array("q"), array("q"))
            self._partitions[p_id] = partition
        s_column, o_column = partition
        offset = len(s_column)
        packed = _pack_posting(p_id, offset)
        s_column.append(s_id)
        o_column.append(o_id)
        posting = self._s_postings.get(s_id)
        if posting is None:
            posting = self._s_postings[s_id] = array("q")
        posting.append(packed)
        posting = self._o_postings.get(o_id)
        if posting is None:
            posting = self._o_postings[o_id] = array("q")
        posting.append(packed)
        self._size += 1

    def add(self, triple) -> bool:
        """Insert a string triple; returns True if it was new."""
        encode = self.dictionary.encode
        s_id, p_id, o_id = encode(triple[0]), encode(triple[1]), encode(triple[2])
        if self._contains_ids(s_id, p_id, o_id):
            return False
        self._append_ids(s_id, p_id, o_id)
        return True

    def add_all(self, triples: Iterable) -> int:
        """Insert many string triples; returns the number that were new."""
        return sum(1 for triple in triples if self.add(triple))

    # ------------------------------------------------------------------
    # membership and size
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def _contains_ids(self, s_id: int, p_id: int, o_id: int) -> bool:
        partition = self._partitions.get(p_id)
        if partition is None:
            return False
        s_column, o_column = partition
        posting = self._s_postings.get(s_id, ())
        for packed in posting:
            if packed >> _OFFSET_BITS == p_id:
                offset = packed & _OFFSET_MASK
                if o_column[offset] == o_id:
                    return True
        return False

    def __contains__(self, triple) -> bool:
        lookup = self.dictionary.lookup
        ids = (lookup(triple[0]), lookup(triple[1]), lookup(triple[2]))
        if None in ids:
            return False
        return self._contains_ids(*ids)

    def __iter__(self) -> Iterator[Triple]:
        """All triples: ascending predicate id, then insertion order."""
        return self.match()

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------

    def match(
        self,
        s: Optional[str] = None,
        p: Optional[str] = None,
        o: Optional[str] = None,
    ) -> Iterator[Triple]:
        """Yield string triples matching the pattern (None = wildcard).

        Same contract as :meth:`repro.rdf.store.TripleStore.match`; the
        bound terms are looked up in the dictionary first, so a pattern
        with an unknown term matches nothing without touching a column.
        """
        lookup = self.dictionary.lookup
        s_id = p_id = o_id = None
        if s is not None:
            s_id = lookup(s)
            if s_id is None:
                return
        if p is not None:
            p_id = lookup(p)
            if p_id is None:
                return
        if o is not None:
            o_id = lookup(o)
            if o_id is None:
                return
        decode = self.dictionary.decode
        for row_s, row_p, row_o in self.match_ids(s_id, p_id, o_id):
            yield Triple(decode(row_s), decode(row_p), decode(row_o))

    def match_ids(
        self,
        s_id: Optional[int] = None,
        p_id: Optional[int] = None,
        o_id: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        """Integer fast path of :meth:`match`: ids in, encoded triples out."""
        if p_id is not None:
            partition = self._partitions.get(p_id)
            if partition is None:
                return
            s_column, o_column = partition
            if s_id is None and o_id is None:
                for row_s, row_o in zip(s_column, o_column):
                    yield EncodedTriple(row_s, p_id, row_o)
                return
            # Probe the smaller side through the posting lists.
            yield from self._scan_postings(
                self._postings_for(s_id, o_id), s_id, p_id, o_id
            )
            return
        if s_id is not None or o_id is not None:
            yield from self._scan_postings(
                self._postings_for(s_id, o_id), s_id, None, o_id
            )
            return
        for partition_p in sorted(self._partitions):
            s_column, o_column = self._partitions[partition_p]
            for row_s, row_o in zip(s_column, o_column):
                yield EncodedTriple(row_s, partition_p, row_o)

    def _postings_for(self, s_id: Optional[int], o_id: Optional[int]) -> array:
        """The shortest applicable posting list for the bound s/o ids."""
        empty = array("q")
        if s_id is not None and o_id is not None:
            by_s = self._s_postings.get(s_id, empty)
            by_o = self._o_postings.get(o_id, empty)
            return by_s if len(by_s) <= len(by_o) else by_o
        if s_id is not None:
            return self._s_postings.get(s_id, empty)
        return self._o_postings.get(o_id, empty)

    def _scan_postings(
        self,
        postings: array,
        s_id: Optional[int],
        p_id: Optional[int],
        o_id: Optional[int],
    ) -> Iterator[EncodedTriple]:
        """Filter a posting list against the remaining bound positions."""
        partitions = self._partitions
        for packed in postings:
            row_p = packed >> _OFFSET_BITS
            if p_id is not None and row_p != p_id:
                continue
            offset = packed & _OFFSET_MASK
            s_column, o_column = partitions[row_p]
            row_s = s_column[offset]
            row_o = o_column[offset]
            if s_id is not None and row_s != s_id:
                continue
            if o_id is not None and row_o != o_id:
                continue
            yield EncodedTriple(row_s, row_p, row_o)

    def count(
        self,
        s: Optional[str] = None,
        p: Optional[str] = None,
        o: Optional[str] = None,
    ) -> int:
        """Number of triples matching the pattern."""
        return sum(1 for _ in self.match(s, p, o))

    def cardinality_estimate(
        self,
        s: Optional[str] = None,
        p: Optional[str] = None,
        o: Optional[str] = None,
    ) -> int:
        """Cheap upper bound on the match count.

        The tightest single-position bucket among the bound positions: a
        partition size for ``p``, a posting-list length for ``s``/``o``.
        """
        lookup = self.dictionary.lookup
        bounds = []
        if p is not None:
            p_id = lookup(p)
            if p_id is None:
                return 0
            partition = self._partitions.get(p_id)
            bounds.append(len(partition[0]) if partition else 0)
        if s is not None:
            s_id = lookup(s)
            if s_id is None:
                return 0
            bounds.append(len(self._s_postings.get(s_id, ())))
        if o is not None:
            o_id = lookup(o)
            if o_id is None:
                return 0
            bounds.append(len(self._o_postings.get(o_id, ())))
        return min(bounds) if bounds else self._size

    # ------------------------------------------------------------------
    # vocabulary views and export
    # ------------------------------------------------------------------

    def subjects(self) -> Set[str]:
        """Distinct subjects."""
        decode = self.dictionary.decode
        return {decode(s_id) for s_id in self._s_postings}

    def predicates(self) -> Set[str]:
        """Distinct predicates."""
        decode = self.dictionary.decode
        return {decode(p_id) for p_id in self._partitions}

    def objects(self) -> Set[str]:
        """Distinct objects."""
        decode = self.dictionary.decode
        return {decode(o_id) for o_id in self._o_postings}

    def predicate_ids(self) -> Tuple[int, ...]:
        """The partition keys, ascending."""
        return tuple(sorted(self._partitions))

    def partition(self, p_id: int) -> Optional[Tuple[array, array]]:
        """The (s, o) column pair of one predicate (do not mutate)."""
        return self._partitions.get(p_id)

    def to_dataset(self, name: str = "") -> Dataset:
        """Materialize the store contents as a sorted :class:`Dataset`."""
        return Dataset(sorted(self.match()), name=name)

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """Whether the store is in its compressed read-only form."""
        return self._frozen

    def freeze(self) -> "VerticalPartitionStore":
        """Compress the store in place into its read-only resident form.

        Partition columns become
        :class:`~repro.storage.compressed.BitPackedColumn` (per-column
        bit width) and posting lists become zigzag-delta varint
        :class:`~repro.storage.compressed.FrozenPostingList`; entry order
        is preserved exactly, so every ``match`` answer is unchanged.  A
        later :meth:`add` transparently thaws first.  Returns ``self``
        for chaining.
        """
        if self._frozen:
            return self
        from repro.storage.compressed import BitPackedColumn, FrozenPostingList

        self._partitions = {
            p_id: (BitPackedColumn.pack(s), BitPackedColumn.pack(o))
            for p_id, (s, o) in self._partitions.items()
        }
        for index in (self._s_postings, self._o_postings):
            for key in index:
                index[key] = FrozenPostingList.from_values(index[key])
        self._frozen = True
        return self

    def thaw(self) -> "VerticalPartitionStore":
        """Decompress back to the mutable ``array`` form (in place)."""
        if not self._frozen:
            return self
        self._partitions = {
            p_id: (s.to_array(), o.to_array())
            for p_id, (s, o) in self._partitions.items()
        }
        for index in (self._s_postings, self._o_postings):
            for key in index:
                index[key] = array("q", index[key])
        self._frozen = False
        return self

    def nbytes(self) -> int:
        """Resident-set proxy: column payload plus posting-list payload."""
        columns = sum(
            _column_nbytes(s) + _column_nbytes(o)
            for s, o in self._partitions.values()
        )
        postings = sum(
            _column_nbytes(p)
            for index in (self._s_postings, self._o_postings)
            for p in index.values()
        )
        return columns + postings

    def __repr__(self) -> str:
        state = " frozen," if self._frozen else ""
        return (
            f"<VerticalPartitionStore:{state} {self._size} triples in "
            f"{len(self._partitions)} predicate partitions>"
        )


def _column_nbytes(column) -> int:
    """Payload bytes of a column in either form (packed or ``array``)."""
    nbytes = getattr(column, "nbytes", None)
    if callable(nbytes):
        return nbytes()
    return column.itemsize * len(column)
