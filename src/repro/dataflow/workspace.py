"""Interrupt-safe cleanup of on-disk workspaces.

The spill plane (:mod:`repro.dataflow.shuffle`) and the checkpoint
subsystem (:mod:`repro.dataflow.checkpoint`) both materialize state under
temporary directories.  Normal completion removes them in ``close()``,
but a driver interrupted by Ctrl-C or ``kill`` used to leak its
``rdfind-spill-*`` workspace: nothing between the signal and process
death ran the cleanup.

This module keeps a registry of live workspace paths and installs — once,
lazily, on the first registration — an :mod:`atexit` hook plus SIGINT and
SIGTERM handlers that sweep the registry before the process dies.  Two
cleanup disciplines exist, because the two workspaces have opposite
durability contracts:

``TREE``
    The whole directory is scratch (spill runs); remove it entirely.

``TMP_ONLY``
    The directory holds durable artifacts written via tmp-then-rename
    (checkpoints); remove only ``*.tmp`` litter so a half-written frame
    file never survives an interrupt, while completed checkpoints —
    the whole point of the subsystem — do.

Registrations are tagged with the registering PID: forked pool workers
inherit the registry but must never sweep the driver's workspaces, and
the handlers chain to whatever handler was installed before them, so a
hosting application's own signal semantics are preserved.  A hard
``SIGKILL`` (or an injected driver crash, which exits via ``os._exit``)
bypasses all of this by design — that is exactly the scenario the
checkpoint subsystem recovers from.
"""

from __future__ import annotations

import atexit
import os
import shutil
import signal
import threading
from typing import Dict, List, Tuple

__all__ = ["TREE", "TMP_ONLY", "register", "unregister", "cleanup_registered"]

#: Remove the registered directory entirely (scratch workspaces).
TREE = "tree"
#: Remove only ``*.tmp`` files under the directory (durable workspaces).
TMP_ONLY = "tmp-only"

_KINDS = (TREE, TMP_ONLY)

#: Signals whose delivery should sweep the registry before dying.
_SIGNALS = (signal.SIGINT, signal.SIGTERM)

_lock = threading.Lock()
_registry: Dict[int, Tuple[str, str, int]] = {}  # token -> (path, kind, pid)
_next_token = 0
_installed = False
_previous_handlers: Dict[int, object] = {}


def register(path: str, kind: str = TREE) -> int:
    """Track ``path`` for cleanup on exit/interrupt; returns a token."""
    if kind not in _KINDS:
        raise ValueError(f"unknown workspace kind {kind!r} (expected one of {_KINDS})")
    global _next_token
    with _lock:
        _install_handlers()
        token = _next_token
        _next_token += 1
        _registry[token] = (str(path), kind, os.getpid())
    return token


def unregister(token: int) -> None:
    """Stop tracking a workspace (its owner cleaned it up normally)."""
    with _lock:
        _registry.pop(token, None)


def cleanup_registered() -> List[str]:
    """Sweep every workspace registered by *this* process; returns the paths.

    Idempotent and exception-free by construction: the sweep runs from
    signal handlers and ``atexit``, where a raised error would mask the
    interrupt itself.
    """
    with _lock:
        mine = [
            (token, path, kind)
            for token, (path, kind, pid) in list(_registry.items())
            if pid == os.getpid()
        ]
        for token, _path, _kind in mine:
            _registry.pop(token, None)
    cleaned: List[str] = []
    for _token, path, kind in mine:
        try:
            if kind == TREE:
                shutil.rmtree(path, ignore_errors=True)
            else:
                _remove_tmp_litter(path)
            cleaned.append(path)
        except OSError:  # pragma: no cover - defensive; never propagate
            pass
    return cleaned


def _remove_tmp_litter(path: str) -> None:
    """Delete ``*.tmp`` files under ``path``, keeping durable contents."""
    for dirpath, _dirnames, filenames in os.walk(path):
        for filename in filenames:
            if filename.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(dirpath, filename))
                except OSError:
                    pass


def _handle_signal(signum: int, frame) -> None:
    cleanup_registered()
    previous = _previous_handlers.get(signum)
    if callable(previous):
        # Chain: e.g. Python's default SIGINT handler raises
        # KeyboardInterrupt, preserving normal unwinding semantics.
        previous(signum, frame)
    else:
        # SIG_DFL/SIG_IGN cannot be called; re-deliver with the default
        # disposition so the exit status reports death-by-signal.
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_handlers() -> None:
    """Install the atexit hook + signal handlers once (caller holds _lock)."""
    global _installed
    if _installed:
        return
    atexit.register(cleanup_registered)
    for signum in _SIGNALS:
        try:
            _previous_handlers[signum] = signal.signal(signum, _handle_signal)
        except ValueError:
            # signal.signal only works in the main thread of the main
            # interpreter; workspaces registered elsewhere still get the
            # atexit sweep.
            pass
    _installed = True
