"""Common RDF namespaces and CURIE handling.

The synthetic dataset generators and the examples render terms either as
full URIs (for N-Triples output) or as compact CURIEs (for human-readable
reports, matching the paper's ``rdf:type``-style notation).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class Namespace:
    """A URI prefix that mints terms via attribute or item access.

    >>> ex = Namespace("http://example.org/")
    >>> ex.thing
    'http://example.org/thing'
    >>> ex["other thing"]
    'http://example.org/other thing'
    """

    __slots__ = ("uri",)

    def __init__(self, uri: str) -> None:
        self.uri = uri

    def __getattr__(self, local: str) -> str:
        if local.startswith("__"):
            raise AttributeError(local)
        return self.uri + local

    def __getitem__(self, local: str) -> str:
        return self.uri + local

    def __contains__(self, term: str) -> bool:
        return isinstance(term, str) and term.startswith(self.uri)

    def __repr__(self) -> str:
        return f"Namespace({self.uri!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: Prefixes that every :class:`NamespaceManager` knows out of the box.
WELL_KNOWN_PREFIXES: Dict[str, str] = {
    "rdf": RDF.uri,
    "rdfs": RDFS.uri,
    "owl": OWL.uri,
    "xsd": XSD.uri,
    "foaf": FOAF.uri,
}


class NamespaceManager:
    """Registry of prefix -> namespace URI mappings with CURIE helpers."""

    def __init__(self, extra: Optional[Dict[str, str]] = None) -> None:
        self._prefixes: Dict[str, str] = dict(WELL_KNOWN_PREFIXES)
        if extra:
            for prefix, uri in extra.items():
                self.bind(prefix, uri)

    def bind(self, prefix: str, uri: str) -> None:
        """Register ``prefix`` for ``uri`` (overwrites an existing binding)."""
        self._prefixes[prefix] = uri

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._prefixes.items())

    def expand(self, curie: str) -> str:
        """Expand a ``prefix:local`` CURIE; return the input if unknown."""
        prefix, sep, local = curie.partition(":")
        if sep and prefix in self._prefixes:
            return self._prefixes[prefix] + local
        return curie

    def compact(self, uri: str) -> str:
        """Compact a URI to a CURIE using the longest matching namespace."""
        best_prefix = None
        best_len = -1
        for prefix, ns_uri in self._prefixes.items():
            if uri.startswith(ns_uri) and len(ns_uri) > best_len:
                best_prefix, best_len = prefix, len(ns_uri)
        if best_prefix is None:
            return uri
        return f"{best_prefix}:{uri[best_len:]}"
