"""Shared retry/backoff machinery: one policy, many subsystems.

Three independent layers of this codebase re-execute failed work with
exponential backoff: the dataflow engine's task retries
(:mod:`repro.dataflow.faults`, where this machinery originally lived),
the federated SPARQL endpoint client (:mod:`repro.federation.client`),
and the job-server HTTP client (:mod:`repro.server.client`).  They must
agree on two things:

* the **backoff schedule** — bounded exponential growth with a cap, so a
  flapping dependency is neither hammered nor waited on forever; and
* **determinism** — every probabilistic choice (here: jitter) is a pure
  BLAKE2b function of a seed and a caller-supplied key, never
  ``random``.  Two runs with the same seed produce byte-identical delay
  sequences, which is what lets fault-injected runs be replayed and
  compared bit-for-bit against clean ones (the discipline PR 3
  established for task execution).

Jitter exists because synchronized clients retrying in lockstep re-ambush
a recovering server (the "thundering herd" of the retry literature); it
is expressed as a ± fraction of the base delay.  A policy with
``jitter=0`` reproduces the legacy dataflow schedule exactly.

This module is stdlib-only and imports nothing from the rest of the
package, so anything — core, dataflow, server, federation — may depend
on it.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "RetryPolicy",
    "SimulatedClock",
    "unit_draw",
]

_SCALE = float(1 << 64)


def unit_draw(seed: int, key: str) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for one decision slot.

    BLAKE2b rather than ``random``: the draw must not depend on call
    order, thread interleaving, or ``PYTHONHASHSEED`` — only on
    ``(seed, key)``.
    """
    digest = hashlib.blake2b(
        f"{seed}|{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / _SCALE


class SimulatedClock:
    """Accumulates backoff waits instead of sleeping.

    The dataflow engine's tasks are pure functions over payloads: nothing
    external heals with time, so real sleeps would only slow the run
    down.  The clock keeps the *accounting* of an exponential-backoff
    schedule (what a cluster would have waited) observable without
    paying it.  Network clients, whose peers genuinely do heal with
    time, use ``time.sleep`` instead.
    """

    __slots__ = ("elapsed",)

    def __init__(self) -> None:
        self.elapsed = 0.0

    def sleep(self, seconds: float) -> None:
        self.elapsed += seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution with exponential backoff and seeded jitter.

    ``max_retries`` is the number of *re*-executions per operation (0
    disables retrying).  The base delay before retry ``n`` (1-based) is
    ``backoff_seconds * backoff_factor ** (n - 1)``, capped at
    ``max_backoff_seconds``.  With ``jitter > 0`` the delay is spread
    deterministically over ``base * (1 ± jitter)``: the draw is a pure
    function of ``(seed, key, n)``, so a fixed seed yields an identical
    delay sequence on every run — across every subsystem that shares the
    policy (regression-tested in ``tests/test_retry.py``).

    Frozen dataclass of primitives, hence picklable: the dataflow
    process backend ships its subclass to pool workers.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 5.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, retry_number: int, key: str = "") -> float:
        """Backoff before the ``retry_number``-th retry (1-based).

        ``key`` names the operation being retried (an endpoint URL, a
        stage/task slot, an HTTP path) so that concurrent retry loops
        under one seed de-synchronize from each other while each loop
        stays individually reproducible.
        """
        base = min(
            self.max_backoff_seconds,
            self.backoff_seconds * self.backoff_factor ** (retry_number - 1),
        )
        if not self.jitter or not base:
            return base
        # unit_draw is in [0, 1); spread it to [-1, 1) around the base.
        spread = 2.0 * unit_draw(self.seed, f"{key}|retry|{retry_number}") - 1.0
        return base * (1.0 + self.jitter * spread)

    def delay_with_hint(
        self, retry_number: int, key: str = "", hint: Optional[float] = None
    ) -> float:
        """The delay, honoring a server-supplied backoff hint.

        ``hint`` is a ``Retry-After`` value in seconds: the wait is at
        least the hint (the server knows its own recovery schedule
        better than our exponential guess) but never beyond
        ``max_backoff_seconds`` — a proxy advertising ``Retry-After:
        3600`` must not park a bounded retry loop for an hour.
        """
        delay = self.delay(retry_number, key)
        if hint is not None and hint > 0:
            delay = max(delay, min(float(hint), self.max_backoff_seconds))
        return delay

    def delays(self, key: str = "") -> "list[float]":
        """The full delay schedule (``max_retries`` entries) for ``key``."""
        return [self.delay(n, key) for n in range(1, self.max_retries + 1)]

    def is_retryable(self, error: BaseException) -> bool:
        """Whether re-executing can possibly change the outcome.

        Anything that is an ``Exception`` is; ``KeyboardInterrupt`` and
        friends are not.  Subsystems with richer failure taxonomies
        (the dataflow engine's deterministic OOM, the federation
        client's permanent-vs-transient split) override this.
        """
        return isinstance(error, Exception)

    def call(
        self,
        func: Callable[[], "object"],
        key: str = "",
        sleeper: Callable[[float], None] = time.sleep,
        hint_for: Optional[Callable[[BaseException], Optional[float]]] = None,
    ) -> "object":
        """Run ``func`` under this policy; the shared retry loop.

        Retries on any failure :meth:`is_retryable` accepts, sleeping
        the (jittered) schedule between attempts via ``sleeper``.
        ``hint_for`` extracts a server backoff hint (``Retry-After``)
        from a failure, which :meth:`delay_with_hint` then honors.
        """
        retry_number = 0
        while True:
            try:
                return func()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                retry_number += 1
                if retry_number > self.max_retries or not self.is_retryable(error):
                    raise
                hint = hint_for(error) if hint_for is not None else None
                sleeper(self.delay_with_hint(retry_number, key, hint))
