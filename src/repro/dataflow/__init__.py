"""A miniature Flink-like dataflow engine.

The RDFind paper implements its discovery pipeline as a single Flink job
(Appendix C).  This subpackage provides the operator vocabulary that job
needs — ``map``/``flatMap``/``filter``, keyed aggregation with local
combiners (Flink's GroupCombine + GroupReduce), ``coGroup`` joins, global
reduction ("collect" to one worker), broadcast, and repartitioning — on top
of an eager, deterministic, single-process executor that partitions data
across *simulated workers*.

Every stage records per-partition record counts and wall-clock time, so a
job's *simulated parallel runtime* (sum over stages of the slowest
partition) and shuffle volume can be reported.  These are the quantities
behind the paper's scale-out and skew experiments (Figures 9, 12, 13): the
shape of those curves is a function of per-partition load, which the
simulation preserves exactly.

Where the per-partition tasks run is pluggable
(:mod:`repro.dataflow.executors`): the ``serial`` backend executes them
inline (the reference), the ``process`` backend executes them concurrently
on a persistent process pool — real multi-core execution with
byte-identical output.

How keyed operators move data is pluggable too
(:mod:`repro.dataflow.shuffle`): the ``inline`` shuffle materializes
buckets in memory (the reference), the ``spill`` shuffle cuts sorted,
CRC-framed runs to disk under a byte-accurate memory budget and merges
them reduce-side — bounded memory on arbitrarily large buckets, again
with byte-identical output.

*How* a stage executes is pluggable as well
(:mod:`repro.dataflow.planner` and :mod:`repro.dataflow.kernels`): a
cost-based stage planner may swap the record-at-a-time operator chains of
the hot stages for fused, vectorized batch kernels over columnar id
slices, toggle combiners, switch the shuffle plane, or re-slice batch
counts — per stage, from calibrated costs, always byte-identically.
"""

from repro.dataflow.bloom import BloomFilter
from repro.dataflow.checkpoint import (
    CHECKPOINT_MODES,
    CheckpointError,
    CheckpointManager,
    CheckpointMismatchError,
    JobManifest,
)
from repro.dataflow.engine import (
    DataSet,
    ExecutionEnvironment,
    SimulatedOutOfMemory,
    stable_hash,
)
from repro.dataflow.executors import (
    EXECUTOR_NAMES,
    ProcessExecutor,
    SerialExecutor,
    available_cores,
    create_executor,
)
from repro.dataflow.faults import (
    DRIVER_CRASH_EXIT_CODE,
    FaultPlan,
    InjectedTaskFault,
    RetryPolicy,
    SimulatedClock,
    SimulatedWorkerCrash,
    TaskTimeoutError,
)
from repro.dataflow.gcpause import gc_paused, stage_gc_pause
from repro.dataflow.metrics import JobMetrics, StageMetrics
from repro.dataflow.planner import PLANNER_MODES, StagePlan, StagePlanner
from repro.dataflow.shuffle import (
    SHUFFLE_MODES,
    MemoryBudget,
    RunInfo,
    SpillConfig,
    record_bytes,
)

__all__ = [
    "BloomFilter",
    "CHECKPOINT_MODES",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointMismatchError",
    "JobManifest",
    "DRIVER_CRASH_EXIT_CODE",
    "TaskTimeoutError",
    "DataSet",
    "ExecutionEnvironment",
    "SimulatedOutOfMemory",
    "stable_hash",
    "EXECUTOR_NAMES",
    "SerialExecutor",
    "ProcessExecutor",
    "available_cores",
    "create_executor",
    "FaultPlan",
    "InjectedTaskFault",
    "RetryPolicy",
    "SimulatedClock",
    "SimulatedWorkerCrash",
    "JobMetrics",
    "StageMetrics",
    "PLANNER_MODES",
    "StagePlan",
    "StagePlanner",
    "gc_paused",
    "stage_gc_pause",
    "SHUFFLE_MODES",
    "MemoryBudget",
    "RunInfo",
    "SpillConfig",
    "record_bytes",
]
