"""Ranking CINDs: meaningful vs spurious (the paper's future-work item).

Section 10 names "discerning meaningful and spurious cinds, e.g., using
the local closed world assumption" as an open problem.  This module
implements a practical scorer in that spirit.  A discovered CIND
``c ⊆ c'`` with support s (=|I(c)|) is judged along two axes:

* **coverage** — how much evidence backs it: ``log`` -scaled support, the
  same quantity broadness thresholds act on;
* **selectivity** — how surprising the inclusion is under a closed-world
  reading.  If the referenced interpretation covers almost every value of
  its projection attribute, any capture would be included in it by
  accident; the score therefore rewards small ``|I(c')| / |values(α')|``
  ratios.  This is the local-closed-world intuition: an inclusion into a
  near-universal set carries no information.

``rank_cinds`` scores a whole discovery result (re-deriving the needed
interpretation sizes in one dataset pass) and returns the CINDs ordered
most-meaningful-first; ``spurious`` flags the bottom of the ranking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.cind import Capture, SupportedCIND
from repro.core.discovery import DiscoveryResult
from repro.rdf.model import Attr, Dataset, EncodedDataset


@dataclass(frozen=True)
class ScoredCIND:
    """A pertinent CIND with its meaningfulness score and components."""

    supported: SupportedCIND
    score: float
    coverage: float
    selectivity: float

    def render(self, dictionary) -> str:
        """Rendering including the score breakdown."""
        return (
            f"{self.supported.render(dictionary)}  "
            f"score={self.score:.3f} (coverage={self.coverage:.2f}, "
            f"selectivity={self.selectivity:.2f})"
        )


def _interpretation_sizes(
    dataset: EncodedDataset, captures: Set[Capture]
) -> Dict[Capture, int]:
    """|I(T, c)| for the requested captures in one pass."""
    values: Dict[Capture, Set[int]] = {capture: set() for capture in captures}
    by_condition: Dict[Tuple, list] = {}
    for capture in captures:
        by_condition.setdefault(capture.condition, []).append(capture)
    for triple in dataset:
        for condition, interested in by_condition.items():
            if condition.matches(triple):
                for capture in interested:
                    values[capture].add(triple[int(capture.attr)])
    return {capture: len(vals) for capture, vals in values.items()}


def rank_cinds(
    result: DiscoveryResult,
    dataset: Union[Dataset, EncodedDataset, None] = None,
    limit: Optional[int] = None,
) -> List[ScoredCIND]:
    """Score and rank a discovery result's pertinent CINDs.

    ``dataset`` defaults to being unavailable, in which case the
    referenced interpretation sizes are approximated by the largest
    dependent support seen per referenced capture (a lower bound); pass
    the dataset the result was discovered on for exact selectivities.
    """
    rows = result.cinds if limit is None else result.cinds[:limit]
    if not rows:
        return []

    attr_totals: Dict[Attr, int] = {}
    ref_sizes: Dict[Capture, int] = {}
    if dataset is not None:
        if isinstance(dataset, Dataset):
            dataset = dataset.encode()
        for attr in Attr:
            attr_totals[attr] = len(dataset.values(attr))
        ref_sizes = _interpretation_sizes(
            dataset, {sc.cind.referenced for sc in rows}
        )
    else:
        for supported in rows:
            referenced = supported.cind.referenced
            ref_sizes[referenced] = max(
                ref_sizes.get(referenced, 0), supported.support
            )
        for supported in rows:
            attr = supported.cind.referenced.attr
            attr_totals[attr] = max(
                attr_totals.get(attr, 1), ref_sizes[supported.cind.referenced]
            )

    max_support = max(sc.support for sc in rows)
    scored: List[ScoredCIND] = []
    for supported in rows:
        referenced = supported.cind.referenced
        coverage = math.log1p(supported.support) / math.log1p(max_support)
        universe = max(attr_totals.get(referenced.attr, 1), 1)
        ref_share = min(ref_sizes.get(referenced, supported.support) / universe, 1.0)
        selectivity = 1.0 - ref_share
        score = coverage * (0.35 + 0.65 * selectivity)
        scored.append(
            ScoredCIND(
                supported=supported,
                score=score,
                coverage=coverage,
                selectivity=selectivity,
            )
        )
    scored.sort(key=lambda row: (-row.score, row.supported.cind))
    return scored


def spurious(
    ranking: List[ScoredCIND], selectivity_floor: float = 0.05
) -> List[ScoredCIND]:
    """The CINDs a closed-world reading flags as likely accidental.

    An inclusion whose referenced capture covers (almost) the entire
    projection-attribute universe says nothing — anything would be
    included in it.
    """
    return [row for row in ranking if row.selectivity < selectivity_floor]
