"""Assemble EXPERIMENTS.md from a benchmark-run log.

Usage::

    pytest benchmarks/ --benchmark-only | tee bench.log
    python benchmarks/make_experiments_md.py bench.log

The benches print their paper-style result tables through the
ExperimentReport hook (see ``benchmarks/conftest.py``); this script
extracts those sections from the captured log, pairs each with its
paper-vs-measured verdict, and rewrites the results block of
EXPERIMENTS.md between the ``RESULTS:BEGIN``/``RESULTS:END`` markers.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: Verdict commentary per experiment, keyed by section-title prefix.
VERDICTS: Dict[str, str] = {
    "Table 2": (
        "**Verdict — reproduced (scaled).** Countries/Diseasome/LUBM-1 are "
        "generated at full paper size (±5-6%); the larger datasets at the "
        "documented fractions. All planted showcase structures are present "
        "(asserted by `tests/test_datasets.py`)."
    ),
    "Figure 2": (
        "**Verdict — shape reproduced.** Every funnel layer shrinks by "
        "orders of magnitude: candidates ≫ frequent-condition candidates "
        "≫ broad candidates ≫ broad ≫ pertinent ≫ ARs, with the top three "
        "layers within a factor of ~2 of the paper's counts. The *bottom* "
        "layers land lower than the paper's (3.3k broad vs 915k): the "
        "real Diseasome's disease/gene networks are more mutually "
        "redundant than the synthetic stand-in, so fewer of the candidate "
        "inclusions actually hold here. The exhaustive all-valid/"
        "all-minimal layers are computed on a scaled Diseasome — at full "
        "size they are the >10⁹ quantities whose intractability the paper "
        "demonstrates."
    ),
    "Figure 4": (
        "**Verdict — reproduced.** Frequency-1 conditions dominate every "
        "dataset (paper, DBpedia: 86% at frequency 1, 99% below 16; the "
        "synthetic stand-ins match within a few points), which is what "
        "powers the frequent-condition pruning."
    ),
    "Figure 7": (
        "**Verdict — failure pattern reproduced exactly; runtime gap "
        "compressed.** Standard Cinderella exceeds the calibrated memory "
        "budget on every Diseasome run and Cinderella* at the sweep's low "
        "end, while RDFind completes everything — the paper's pattern. "
        "Where both complete, RDFind wins on Diseasome (~2×) and trades "
        "places on tiny Countries (paper: Cin*/Pos up to 20 s faster there "
        "due to Flink start-up). The paper's 8-419× magnitudes do not "
        "transfer: its Cinderella ran over a real DBMS with disk and "
        "JDBC, ours over the in-process `repro.sqldb` engine."
    ),
    "Figure 8": (
        "**Verdict — all three shapes reproduced.** Runtime grows slightly "
        "super-linearly; pertinent CINDs grow with the input; ARs peak and "
        "then decline as accumulating data violates exact rules — at "
        "1/7500 of the paper's scale."
    ),
    "Figure 9": (
        "**Verdict — reproduced.** Near-linear simulated scale-out with "
        "~7-8× average speed-up at 10 workers (paper: 8.14×); the "
        "20-worker column mirrors the paper's extra 1.38× from intra-node "
        "threads."
    ),
    "Figure 10": (
        "**Verdict — shape reproduced.** Runtimes are flat for large h and "
        "rise toward the sweep floor. The floors sit above each dataset's "
        "per-entity fan-out (see the bench header): below them the "
        "pertinent set itself explodes into millions (measured: 18.6M on "
        "Diseasome at h=5), the same low-support blow-up the paper's "
        "Figure 10 shows as a steep wall."
    ),
    "Figure 11": (
        "**Verdict — reproduced.** CIND counts are inverse in h, rising "
        "steeply at low supports (the paper's two-orders-in, "
        "three-orders-out relation shows in the Countries column); ARs "
        "account for roughly 10-50% of results throughout, as the paper "
        "notes. The associatedBand ⊑ associatedMusicalArtist pair is "
        "rediscovered on both the s- and o-side."
    ),
    "Figure 12": (
        "**Verdict — reproduced with one documented deviation.** NF is "
        "drastically inferior everywhere: ~3× slower where it completes "
        "(Countries) and over the single-node budget on every full-size "
        "Diseasome run. DE ≈ RDFind on the small datasets except Diseasome "
        "h=10, where DE's combiner state (17.9M cells) exceeds the budget "
        "that the paper's 40 GB cluster absorbed."
    ),
    "Figure 13": (
        "**Verdict — shape reproduced; failure locus shifted by scaling.** "
        "DE is occasionally marginally faster at large h (pure overhead "
        "regime, exactly the paper's finding) and loses or dies at small "
        "h. The paper's DE failures hit DB14-MPCE/PLE at 33M/153M triples; "
        "at 1/220-1/850 scale the same quadratic dominant-group blow-up "
        "manifests on DrugBank instead."
    ),
    "Figure 14": (
        "**Verdict — reproduced.** Q2 minimizes 6 → 3 patterns via three "
        "discovered CINDs, returns identical rows, and speeds up ~7× here "
        "(paper: ~3× in RDF-3X; the ratio depends on the engine, the "
        "direction and mechanism — joins removed — are the same). The "
        "control query Q1 is correctly left intact."
    ),
    "Section 8.6": (
        "**Verdict — reproduced.** The minimal-first strategy never beats "
        "the extract-then-consolidate design and is up to ~2.5× slower "
        "than RDFind-DE (paper: up to 3×), with byte-identical output."
    ),
    "Storage encoding": (
        "**Verdict — physical layout only, output byte-identical "
        "(asserted).** Dictionary-encoded columns shrink the resident set "
        "~4× vs string triples and the columnar counting fast paths speed "
        "up end-to-end discovery, growing with dataset size (~1.1× on "
        "tiny Countries, ~1.6× on full-size Diseasome). The storage-v2 "
        "layer (frequency-ordered codes + per-column bit packing, frozen "
        "varint posting lists) shrinks the column payload a further "
        "≥2× (measured ~3×) with identical content. Not a paper "
        "experiment — this reproduces the dictionary-encoding + "
        "vertical-partitioning design of the in-memory RDF stores the "
        "paper builds on."
    ),
    "Snapshot load": (
        "**Verdict — warm start is effectively free; output "
        "byte-identical (asserted).** Not a paper experiment — this "
        "characterizes the mmap snapshot format (`rdfind snapshot`, "
        "`repro.storage.snapshot`). Loading Diseasome from a CRC-framed "
        "snapshot (three `frombytes` column adoptions + lazy term "
        "decode off the mapping) beats N-Triples parse+encode by ≥20× "
        "(measured ~25-30×), reproduces the exact checkpoint dataset "
        "digest, and discovery from the snapshot serializes "
        "byte-identically to the parse-from-source run on both "
        "executors. Corrupted or truncated snapshots raise typed errors "
        "and the cache path falls back to re-parsing (pinned by "
        "`tests/test_snapshot.py`)."
    ),
    "Fault recovery": (
        "**Verdict — recovery guarantee holds; overhead is bounded.** Not "
        "a paper experiment — this characterizes the fault-tolerance layer "
        "the paper inherits from Flink for free. With a seeded FaultPlan "
        "injecting transient task failures, a worker crash, and "
        "stragglers into every phase, discovery completes with CINDs/ARs "
        "byte-identical to the clean run (asserted), paying only the "
        "re-executed tasks. Adaptive OOM recovery (`--oom-recovery`) "
        "turns a budget-exceeded abort into a completed run by key-"
        "splitting the offending partitions, at a modest slowdown."
    ),
    "Checkpoint/resume": (
        "**Verdict — crash-resumability holds; durability is cheap at "
        "this scale.** Not a paper experiment — this characterizes the "
        "driver-level checkpointing standing in for resubmitting a lost "
        "Flink job against its last completed state. Persisting the fc/"
        "cg/ex phase boundaries costs a few MB of framed pickle I/O and "
        "a few percent of wall-clock; a resume after a simulated "
        "post-phase-1 crash skips FCDetector entirely and a fully-"
        "durable resume replays almost nothing, both with output "
        "identical to the uncheckpointed run (asserted). The SIGKILL-"
        "level crash/resume acceptance path — exit at an injected crash "
        "point, relaunch with `--resume`, byte-compare the result JSON — "
        "is pinned by `tests/test_checkpoint.py` on both executors."
    ),
    "Spilling shuffle": (
        "**Verdict — bounded memory bought at a bounded slowdown; output "
        "byte-identical (asserted).** Not a paper experiment — this "
        "characterizes the disk-backed data plane standing in for Flink's "
        "out-of-core shuffle, which the paper's billion-evidence groupings "
        "rely on. With a spill budget far below the inline shuffle's "
        "working set, discovery completes with identical CINDs/ARs while "
        "the shuffle state lives in CRC-framed sorted runs on disk; the "
        "runtime premium is the write-sort-merge tax. Peak RSS stays "
        "within noise of the inline run's — at this scale the resident "
        "dataset dominates both legs; the O(budget) bound on *shuffle* "
        "state is pinned directly by `tests/test_shuffle.py`'s "
        "peak-state assertions."
    ),
    "Server cache": (
        "**Verdict — cache reuse holds; a fingerprint hit is effectively "
        "free.** Not a paper experiment — this characterizes the "
        "discovery-as-a-service layer (`rdfind serve`). A warm resubmission "
        "of an identical config is answered from the stored result document "
        "in milliseconds (bytes asserted identical to the cold run, which "
        "pays admission + worker subprocess + full discovery), and a "
        "thundering herd of identical concurrent clients is collapsed onto "
        "a single in-flight job — one worker spawned, every client handed "
        "the same job id. Byte-identity of the HTTP result against the "
        "CLI's `discover -o` is pinned by `tests/test_server.py`."
    ),
    "Vectorized kernels": (
        "**Verdict — execution strategy only, output byte-identical "
        "(asserted).** Not a paper experiment — this characterizes the "
        "batch-kernel layer and the cost-based stage planner. Forcing "
        "every kernel (`--planner static`) fuses the hot operator chains "
        "over columnar id batches — Bloom probes and capture construction "
        "cached per distinct id — for a ~1.9× end-to-end speedup on "
        "full-size Diseasome at h=10; the adaptive planner reaches the "
        "same decisions from its cost model (records floors, observed "
        "reduction ratios) and lands within noise of static. Every "
        "decision is stamped into the stage metrics, and all planned "
        "runs serialize byte-identically to the record-at-a-time oracle "
        "(pinned across executors and shuffle planes by "
        "`tests/test_planner.py`)."
    ),
    "Streaming maintenance": (
        "**Verdict — delta maintenance beats full re-discovery at every "
        "batch size; results agree exactly (asserted).** Not a paper "
        "experiment — this characterizes the streaming update subsystem "
        "(`rdfind stream`, `repro.streaming`). After loading ~90% of "
        "Diseasome, applying an add/remove batch to the maintainer and "
        "re-querying costs a small fraction of re-running batch RDFind "
        "on the materialized dataset (~150× for single-update batches, "
        "~10× at 512-update batches, where the one-off reactivation "
        "backfills amortize). The CIND sets agree exactly per batch, and "
        "byte-identity of the streamed result document against "
        "`discover -o` plus SIGKILL-resume from the changelog+checkpoint "
        "pair are pinned by `tests/test_streaming.py` and "
        "`tests/test_stream_session.py`."
    ),
    "Federation ingest": (
        "**Verdict — faults cost backoff time, never correctness.** Not "
        "a paper experiment — this characterizes the federated ingestion "
        "layer (`rdfind fetch`, `repro.federation`). Fetching Diseasome "
        "through the deterministic mock SPARQL endpoint with a seeded "
        "fault script (timeouts, 429s, 503s, truncated and malformed "
        "bodies injected into ~35% of early requests) produces a "
        "dictionary-encoded dataset with exactly the local parse's "
        "digest — same as the clean fetch — at a modest wall-clock "
        "premium that is almost entirely deliberate backoff sleeps. "
        "The full taxonomy/breaker/resume behavior is pinned by "
        "`tests/test_federation.py`; cross-endpoint partial-result "
        "discovery by its `TestFederatedDiscovery` cases."
    ),
    "Parallel scaling": (
        "**Verdict — infrastructure landed; speedup is hardware-gated.** "
        "The process executor produces byte-identical CINDs/ARs to serial "
        "on every run (asserted). On a single-core container the bench "
        "instead characterizes the overhead floor: per-stage pickling/IPC "
        "multiplies wall-clock ~4-5× with zero cores to win back, which "
        "is why `serial` stays the default. The ≥1.5× at 4 workers "
        "acceptance assertion arms automatically on machines with ≥4 "
        "cores, where the compute-dense stages (cg/evidences at ~37 "
        "µs/record) dominate and parallelize."
    ),
}

_SECTION_RE = re.compile(r"^=+ (.+?) =+$")


def extract_sections(log_text: str) -> List[Tuple[str, List[str]]]:
    """(title, lines) pairs for every report section in the log."""
    sections: List[Tuple[str, List[str]]] = []
    current: List[str] = []
    title = None
    for line in log_text.splitlines():
        match = _SECTION_RE.match(line.strip())
        if match and any(
            match.group(1).startswith(prefix)
            for prefix in (
                "Table",
                "Figure",
                "Section",
                "Storage",
                "Snapshot",
                "Vectorized",
                "Parallel",
                "Fault",
                "Spilling",
                "Checkpoint",
                "Server",
                "Federation",
            )
        ):
            if title is not None:
                sections.append((title, current))
            title = match.group(1)
            current = []
        elif title is not None:
            if line.startswith(("----", "====", "benchmark:")) or "short test summary" in line:
                sections.append((title, current))
                title = None
                current = []
            else:
                current.append(line.rstrip())
    if title is not None:
        sections.append((title, current))
    return sections


def render_results(sections: List[Tuple[str, List[str]]]) -> str:
    """The markdown results block."""
    seen_verdicts = set()
    out: List[str] = []
    for title, lines in sections:
        out.append(f"### {title}")
        out.append("")
        out.append("```")
        out.extend(line for line in lines if line.strip())
        out.append("```")
        verdict_key = next(
            (key for key in VERDICTS if title.startswith(key)), None
        )
        if verdict_key and verdict_key not in seen_verdicts:
            seen_verdicts.add(verdict_key)
            out.append("")
            out.append(VERDICTS[verdict_key])
        out.append("")
    return "\n".join(out)


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    log_path = Path(argv[1])
    experiments_path = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    sections = extract_sections(log_path.read_text(encoding="utf-8"))
    if not sections:
        print("no report sections found in the log", file=sys.stderr)
        return 1
    results = render_results(sections)
    text = experiments_path.read_text(encoding="utf-8")
    begin = "<!-- RESULTS:BEGIN (filled from the final benchmark run) -->"
    end = "<!-- RESULTS:END -->"
    head, _sep, rest = text.partition(begin)
    _old, _sep2, tail = rest.partition(end)
    experiments_path.write_text(
        head + begin + "\n" + results + end + tail, encoding="utf-8"
    )
    print(f"wrote {len(sections)} sections to {experiments_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
