"""LUBM: the Lehigh University Benchmark data generator (synthetic).

Reimplements the structure of LUBM(1) — one university with ~20
departments of professors, students, courses, and publications — at
roughly the paper's 103k triples.  The instance is the substrate of the
query-minimization experiment (paper Figure 14 runs LUBM query Q2).

One deliberate simplification, documented in DESIGN.md: only graduate
students carry ``undergraduateDegreeFrom`` (professors carry
``mastersDegreeFrom``/``doctoralDegreeFrom``), and only departments are
``subOrganizationOf`` a university.  This makes the three ``rdf:type``
patterns of query Q2 each removable via a CIND that *holds in the
instance*, which is the property the paper's experiment exploits.
"""

from __future__ import annotations

from typing import List

from repro.datasets.synth import GraphBuilder, scaled
from repro.rdf.model import Dataset, EncodedDataset

RESEARCH_AREAS = tuple(f"Research{index}" for index in range(25))


def lubm(universities: int = 1, scale: float = 1.0, seed: int = 303, encoded: bool = False) -> "Dataset | EncodedDataset":
    """Generate a LUBM-style instance (~103k triples per university).

    ``universities`` matches LUBM's scaling knob; ``scale`` additionally
    scales the per-department population (for quick tests).
    """
    builder = GraphBuilder(f"LUBM-{universities}", seed)
    rng = builder.rng

    # Like the original generator, degree statements reference a pool of
    # ~1000 universities even when only a few are materialized with
    # departments; every referenced university is typed and named.
    all_universities = [
        f"university{index}" for index in range(max(universities, 1000))
    ]
    for university in all_universities:
        builder.add_type(university, "University")
        builder.add(university, "name", f'"{university}"')

    for uni_index in range(universities):
        university = all_universities[uni_index]
        n_departments = rng.randint(15, 22)
        for dept_index in range(n_departments):
            _generate_department(
                builder, university, all_universities, uni_index, dept_index, scale
            )
    return builder.build_encoded() if encoded else builder.build()


def _generate_department(
    builder: GraphBuilder,
    university: str,
    all_universities: List[str],
    uni_index: int,
    dept_index: int,
    scale: float,
) -> None:
    rng = builder.rng
    department = f"{university}/dept{dept_index}"
    builder.add_type(department, "Department")
    builder.add(department, "name", f'"Department {dept_index}"')
    builder.add(department, "subOrganizationOf", university)

    professors: List[str] = []
    for rank, low, high in (
        ("FullProfessor", 9, 12),
        ("AssociateProfessor", 12, 16),
        ("AssistantProfessor", 10, 14),
    ):
        for index in range(scaled(rng.randint(low, high), scale)):
            professor = f"{department}/{rank.lower()}{index}"
            professors.append(professor)
            builder.add_type(professor, rank)
            builder.add_type(professor, "Professor")
            builder.add(professor, "worksFor", department)
            builder.add(professor, "name", f'"{rank} {dept_index}-{index}"')
            builder.add(professor, "emailAddress", f'"{professor}@{university}.edu"')
            builder.add(professor, "telephone", f'"555-{rng.randint(0, 9999):04d}"')
            builder.add(professor, "researchInterest", builder.pick(RESEARCH_AREAS))
            builder.add(professor, "mastersDegreeFrom", builder.pick(all_universities))
            builder.add(professor, "doctoralDegreeFrom", builder.pick(all_universities))
    builder.add(professors[0], "headOf", department)

    courses: List[str] = []
    for index in range(scaled(rng.randint(80, 100), scale)):
        course = f"{department}/course{index}"
        courses.append(course)
        builder.add_type(course, "Course")
        builder.add(course, "name", f'"Course {dept_index}-{index}"')
        builder.add(builder.pick(professors), "teacherOf", course)

    grad_students: List[str] = []
    for index in range(scaled(rng.randint(150, 180), scale)):
        student = f"{department}/gradstudent{index}"
        grad_students.append(student)
        builder.add_type(student, "GraduateStudent")
        builder.add(student, "memberOf", department)
        builder.add(student, "name", f'"GradStudent {dept_index}-{index}"')
        builder.add(student, "emailAddress", f'"{student}@{university}.edu"')
        # Simplification: undergraduateDegreeFrom is exclusive to graduate
        # students (see module docstring) — 20% from the home university,
        # which query Q2 joins on.
        if rng.random() < 0.2:
            degree_from = university
        else:
            degree_from = builder.pick(all_universities)
        builder.add(student, "undergraduateDegreeFrom", degree_from)
        builder.add(student, "advisor", builder.pick(professors))
        for course in builder.pick_some(courses, 1, 3):
            builder.add(student, "takesCourse", course)

    for index in range(scaled(rng.randint(630, 690), scale)):
        student = f"{department}/undergrad{index}"
        builder.add_type(student, "UndergraduateStudent")
        builder.add(student, "memberOf", department)
        builder.add(student, "name", f'"Undergrad {dept_index}-{index}"')
        for course in builder.pick_some(courses, 1, 4):
            builder.add(student, "takesCourse", course)

    for index in range(scaled(rng.randint(200, 250), scale)):
        publication = f"{department}/publication{index}"
        builder.add_type(publication, "Publication")
        builder.add(publication, "name", f'"Publication {dept_index}-{index}"')
        builder.add(publication, "publicationAuthor", builder.pick(professors))
        if rng.random() < 0.5:
            builder.add(publication, "publicationAuthor", builder.pick(grad_students))
