"""Vectorized batch kernels for the discovery hot path.

A *batch kernel* is an operator that consumes one
:class:`~repro.storage.columnar.TripleBatch` — a worker's slice of the
encoded dataset kept as three parallel id ``array`` columns — instead of
a stream of per-triple Python records.  The kernels fuse whole operator
chains into one pass per partition (no intermediate record lists), and
amortize the expensive per-record work (Bloom probes, capture
construction) behind per-id caches: a column has far fewer distinct ids
than elements, so each probe/object is paid once per distinct id instead
of once per triple.

Byte-identity contract (enforced by ``tests/test_planner.py``): every
kernel reproduces the record-at-a-time oracle exactly.

* The frequent-condition counting kernels produce the same *content* as
  the driver columnar scans in :mod:`repro.core.frequent_conditions`
  (count dicts feed order-independent consumers: Bloom unions, sorted AR
  lists, sorted final output).
* The capture-group kernel (:class:`EvidenceBatchKernel`) yields
  ``(value, {capture})`` pairs in exactly the order the record path's
  ``flat_map`` emits per-triple evidences — batch ``i`` holds precisely
  partition ``i``'s triples in partition order
  (:func:`~repro.storage.columnar.build_triple_batches`), so the fused
  combiner builds the identical aggregation dict and the shuffle routes
  identical buckets.

Everything here is module-level (and picklable), so the kernels run
unchanged on the ``serial`` and ``process`` executor backends.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.cind import Capture
from repro.core.conditions import (
    BinaryCondition,
    ConditionScope,
    UnaryCondition,
)
from repro.dataflow.engine import DataSet, ExecutionEnvironment
from repro.storage.columnar import EncodedDataset, TripleBatch, build_triple_batches

__all__ = [
    "EvidenceBatchKernel",
    "batch_dataset",
    "unary_counts_kernel",
    "binary_counts_kernel",
]


def batch_dataset(
    env: ExecutionEnvironment,
    columns: EncodedDataset,
    batch_count: Optional[int] = None,
    name: str = "batches",
) -> DataSet:
    """A dataset of column batches, ``batch_count`` slices round-robined
    onto the environment's workers.

    With ``batch_count == parallelism`` (the default) batch ``i`` *is*
    partition ``i`` of ``from_collection(columns)`` — the layout the
    order-sensitive kernels require.  Larger counts (the planner's skew
    split for the order-insensitive counting kernels) round-robin extra
    batches onto the workers.  No source stage is recorded: the batches
    are views of the already-accounted encoded dataset.
    """
    parallelism = env.parallelism
    count = batch_count if batch_count is not None else parallelism
    batches = build_triple_batches(columns, count)
    partitions: List[List[TripleBatch]] = [[] for _ in range(parallelism)]
    sizes = [0] * parallelism
    for index, batch in enumerate(batches):
        partitions[index % parallelism].append(batch)
        sizes[index % parallelism] += len(batch)
    return DataSet(env, partitions, name=name, logical_sizes=sizes)


# ----------------------------------------------------------------------
# frequent-condition counting kernels (FCDetector steps 1-2 and 6-7)
# ----------------------------------------------------------------------


class _UnaryBatchCounter:
    """Per-partition unary condition counting over id columns."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: Tuple) -> None:
        self.attrs = attrs

    def __call__(self, partition: List[TripleBatch]) -> Dict:
        counters: Dict = {attr: Counter() for attr in self.attrs}
        for batch in partition:
            for attr in self.attrs:
                # Counter.update over an array iterates at C speed.
                counters[attr].update(batch.column(attr))
        return counters


def _merge_attr_counters(a: Dict, b: Dict) -> Dict:
    for attr, counter in b.items():
        a[attr].update(counter)
    return a


def unary_counts_kernel(
    env: ExecutionEnvironment,
    batches: DataSet,
    scope: ConditionScope,
    h: int,
) -> Dict[UnaryCondition, int]:
    """Batch-kernel version of the unary counting scan (steps 1-2).

    Runs the per-partition counting on the executor (real cores under the
    process backend) and merges the partial per-attribute counters on the
    driver; produces the same counts dict as
    ``_columnar_unary_counts`` / the dataflow path.
    """
    attrs = tuple(sorted(scope.condition_attrs))
    merged = batches.reduce_partitions(
        _UnaryBatchCounter(attrs),
        _merge_attr_counters,
        name="fc/unary-columnar",
    )
    counts: Dict[UnaryCondition, int] = {}
    for attr in attrs:
        for value, count in merged[attr].items():
            if count >= h:
                counts[UnaryCondition(attr, value)] = count
    return counts


class _BinaryBatchCounter:
    """Per-partition Algorithm 1 over id columns, probes cached per id."""

    __slots__ = ("attrs", "pairs", "unary_bloom")

    def __init__(self, attrs: Tuple, unary_bloom) -> None:
        self.attrs = attrs
        pairs = []
        for index, attr1 in enumerate(attrs):
            for attr2 in attrs[index + 1 :]:
                pairs.append((attr1, attr2))
        self.pairs = tuple(pairs)
        self.unary_bloom = unary_bloom

    def __call__(self, partition: List[TripleBatch]) -> Dict:
        unary_bloom = self.unary_bloom
        probe_caches: Dict = {attr: {} for attr in self.attrs}
        counters: Dict = {pair: Counter() for pair in self.pairs}
        for batch in partition:
            for attr1, attr2 in self.pairs:
                cache1 = probe_caches[attr1]
                cache2 = probe_caches[attr2]
                pair_counter = counters[(attr1, attr2)]
                for v1, v2 in zip(batch.column(attr1), batch.column(attr2)):
                    hit1 = cache1.get(v1)
                    if hit1 is None:
                        hit1 = cache1[v1] = (
                            unary_bloom is None
                            or unary_bloom.contains_int_key(
                                UnaryCondition(attr1, v1)
                            )
                        )
                    if not hit1:
                        continue
                    hit2 = cache2.get(v2)
                    if hit2 is None:
                        hit2 = cache2[v2] = (
                            unary_bloom is None
                            or unary_bloom.contains_int_key(
                                UnaryCondition(attr2, v2)
                            )
                        )
                    if hit2:
                        pair_counter[(v1, v2)] += 1
        return counters


def _merge_pair_counters(a: Dict, b: Dict) -> Dict:
    for pair, counter in b.items():
        a[pair].update(counter)
    return a


def binary_counts_kernel(
    env: ExecutionEnvironment,
    batches: DataSet,
    scope: ConditionScope,
    unary_bloom,
    h: int,
) -> Dict[BinaryCondition, int]:
    """Batch-kernel version of Algorithm 1 (steps 6-7)."""
    attrs = tuple(sorted(scope.condition_attrs))
    merged = batches.reduce_partitions(
        _BinaryBatchCounter(attrs, unary_bloom),
        _merge_pair_counters,
        name="fc/binary-columnar",
    )
    counts: Dict[BinaryCondition, int] = {}
    for index, attr1 in enumerate(attrs):
        for attr2 in attrs[index + 1 :]:
            for (v1, v2), count in merged[(attr1, attr2)].items():
                if count >= h:
                    counts[BinaryCondition(attr1, v1, attr2, v2)] = count
    return counts


# ----------------------------------------------------------------------
# capture-evidence kernel (CGCreator, Algorithm 2)
# ----------------------------------------------------------------------

#: Cache sentinel: a probed-and-pruned condition id (vs "not cached yet").
_PRUNED = object()


class EvidenceBatchKernel:
    """Fused Algorithm 2 over one column batch (order-exact).

    Drop-in for the record path's ``flat_map(_EvidenceEmitter) →
    reduce_by_key`` chain when used with ``flat_map_reduce_by_key``: the
    generator yields ``(value, {capture})`` singleton-set pairs in
    exactly the per-triple, per-projection order the record path emits,
    so the fused combiner state — and everything downstream of it — is
    byte-identical.

    The speedup comes from the caches: per projection, the full
    bloom-probe / rule-check / capture-construction decision is computed
    once per distinct condition-value combination and replayed as a tuple
    of shared (immutable, value-hashed) :class:`Capture` objects for
    every other triple carrying the same ids.
    """

    __slots__ = ("projections", "unary_bloom", "binary_bloom", "rules", "allow_binary")

    def __init__(
        self, scope: ConditionScope, frequent
    ) -> None:
        # Mirrors _EvidenceEmitter.__init__ (repro.core.capture_groups)
        # field for field — the projection order is the oracle's order.
        self.projections = tuple(
            (attr, scope.condition_attrs_for(attr))
            for attr in sorted(scope.projection_attrs)
        )
        if frequent is not None:
            self.unary_bloom = frequent.unary_bloom
            self.binary_bloom = frequent.binary_bloom
            self.rules = frozenset(frequent.rule_set)
        else:
            self.unary_bloom = self.binary_bloom = None
            self.rules = frozenset()
        self.allow_binary = scope.allow_binary

    def _probe_capture(self, cache: dict, alpha, attr, value: int):
        """Capture for a unary-case condition id (``_PRUNED`` if pruned)."""
        unary = UnaryCondition(attr, value)
        if self.unary_bloom is None or self.unary_bloom.contains_int_key(unary):
            entry = Capture(alpha, unary)
        else:
            entry = _PRUNED
        cache[value] = entry
        return entry

    def _probe_unary(self, cache: dict, attr, value: int):
        """``(ok, condition)`` for one condition id, memoized per attr.

        A column has far fewer distinct ids than elements, so the Bloom
        probe — pure-Python double hashing, the record path's dominant
        cost — and the condition object are paid once per distinct id.
        """
        entry = cache.get(value)
        if entry is None:
            unary = UnaryCondition(attr, value)
            entry = cache[value] = (
                self.unary_bloom is None
                or self.unary_bloom.contains_int_key(unary),
                unary,
            )
        return entry

    def _binary_captures(
        self, alpha, beta, gamma, beta_entry, gamma_entry
    ) -> Tuple[Capture, ...]:
        """The capture template one (v_beta, v_gamma) id pair produces."""
        beta_ok, unary_beta = beta_entry
        gamma_ok, unary_gamma = gamma_entry
        if beta_ok and gamma_ok:
            binary = BinaryCondition(
                beta, unary_beta.value, gamma, unary_gamma.value
            )
            binary_ok = (
                self.binary_bloom is None
                or self.binary_bloom.contains_int_key(binary)
            )
            if (
                binary_ok
                and (unary_beta, unary_gamma) not in self.rules
                and (unary_gamma, unary_beta) not in self.rules
            ):
                return (Capture(alpha, binary),)
            return (Capture(alpha, unary_beta), Capture(alpha, unary_gamma))
        if beta_ok:
            return (Capture(alpha, unary_beta),)
        if gamma_ok:
            return (Capture(alpha, unary_gamma),)
        return ()

    def __call__(
        self, batch: TripleBatch
    ) -> Iterator[Tuple[int, Set[Capture]]]:
        columns = batch.columns
        # Per-projection execution plans: (True, value_col, beta_col,
        # gamma_col, beta, gamma, alpha, beta_cache, gamma_cache,
        # pair_cache) for the binary case, (False, value_col,
        # [(alpha, attr, col, cache), ...]) for unaries.  The unary
        # caches are keyed by condition id; the pair cache memoizes the
        # full decision per distinct (v_beta, v_gamma) combination.
        plans = []
        for alpha, condition_attrs in self.projections:
            value_col = columns[int(alpha)]
            if len(condition_attrs) == 2 and self.allow_binary:
                beta, gamma = condition_attrs
                plans.append(
                    (
                        True,
                        value_col,
                        columns[int(beta)],
                        columns[int(gamma)],
                        beta,
                        gamma,
                        alpha,
                        {},
                        {},
                        {},
                    )
                )
            else:
                unary_plans = [
                    (alpha, attr, columns[int(attr)], {})
                    for attr in condition_attrs
                ]
                plans.append((False, value_col, unary_plans))
        for index in range(len(batch)):
            for plan in plans:
                if plan[0]:
                    (
                        _b,
                        value_col,
                        beta_col,
                        gamma_col,
                        beta,
                        gamma,
                        alpha,
                        beta_cache,
                        gamma_cache,
                        pair_cache,
                    ) = plan
                    pair = (beta_col[index], gamma_col[index])
                    captures = pair_cache.get(pair)
                    if captures is None:
                        captures = pair_cache[pair] = self._binary_captures(
                            alpha,
                            beta,
                            gamma,
                            self._probe_unary(beta_cache, beta, pair[0]),
                            self._probe_unary(gamma_cache, gamma, pair[1]),
                        )
                    if captures:
                        value = value_col[index]
                        for capture in captures:
                            yield value, {capture}
                else:
                    _b, value_col, unary_plans = plan
                    value = value_col[index]
                    for alpha, attr, col, cache in unary_plans:
                        entry = cache.get(col[index])
                        if entry is None:
                            entry = self._probe_capture(cache, alpha, attr, col[index])
                        capture = entry
                        if capture is not _PRUNED:
                            yield value, {capture}
