"""Diseasome: diseases, genes, and their associations (~72k triples).

Mirrors the FU Berlin Diseasome dataset the paper profiles most heavily
(Figure 2's search-space funnel uses it).  Planted structure:

* a two-level disease-class hierarchy: every disease typed with a
  *subclass* is also typed with its parent class, so subclass CINDs like
  the paper's ``Leptodactylidae ⊆ Frog`` emerge
  (``(s, p=rdf:type ∧ o=<sub>) ⊆ (s, p=rdf:type ∧ o=<parent>)``);
* class-specific object vocabularies, so that ``o=<value> → p=<pred>``
  association rules appear naturally;
* unique names/ids per entity, producing the frequency-1 condition bulk
  of Figure 4.
"""

from __future__ import annotations

from repro.datasets.synth import GraphBuilder, entity_names, scaled
from repro.rdf.model import Dataset, EncodedDataset

#: Top-level disease classes and how many subclasses each has.
DISEASE_CLASSES = (
    ("Cancer", 6),
    ("Neurological", 4),
    ("Cardiovascular", 4),
    ("Metabolic", 3),
    ("Immunological", 3),
    ("Ophthalmological", 2),
    ("Dermatological", 2),
    ("Skeletal", 2),
)

CHROMOSOMES = tuple(f"chr{label}" for label in list(range(1, 23)) + ["X", "Y"])


def diseasome(scale: float = 1.0, seed: int = 202, encoded: bool = False) -> "Dataset | EncodedDataset":
    """Generate the Diseasome dataset (paper size ≈ 72,445 triples at scale 1)."""
    builder = GraphBuilder("Diseasome", seed)
    rng = builder.rng

    n_diseases = scaled(4850, scale, minimum=20)
    n_genes = scaled(4150, scale, minimum=20)
    disease_uris = entity_names("disease", n_diseases)
    gene_uris = entity_names("gene", n_genes)

    subclass_parent = {}
    for parent, sub_count in DISEASE_CLASSES:
        for index in range(sub_count):
            subclass_parent[f"{parent}Subtype{index}"] = parent
    subclasses = sorted(subclass_parent)
    subclass_chooser = builder.zipf(subclasses, alpha=0.7)

    gene_chooser = builder.zipf(gene_uris, alpha=0.85)
    location_chooser = builder.zipf(CHROMOSOMES, alpha=0.5)
    drug_pool = entity_names("possibleDrug", max(10, n_diseases // 6))
    drug_chooser = builder.zipf(drug_pool, alpha=0.9)

    for index, disease in enumerate(disease_uris):
        subclass = subclass_chooser.choice()
        builder.add_type(disease, "Disease")
        builder.add_type(disease, subclass)
        builder.add_type(disease, subclass_parent[subclass])
        builder.add(disease, "name", f'"Disease {index}"')
        builder.add(disease, "omimId", f'"{100000 + index}"')
        builder.add(disease, "sizeDegree", f'"{rng.randint(1, 40)}"')
        builder.add(disease, "diseaseClass", subclass_parent[subclass])
        # sorted(): set iteration order follows string hashing, which is
        # randomized per process — generation must be process-independent
        # so checkpoints from a killed run stay valid for the resume run.
        for gene in sorted({gene_chooser.choice() for _ in range(rng.randint(1, 5))}):
            builder.add(disease, "associatedGene", gene)
        for drug in sorted({drug_chooser.choice() for _ in range(rng.randint(0, 2))}):
            builder.add(disease, "possibleDrug", drug)

    for index, gene in enumerate(gene_uris):
        builder.add_type(gene, "Gene")
        builder.add(gene, "label", f'"Gene {index}"')
        builder.add(gene, "geneSymbol", f'"SYM{index}"')
        builder.add(gene, "chromosomalLocation", location_chooser.choice())
        if rng.random() < 0.4:
            builder.add(gene, "degree", f'"{rng.randint(1, 25)}"')

    # Subtype-of links among diseases sharing a subclass: small-support
    # structure for the low-h experiments.
    by_subclass = {}
    for index, disease in enumerate(disease_uris):
        if rng.random() < 0.15:
            subclass = subclasses[index % len(subclasses)]
            by_subclass.setdefault(subclass, []).append(disease)
    for members in by_subclass.values():
        for child in members[1:]:
            builder.add(child, "diseaseSubtypeOf", members[0])

    return builder.build_encoded() if encoded else builder.build()
