"""Paper fidelity: every concrete claim of the paper as an assertion.

Each test quotes (in its docstring) the statement of the paper it checks,
on the exact data the paper uses where possible (Table 1) or on the
synthetic stand-in of the dataset it references.
"""

import pytest

from repro.core.cind import CIND, Capture
from repro.core.conditions import BinaryCondition, UnaryCondition
from repro.core.discovery import RDFind, RDFindConfig, find_pertinent_cinds
from repro.core.validation import NaiveProfiler
from repro.datasets import diseasome, table1
from repro.rdf.model import Attr


@pytest.fixture(scope="module")
def t1():
    return table1().encode()


def cap(dictionary, attr, *constraints):
    if len(constraints) == 1:
        ((c_attr, term),) = constraints
        condition = UnaryCondition(c_attr, dictionary.encode_existing(term))
    else:
        (a1, v1), (a2, v2) = constraints
        condition = BinaryCondition.make(
            a1, dictionary.encode_existing(v1), a2, dictionary.encode_existing(v2)
        )
    return Capture(attr, condition)


class TestSection1And2Examples:
    def test_example_1(self, t1):
        """§1 Example 1: "the graduate students patrick and mike form a
        subset of people with an undergraduate degree, namely patrick,
        tim, and mike."""
        profiler = NaiveProfiler(t1)
        d = t1.dictionary
        grads = profiler.interpretation(
            cap(d, Attr.S, (Attr.P, "rdf:type"), (Attr.O, "gradStudent"))
        )
        degreed = profiler.interpretation(cap(d, Attr.S, (Attr.P, "undergradFrom")))
        assert {d.decode(v) for v in grads} == {"patrick", "mike"}
        assert {d.decode(v) for v in degreed} == {"patrick", "mike", "tim"}
        assert grads < degreed

    def test_example_2(self, t1):
        """§2 Example 2: the binary condition p=rdf:type ∧ o=gradStudent
        holds for triples t1 and t2; the capture (s, φ) interprets to
        {patrick, mike}."""
        d = t1.dictionary
        condition = BinaryCondition.make(
            Attr.P, d.encode_existing("rdf:type"),
            Attr.O, d.encode_existing("gradStudent"),
        )
        matching = [t for t in t1 if condition.matches(t)]
        assert len(matching) == 2
        values = NaiveProfiler(t1).interpretation(Capture(Attr.S, condition))
        assert {d.decode(v) for v in values} == {"patrick", "mike"}

    def test_example_3(self, t1):
        """§2 Example 3: (s, p=rdf:type ∧ o=gradStudent) ⊆
        (s, p=undergradFrom) is a valid CIND for Table 1."""
        d = t1.dictionary
        cind = CIND(
            cap(d, Attr.S, (Attr.P, "rdf:type"), (Attr.O, "gradStudent")),
            cap(d, Attr.S, (Attr.P, "undergradFrom")),
        )
        profiler = NaiveProfiler(t1)
        assert profiler.is_valid(cind)
        assert profiler.support(cind) == 2


class TestSection3Examples:
    def test_figure_1_implication_chain(self, t1):
        """§3.1 / Figure 1: ψ1 = (s, p=memberOf ∧ o=csd) ⊆ (s, p=rdf:type
        ∧ o=gradStudent) implies ψ2, ψ3, which imply ψ4 = (s, p=memberOf)
        ⊆ (s, p=rdf:type); all four are valid on Table 1."""
        d = t1.dictionary
        profiler = NaiveProfiler(t1)
        psi1 = CIND(
            cap(d, Attr.S, (Attr.P, "memberOf"), (Attr.O, "csd")),
            cap(d, Attr.S, (Attr.P, "rdf:type"), (Attr.O, "gradStudent")),
        )
        psi2 = CIND(psi1.dependent, cap(d, Attr.S, (Attr.P, "rdf:type")))
        psi3 = CIND(cap(d, Attr.S, (Attr.P, "memberOf")), psi1.referenced)
        psi4 = CIND(psi3.dependent, psi2.referenced)
        for psi in (psi1, psi2, psi3, psi4):
            assert profiler.is_valid(psi)

    def test_figure_1_only_psi4_like_forms_are_minimal(self, t1):
        """§3.1: among Figure 1's CINDs only the one that can be neither
        dependent-relaxed nor referenced-tightened is minimal.  In the
        discovered result at h=2, (s, p=memberOf) ⊆ ... appears only with
        its most-relaxed dependent."""
        result = find_pertinent_cinds(t1, support_threshold=2)
        rendered = set(result.render_cinds())
        assert "(s, p=memberOf) ⊆ (s, p=rdf:type)  [support=2]" in rendered
        # the dependent-tightened variants are implied, hence absent
        assert not any("p=memberOf ∧" in line for line in rendered)

    def test_example_5_support_one(self, t1):
        """§3.1 Example 5: (s, p=memberOf ∧ o=csd) ⊆ (s, p=undergradFrom
        ∧ o=hpi) has support 1 — it pertains only to patrick."""
        d = t1.dictionary
        cind = CIND(
            cap(d, Attr.S, (Attr.P, "memberOf"), (Attr.O, "csd")),
            cap(d, Attr.S, (Attr.P, "undergradFrom"), (Attr.O, "hpi")),
        )
        profiler = NaiveProfiler(t1)
        assert profiler.is_valid(cind)
        assert profiler.support(cind) == 1

    def test_section_3_2_ar_and_implied_cind(self, t1):
        """§3.2: the AR o=gradStudent → p=rdf:type holds in Table 1 and
        implies the CIND (s, o=gradStudent) ⊆ (s, p=rdf:type ∧
        o=gradStudent); the inverse implication is not necessarily true."""
        d = t1.dictionary
        profiler = NaiveProfiler(t1)
        rules = {
            (sa.rule.render(d), sa.support)
            for sa in profiler.association_rules(2)
        }
        assert ("o=gradStudent → p=rdf:type", 2) in rules
        implied = CIND(
            cap(d, Attr.S, (Attr.O, "gradStudent")),
            cap(d, Attr.S, (Attr.P, "rdf:type"), (Attr.O, "gradStudent")),
        )
        assert profiler.is_valid(implied)
        assert profiler.support(implied) == 2

    def test_section_5_1_equivalence_pruning(self, t1):
        """§5.1: an AR β=v1 → γ=v2 makes (α, β=v1 ∧ γ=v2) equal in extent
        to (α, β=v1) — the reverse inclusion "trivially holds"."""
        d = t1.dictionary
        profiler = NaiveProfiler(t1)
        unary = cap(d, Attr.S, (Attr.O, "gradStudent"))
        binary = cap(d, Attr.S, (Attr.P, "rdf:type"), (Attr.O, "gradStudent"))
        assert profiler.interpretation(unary) == profiler.interpretation(binary)
        assert CIND(binary, unary).is_trivial()


class TestSection6Example:
    def test_capture_group_of_patrick_at_h3(self, t1):
        """§6.1: "for the dataset in Table 1, a support threshold of 3,
        and the value patrick, we have the capture evidences patrick ∈
        (s, p=rdf:type) and patrick ∈ (s, p=undergradFrom)"."""
        from tests.test_capture_groups import build_groups

        d = t1.dictionary
        groups = {frozenset(g) for g in build_groups(t1, 3)}
        expected = frozenset(
            {
                cap(d, Attr.S, (Attr.P, "rdf:type")),
                cap(d, Attr.S, (Attr.P, "undergradFrom")),
            }
        )
        assert expected in groups


class TestSection8Claims:
    def test_diseasome_support_distribution(self):
        """§3.1: "In the aforementioned Diseasome dataset, over 84% of its
        ... minimal cinds have a support of 1" — the synthetic stand-in
        must show the same support-1 dominance (checked on a scaled copy,
        where exhaustive enumeration is feasible)."""
        encoded = diseasome(scale=0.012).encode()
        profiler = NaiveProfiler(encoded)
        minimal = profiler.pertinent_cinds(1)
        share_one = sum(1 for sc in minimal if sc.support == 1) / len(minimal)
        assert share_one > 0.5

    def test_predicate_projections_rarely_meaningful(self):
        """§8.3: the experiments "rarely showed meaningful cinds on
        predicates" — predicate-projected CINDs are a small minority of
        the full-scope result on the Diseasome stand-in."""
        result = find_pertinent_cinds(
            diseasome(scale=0.3).encode(), support_threshold=25
        )
        predicate_projected = [
            sc for sc in result.cinds if sc.cind.dependent.attr is Attr.P
        ]
        assert len(predicate_projected) < len(result.cinds) * 0.25

    def test_theorem_1_broad_cinds_from_groups(self, t1):
        """Theorem 1: every valid CIND with support >= h is extracted
        from the capture groups — i.e. the pipeline's broad set equals
        the oracle's broad set (spot-checked here; the discovery suite
        fuzzes this across many datasets)."""
        config = RDFindConfig(support_threshold=2, keep_broad_cinds=True)
        result = RDFind(config).discover(t1)
        got = {(sc.cind, sc.support) for sc in result.broad_cinds}
        want = set(NaiveProfiler(t1).broad_cinds(2).items())
        assert got == want
