"""Synthetic evaluation datasets.

The paper evaluates on seven real-world datasets plus LUBM (Table 2).
Real dumps (DBpedia 2014, Freebase, ...) are not redistributable or
obtainable offline, so this package provides seeded generators that
reproduce each dataset's *profile*: triple count (scaled where noted), the
heavy-tailed condition-frequency distribution that drives RDFind's
pruning (Figure 4), and the specific CIND-bearing structures the paper
reports (subproperty pairs, exact co-occurrence rules, class hierarchies).
See DESIGN.md ("Substitutions") for the rationale.

Every generator is a seeded, deterministic function returning a
:class:`~repro.rdf.model.Dataset` and is registered in
:mod:`repro.datasets.registry`, which mirrors Table 2.
"""

from repro.datasets.countries import countries
from repro.datasets.dbpedia import db14_mpce, db14_ple
from repro.datasets.diseasome import diseasome
from repro.datasets.drugbank import drugbank
from repro.datasets.freebase import freebase
from repro.datasets.linkedmdb import linkedmdb
from repro.datasets.lubm import lubm
from repro.datasets.noise import corrupt, erosion_curve, violating_triple
from repro.datasets.registry import DATASETS, DatasetSpec, get_dataset, load
from repro.datasets.table1 import table1

__all__ = [
    "countries",
    "db14_mpce",
    "db14_ple",
    "diseasome",
    "drugbank",
    "freebase",
    "linkedmdb",
    "lubm",
    "DATASETS",
    "DatasetSpec",
    "get_dataset",
    "load",
    "table1",
    "corrupt",
    "erosion_curve",
    "violating_triple",
]
