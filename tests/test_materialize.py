"""Tests for ontology materialization."""

import pytest

from repro.apps.materialize import materialize_ontology, subclass_closure
from repro.apps.ontology import OntologyHint
from repro.rdf.model import Triple
from repro.rdf.namespaces import OWL, RDF, RDFS
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples


def hint(kind, subject, obj, support=10):
    return OntologyHint(kind, subject, obj, support)


class TestMaterialization:
    def test_each_kind_maps_to_its_vocabulary(self):
        ontology = materialize_ontology(
            [
                hint("subclass", "Frog", "Amphibian"),
                hint("subproperty", "band", "artist"),
                hint("domain", "capital", "Country"),
                hint("range", "capital", "City"),
                hint("class", "Country", "rdf:type"),
            ]
        )
        assert Triple("Frog", RDFS.subClassOf, "Amphibian") in ontology
        assert Triple("band", RDFS.subPropertyOf, "artist") in ontology
        assert Triple("capital", RDFS.domain, "Country") in ontology
        assert Triple("capital", RDFS.range, "City") in ontology
        assert Triple("Country", RDF.type, RDFS.Class) in ontology

    def test_mutual_subclasses_collapse_to_equivalence(self):
        ontology = materialize_ontology(
            [
                hint("subclass", "Race", "GrandPrix"),
                hint("subclass", "GrandPrix", "Race"),
            ]
        )
        assert Triple("GrandPrix", OWL.equivalentClass, "Race") in ontology
        assert not any(t.p == RDFS.subClassOf for t in ontology)

    def test_collapse_can_be_disabled(self):
        ontology = materialize_ontology(
            [
                hint("subclass", "Race", "GrandPrix"),
                hint("subclass", "GrandPrix", "Race"),
            ],
            collapse_equivalences=False,
        )
        assert sum(1 for t in ontology if t.p == RDFS.subClassOf) == 2

    def test_min_support_filters(self):
        ontology = materialize_ontology(
            [hint("subclass", "A", "B", support=3)], min_support=5
        )
        assert len(ontology) == 0

    def test_duplicate_class_hints_deduplicated(self):
        ontology = materialize_ontology(
            [hint("class", "C", "rdf:type"), hint("class", "C", "typeOf")]
        )
        assert len(ontology) == 1

    def test_serializes_as_ntriples(self):
        ontology = materialize_ontology([hint("subclass", "Frog", "Amphibian")])
        text = serialize_ntriples(ontology)
        reparsed = list(parse_ntriples(text))
        assert reparsed == list(ontology)


class TestClosure:
    def test_transitive_ancestors(self):
        ontology = materialize_ontology(
            [
                hint("subclass", "Leptodactylidae", "Frog"),
                hint("subclass", "Frog", "Amphibian"),
                hint("subclass", "Amphibian", "Animal"),
            ]
        )
        closure = subclass_closure(ontology)
        assert closure["Leptodactylidae"] == {"Frog", "Amphibian", "Animal"}
        assert closure["Frog"] == {"Amphibian", "Animal"}

    def test_cycle_detection(self):
        ontology = materialize_ontology(
            [
                hint("subclass", "A", "B"),
                hint("subclass", "B", "C"),
                hint("subclass", "C", "A"),
            ],
            collapse_equivalences=True,  # 3-cycle is not a mutual pair
        )
        with pytest.raises(ValueError):
            subclass_closure(ontology)


class TestEndToEnd:
    def test_discovered_hints_materialize(self):
        from repro.apps import reverse_engineer_ontology
        from repro.core.discovery import find_pertinent_cinds
        from repro.datasets import db14_mpce

        result = find_pertinent_cinds(
            db14_mpce(scale=0.15).encode(), support_threshold=10
        )
        hints = reverse_engineer_ontology(result, min_support=10)
        ontology = materialize_ontology(hints)
        assert Triple("Leptodactylidae", RDFS.subClassOf, "Frog") in ontology
        closure = subclass_closure(ontology)
        assert "Frog" in closure.get("Leptodactylidae", set())
