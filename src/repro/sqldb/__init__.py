"""A miniature relational database engine.

The Cinderella baseline "performs left-outer joins ... using a database"
(the paper ran it on MySQL 5.6 and PostgreSQL 9.3).  This package provides
that substrate: row-oriented storage plus a Volcano-style iterator
executor with scans, projections, distinct, filters, aggregation, and two
left-outer-join implementations — a hash join (PostgreSQL's preferred
strategy for these plans) and a sort-merge join (the MySQL profile).

The engine is deliberately generic — rows flow tuple-at-a-time through
operator iterators, exactly like a classic interpreted executor — so the
baseline pays the per-row indirection a real client-over-DBMS setup pays,
rather than the cost of a hand-fused Python loop.
"""

from repro.sqldb.storage import Database, Table
from repro.sqldb.executor import (
    Aggregate,
    Cursor,
    Distinct,
    Filter,
    HashLeftOuterJoin,
    Operator,
    Project,
    Scan,
    SortMergeLeftOuterJoin,
)

__all__ = [
    "Database",
    "Table",
    "Aggregate",
    "Cursor",
    "Distinct",
    "Filter",
    "HashLeftOuterJoin",
    "Operator",
    "Project",
    "Scan",
    "SortMergeLeftOuterJoin",
]
