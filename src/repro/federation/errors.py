"""Typed failure taxonomy of the federated SPARQL layer.

Real endpoints fail in three fundamentally different ways, and the
retry/circuit machinery must treat them differently:

* **transient** (:class:`TransientEndpointError`) — timeouts, dropped
  connections, 429/502/503/504.  Retrying can succeed; repeated
  transients trip the per-endpoint circuit breaker.
* **permanent** (:class:`PermanentEndpointError`) — a malformed query
  (400), missing resource (404), auth failure.  Retrying the identical
  request cannot change the outcome; fail fast, never burn the retry
  budget, never count against the breaker (the *endpoint* is healthy —
  the request is wrong).
* **malformed response** (:class:`MalformedResponseError`) — the server
  answered 200 but the body is truncated, not JSON, or not SPARQL
  results.  Usually a proxy or connection artifact, so it is retried
  like a transient — but kept as its own type because a *persistently*
  malformed endpoint (wrong URL, HTML error page) should be diagnosable
  from the exception type, not from a generic "transient" label.

:class:`CircuitOpenError` is not an endpoint failure at all: it is the
client refusing to send, because the breaker has seen enough consecutive
transients to declare the endpoint down (see
:mod:`repro.federation.breaker`).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "CircuitOpenError",
    "EndpointError",
    "FederationError",
    "FetchMismatchError",
    "MalformedResponseError",
    "PermanentEndpointError",
    "TransientEndpointError",
]


class FederationError(RuntimeError):
    """Base class for every federated-ingestion failure."""


class EndpointError(FederationError):
    """A failure attributable to one endpoint request.

    ``retryable`` is the class-level contract the retry loop keys on;
    instances carry the endpoint URL for multi-source error reports.
    """

    retryable = False

    def __init__(self, message: str, endpoint: str = "") -> None:
        super().__init__(message)
        self.endpoint = endpoint


class TransientEndpointError(EndpointError):
    """The endpoint (or the path to it) hiccuped; retrying can succeed.

    ``retry_after`` carries the server's own backoff hint in seconds
    (the ``Retry-After`` header of a 429/503) when one was given.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        endpoint: str = "",
        retry_after: Optional[float] = None,
        status: Optional[int] = None,
    ) -> None:
        super().__init__(message, endpoint)
        self.retry_after = retry_after
        self.status = status


class PermanentEndpointError(EndpointError):
    """The request itself is wrong; an identical retry cannot succeed."""

    retryable = False

    def __init__(
        self, message: str, endpoint: str = "", status: Optional[int] = None
    ) -> None:
        super().__init__(message, endpoint)
        self.status = status


class MalformedResponseError(EndpointError):
    """The endpoint answered, but not with parseable SPARQL results.

    Truncated bodies, invalid JSON, missing ``head``/``results`` keys.
    Retryable — truncation is usually a connection artifact — but typed
    apart from plain transients so persistent garbage is diagnosable.
    """

    retryable = True


class CircuitOpenError(FederationError):
    """The per-endpoint circuit breaker is open; the request was not sent.

    ``retry_in`` is the remaining cooldown in seconds — after it elapses
    the breaker half-opens and lets one probe through.
    """

    def __init__(self, message: str, endpoint: str = "", retry_in: float = 0.0) -> None:
        super().__init__(message)
        self.endpoint = endpoint
        self.retry_in = retry_in


class FetchMismatchError(FederationError):
    """A resumable fetch workspace disagrees with this fetch's identity.

    Raised when a workspace manifest fingerprints a *different*
    endpoint/query/config than the resuming fetch — continuing would
    silently splice two different result streams together.  Mirrors the
    checkpoint subsystem's ``CheckpointMismatchError`` discipline:
    mismatch is an error, corruption is a warned clean restart.
    """
