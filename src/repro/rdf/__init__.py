"""RDF substrate: data model, N-Triples I/O, namespaces, and a triple store.

This subpackage provides everything RDFind needs to consume RDF data:

* :mod:`repro.rdf.model` — terms, triples, datasets, and the integer term
  dictionary that the discovery pipeline operates on.
* :mod:`repro.rdf.ntriples` — a line-based N-Triples parser and serializer.
* :mod:`repro.rdf.namespaces` — common vocabularies and CURIE helpers.
* :mod:`repro.rdf.store` — an indexed in-memory triple store with
  triple-pattern matching, used by the SPARQL use case.
* :mod:`repro.rdf.turtle` — a reader for the Turtle subset real dumps use.
"""

from repro.rdf.model import (
    Attr,
    Dataset,
    EncodedDataset,
    TermDictionary,
    Triple,
)
from repro.rdf.namespaces import NamespaceManager, RDF, RDFS, FOAF, XSD
from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_ntriples,
    parse_ntriples_file,
    serialize_ntriples,
    write_ntriples_file,
)
from repro.rdf.store import TripleStore
from repro.rdf.turtle import TurtleParseError, parse_turtle, parse_turtle_file

__all__ = [
    "Attr",
    "Dataset",
    "EncodedDataset",
    "TermDictionary",
    "Triple",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "FOAF",
    "XSD",
    "NTriplesParseError",
    "parse_ntriples",
    "parse_ntriples_file",
    "serialize_ntriples",
    "write_ntriples_file",
    "TripleStore",
    "TurtleParseError",
    "parse_turtle",
    "parse_turtle_file",
]
