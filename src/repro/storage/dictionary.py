"""Term dictionary: the interning layer of the storage subsystem.

Every RDF term (subject, predicate, or object string) is interned to a
dense integer id on first sight; the reverse mapping is a plain list, so
decoding is an O(1) index.  Ids are stable under incremental appends —
encoding more data never renumbers terms already seen — which is what
lets the incremental maintainer, cross-dataset integration, and the
columnar :class:`~repro.storage.columnar.EncodedDataset` all share one id
space.

This module is the bottom of the storage stack and deliberately imports
nothing from the rest of the package: :mod:`repro.rdf.model` re-exports
:class:`TermDictionary` and :class:`EncodedTriple` from here, so anything
above the RDF data model may depend on it.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Sequence

#: Largest id representable in a 32-bit signed array column.
INT32_MAX = 2**31 - 1


class EncodedTriple(NamedTuple):
    """A dictionary-encoded triple of integer term ids."""

    s: int
    p: int
    o: int

    def get(self, attr) -> int:
        """Project the encoded triple onto ``attr``."""
        return self[int(attr)]


class TermDictionary:
    """Bidirectional mapping between RDF terms and dense integer ids.

    Ids are assigned in first-seen order starting from 0, so encoding is
    deterministic for a fixed input order.  Decoding an unknown id raises
    ``KeyError``; encoding always succeeds (new terms get fresh ids).
    """

    __slots__ = ("_term_to_id", "_id_to_term", "_utf8_payload")

    def __init__(self) -> None:
        self._term_to_id: dict = {}
        self._id_to_term: List[str] = []
        self._utf8_payload = 0

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def encode(self, term: str) -> int:
        """Return the id for ``term``, assigning a new one if needed."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
            self._utf8_payload += _term_nbytes(term)
        return term_id

    def encode_existing(self, term: str) -> int:
        """Return the id for a term that must already be present."""
        return self._term_to_id[term]

    def lookup(self, term: str) -> Optional[int]:
        """The id for ``term`` if it is known, else ``None`` (no interning)."""
        return self._term_to_id.get(term)

    def encode_many(self, terms: Sequence[str]) -> List[int]:
        """Intern a batch of terms, preserving order."""
        encode = self.encode
        return [encode(term) for term in terms]

    def decode(self, term_id: int) -> str:
        """Return the term for ``term_id``."""
        return self._id_to_term[term_id]

    def encode_triple(self, triple) -> EncodedTriple:
        """Dictionary-encode an ``(s, p, o)`` triple of strings."""
        encode = self.encode
        return EncodedTriple(encode(triple[0]), encode(triple[1]), encode(triple[2]))

    def decode_triple(self, triple):
        """Decode an encoded triple back to a string :class:`Triple`."""
        from repro.rdf.model import Triple

        decode = self.decode
        return Triple(decode(triple[0]), decode(triple[1]), decode(triple[2]))

    def terms(self) -> Iterator[str]:
        """All known terms in id order."""
        return iter(self._id_to_term)

    @property
    def typecode(self) -> str:
        """Narrowest ``array`` typecode that holds every assigned id."""
        return "i" if len(self._id_to_term) <= INT32_MAX else "q"

    def nbytes(self) -> int:
        """Resident-set proxy of the dictionary itself.

        Counts the UTF-8 payload bytes of every term once (maintained
        incrementally as terms are interned — ``len(term)`` would count
        *characters* and underprice non-ASCII IRIs/literals) plus one
        pointer-sized slot in each of the two directions — deliberately a
        *proxy* (like the record-count budgets of the dataflow engine),
        not an exact ``sys.getsizeof`` walk, so it stays comparable
        across platforms.
        """
        return self._utf8_payload + 16 * len(self._id_to_term)

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state) -> None:
        self._term_to_id = state["_term_to_id"]
        self._id_to_term = state["_id_to_term"]
        payload = state.get("_utf8_payload")
        if payload is None:
            # Pickles from before the byte-accurate accounting.
            payload = sum(_term_nbytes(term) for term in self._id_to_term)
        self._utf8_payload = payload


def _term_nbytes(term: str) -> int:
    """UTF-8 byte length of one term (character count on the ASCII fast
    path, where the two are equal)."""
    return len(term) if term.isascii() else len(term.encode("utf-8", "surrogatepass"))
