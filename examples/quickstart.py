"""Quickstart: discover pertinent CINDs in the paper's running example.

Runs RDFind over the 8-triple university dataset of Table 1 and walks
through the concepts of the paper: captures, CINDs, supports, association
rules, and the equivalence pruning that lets an AR stand in for a binary
capture.

Run with::

    python examples/quickstart.py
"""

from repro import NaiveProfiler, find_pertinent_cinds
from repro.datasets import table1


def main() -> None:
    dataset = table1()
    print(f"dataset: {dataset!r}")
    for triple in dataset:
        print(f"  {triple}")

    # Discover everything that is supported by at least 2 distinct values.
    result = find_pertinent_cinds(dataset, support_threshold=2)
    print(f"\n{result!r}")

    print("\npertinent CINDs (minimal and broad):")
    for line in result.render_cinds():
        print("  " + line)

    print("\nassociation rules (exact, confidence 1):")
    for line in result.render_association_rules():
        print("  " + line)

    # The paper's Example 3 CIND:
    #   (s, p=rdf:type ∧ o=gradStudent) ⊆ (s, p=undergradFrom)
    # Because o=gradStudent → p=rdf:type is an association rule, the
    # binary dependent capture is extent-equal to (s, o=gradStudent) and
    # RDFind reports the inclusion through that unary capture:
    example3 = "(s, o=gradStudent) ⊆ (s, p=undergradFrom)  [support=2]"
    assert example3 in result.render_cinds(), "Example 3 must be discovered"
    print(f"\nExample 3 of the paper, via its AR-canonical capture:\n  {example3}")

    # Cross-check against the brute-force oracle.
    oracle_cinds, oracle_ars = NaiveProfiler(dataset.encode()).discover(2)
    print(
        f"\nbrute-force oracle agrees: {len(oracle_cinds)} CINDs, "
        f"{len(oracle_ars)} ARs"
    )


if __name__ == "__main__":
    main()
