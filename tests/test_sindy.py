"""Tests for the SINDY-style plain IND discovery baseline."""

import pytest

from repro.baselines import IND, discover_inds
from repro.rdf.model import ALL_ATTRS, Attr, Dataset
from tests.conftest import random_rdf


def naive_inds(dataset):
    """INDs by definition: distinct-value containment per attribute pair."""
    values = {attr: dataset.distinct_values(attr) for attr in ALL_ATTRS}
    found = set()
    for dependent in ALL_ATTRS:
        for referenced in ALL_ATTRS:
            if dependent != referenced and values[dependent] <= values[referenced]:
                found.add(IND(dependent, referenced))
    return found


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("parallelism", [1, 3])
    def test_matches_definition(self, seed, parallelism):
        dataset = random_rdf(seed + 800, n_triples=40)
        result = discover_inds(dataset.encode(), parallelism=parallelism)
        assert set(result.inds) == naive_inds(dataset)

    def test_exact_ind_on_planted_containment(self):
        rows = [("a", "p", "x"), ("b", "p", "a"), ("x", "p", "b")]
        # subjects {a,b,x}; objects {x,a,b} — mutual containment
        result = discover_inds(Dataset.from_tuples(rows).encode())
        assert IND(Attr.S, Attr.O) in result.inds
        assert IND(Attr.O, Attr.S) in result.inds

    def test_no_inds_on_disjoint_vocabularies(self, table1_encoded):
        """Table 1's s/p/o vocabularies are disjoint: no plain INDs —
        the paper's Section 1 motivation for CINDs."""
        result = discover_inds(table1_encoded)
        assert result.inds == []

    def test_partial_overlaps_in_unit_range(self):
        dataset = random_rdf(820, n_triples=50)
        result = discover_inds(dataset.encode())
        for ind, ratio in result.partial_overlaps.items():
            assert 0.0 < ratio <= 1.0
            if ratio == 1.0:
                assert ind in result.inds

    def test_partial_overlap_values(self):
        rows = [("a", "p", "a"), ("b", "p", "x")]
        result = discover_inds(Dataset.from_tuples(rows).encode())
        # subjects {a,b}: 'a' appears among objects {a,x} -> 1/2 covered
        assert result.partial_overlaps[IND(Attr.S, Attr.O)] == pytest.approx(0.5)

    def test_render(self):
        dataset = random_rdf(821, n_triples=30)
        result = discover_inds(dataset.encode())
        lines = result.render()
        assert all("⊆" in line for line in lines)

    def test_accepts_string_dataset(self):
        result = discover_inds(Dataset.from_tuples([("a", "b", "c")]))
        assert result.elapsed_seconds >= 0
