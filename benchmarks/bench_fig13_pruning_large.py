"""Figure 13: RDFind vs RDFind-DE on the larger datasets.

The paper runs both for a small and a large support threshold per dataset
and finds: for large thresholds DE is occasionally marginally faster (the
dominant-group machinery is pure overhead there), while for small
thresholds RDFind is far faster — and DE *fails on DB14-MPCE and
DB14-PLE* "due to main memory requirements".

The same single-node memory budget as Figure 12 applies.  At this
reproduction's dataset scales (the DBpedia stand-ins are 1/220-1/850 of
the originals, DESIGN.md) the dominant-capture-group blowup that killed
DE on DB14-* in the paper manifests on DrugBank instead — the mechanism
(quadratic candidate sets from dominant groups at low h) is the same, its
locus moves with the value-frequency skew that survives scaling.
"""

import time

import pytest

from repro.dataflow.engine import SimulatedOutOfMemory
from benchmarks.bench_fig12_pruning_small import MEMORY_BUDGET

#: (dataset, small h, large h) — the paper's Figure 13 x-axis.
SETTINGS = (
    ("LUBM-1", 10, 1000),
    ("DrugBank", 10, 1000),
    ("LinkedMDB", 25, 1000),
    ("DB14-MPCE", 25, 1000),
    ("DB14-PLE", 100, 1000),
)


@pytest.mark.parametrize(
    "dataset_name,small_h,large_h", SETTINGS, ids=[s[0] for s in SETTINGS]
)
def test_fig13_pruning_ablation_large(
    dataset_name, small_h, large_h, benchmark, report, cache
):
    def run(h, variant):
        started = time.perf_counter()
        try:
            _result, elapsed = cache.run(
                dataset_name, h, variant=variant, memory_budget=MEMORY_BUDGET
            )
            return elapsed, False
        except SimulatedOutOfMemory:
            return time.perf_counter() - started, True

    def body():
        return {
            (h, variant): run(h, variant)
            for h in (small_h, large_h)
            for variant in ("rdfind", "de")
        }

    outcomes = benchmark.pedantic(body, rounds=1, iterations=1)

    section = report.section(
        f"Figure 13 — RDFind vs RDFind-DE, {dataset_name} "
        "('failed' = exceeded the 4GB-node budget, like the paper's crosses)"
    )
    section.row(f"{'h':>6} | {'RDFind':>12} | {'RDFind-DE':>12}")
    for h in (small_h, large_h):
        cells = []
        for variant in ("rdfind", "de"):
            seconds, failed = outcomes[(h, variant)]
            cells.append(f">{seconds:6.2f}s !" if failed else f"{seconds:8.2f}s")
        section.row(f"{h:>6} | {cells[0]:>12} | {cells[1]:>12}")

    # RDFind itself must always complete.
    for h in (small_h, large_h):
        _seconds, failed = outcomes[(h, "rdfind")]
        assert not failed

    if dataset_name == "DrugBank":
        # The paper's crosses hit DB14-* at full scale; at this scale the
        # same quadratic blowup kills DE on DrugBank's small-h run.
        _seconds, failed = outcomes[(small_h, "de")]
        assert failed
