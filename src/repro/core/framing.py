"""Binary frame streams: the substrate under the spill-file format.

A frame on disk is ``[4-byte big-endian payload length][4-byte CRC32 of
the payload][payload]``; a stream of frames ends at clean EOF.
Corruption surfaces as :class:`FrameCorruptionError` (checksum mismatch)
and a short read as :class:`FrameTruncatedError`, so a reader can
distinguish "bit rot" from "writer died mid-frame".

The codec is re-exported by :mod:`repro.core.serialization` (the
serialization facade); it lives here, dependency-free, so the shuffle
subsystem (:mod:`repro.dataflow.shuffle`) can build run files on it
without importing the discovery result types.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterator, Optional

__all__ = [
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameCorruptionError",
    "FrameTruncatedError",
    "pack_frame",
    "write_frame",
    "read_frame",
    "iter_frames",
]

#: ``[payload length][CRC32 of payload]``, both unsigned 32-bit big-endian.
FRAME_HEADER = struct.Struct(">II")

#: Upper bound on a single frame's payload; a declared length beyond this
#: is treated as corruption (it would otherwise make a flipped length
#: byte allocate gigabytes before the CRC ever gets checked).
MAX_FRAME_BYTES = 1 << 30


class FrameError(ValueError):
    """Base class for binary-frame stream failures."""


class FrameCorruptionError(FrameError):
    """A frame's payload does not match its CRC32 (or its length is absurd)."""


class FrameTruncatedError(FrameError):
    """The stream ended in the middle of a frame (writer died mid-write)."""


def pack_frame(payload: bytes) -> bytes:
    """One length-prefixed, CRC-protected frame as bytes."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame payload of {len(payload)} bytes is too large")
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def write_frame(stream: BinaryIO, payload: bytes) -> int:
    """Append one frame to ``stream``; returns the bytes written."""
    frame = pack_frame(payload)
    stream.write(frame)
    return len(frame)


def read_frame(stream: BinaryIO) -> Optional[bytes]:
    """Read the next frame's payload, or ``None`` at clean end-of-stream.

    Raises :class:`FrameTruncatedError` when the stream ends inside a
    frame and :class:`FrameCorruptionError` when the payload fails its
    CRC check.
    """
    header = stream.read(FRAME_HEADER.size)
    if not header:
        return None
    if len(header) < FRAME_HEADER.size:
        raise FrameTruncatedError(
            f"stream ended inside a frame header ({len(header)} of "
            f"{FRAME_HEADER.size} bytes)"
        )
    length, checksum = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameCorruptionError(
            f"declared frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    payload = stream.read(length)
    if len(payload) < length:
        raise FrameTruncatedError(
            f"stream ended inside a frame payload ({len(payload)} of {length} bytes)"
        )
    if zlib.crc32(payload) != checksum:
        raise FrameCorruptionError(
            f"frame CRC mismatch (expected {checksum:#010x}, "
            f"got {zlib.crc32(payload):#010x})"
        )
    return payload


def iter_frames(stream: BinaryIO) -> Iterator[bytes]:
    """Yield every frame payload in ``stream`` until clean EOF."""
    while True:
        payload = read_frame(stream)
        if payload is None:
            return
        yield payload
