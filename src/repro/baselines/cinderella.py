"""Cinderella: the relational CIND-discovery baseline (Section 8.2).

Cinderella [Bauckmann et al., CIKM 2012] assumes *partial INDs* are given
and searches for dependent-side conditions that select exactly the
included tuples; the referenced side stays unconditioned.  Applied to an
RDF dataset viewed as a single three-column table ``T(s, p, o)``, the
partial INDs are the six column pairs ``T.α ⊆ T.β`` (α ≠ β), each a
self-join on ``T`` that Cinderella executes through a database.

This implementation mirrors the published algorithm's structure:

1. **Join phase** — a left outer join of the dependent column against the
   distinct referenced column marks every row as covered/uncovered.  Two
   backend profiles reproduce the paper's MySQL/PostgreSQL split:
   ``postgresql`` performs a hash join, ``mysql`` a sort-merge join (the
   relative runtimes in Figure 7 stem from exactly this difference).
2. **Condition generation** — unary and binary conditions over the two
   non-dependent columns are counted; a condition is emitted when it
   selects *only* covered rows and at least ``h`` distinct dependent
   values.

The standard variant materializes the full join product per partial IND
and keeps distinct-value sets for *every* condition — the memory appetite
that makes it fail on Diseasome in the paper.  The optimized variant
(Cinderella*, "more memory-efficient joins, avoids self-joins") streams
the join and keeps distinct-value sets only for conditions whose row
frequency reaches ``h`` (a cheap first counting pass), so its memory
footprint shrinks as ``h`` grows — reproducing the paper's failures at
h=5/10 only.  Exceeding ``memory_budget`` (in cells: materialized rows +
tracked set entries) raises
:class:`~repro.dataflow.engine.SimulatedOutOfMemory`.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Set, Tuple, Union

from repro.core.conditions import (
    BinaryCondition,
    Condition,
    UnaryCondition,
)
from repro.dataflow.engine import SimulatedOutOfMemory
from repro.dataflow.gcpause import gc_paused
from repro.rdf.model import ALL_ATTRS, Attr, Dataset, EncodedDataset
from repro.sqldb import (
    Cursor,
    Database,
    Distinct,
    HashLeftOuterJoin,
    Project,
    Scan,
    SortMergeLeftOuterJoin,
)

BACKENDS = ("postgresql", "mysql")


class ConditionalInclusion(NamedTuple):
    """Cinderella's output shape: a conditioned column in a full column.

    ``(dep_attr, condition) ⊆ (ref_attr, ⊤)`` — note the unconditioned
    referenced side; this is the simplification of the CIND discovery
    problem that the paper credits Cinderella with (Section 9).
    """

    dep_attr: Attr
    condition: Condition
    ref_attr: Attr
    support: int

    def render(self) -> str:
        """Paper-style rendering with an unconditioned referenced side.

        Cinderella works on the raw string table (its conditions carry
        term strings, not dictionary ids), so no dictionary is needed.
        """
        return (
            f"({self.dep_attr.symbol}, {_render_condition(self.condition)}) ⊆ "
            f"({self.ref_attr.symbol}, ⊤)  [support={self.support}]"
        )


@dataclass(frozen=True)
class CinderellaConfig:
    """Cinderella run parameters."""

    h: int = 25
    backend: str = "postgresql"
    optimized: bool = False
    memory_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.h < 1:
            raise ValueError(f"support threshold must be >= 1, got {self.h}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")

    @property
    def variant_name(self) -> str:
        """Label as used in the paper's Figure 7 (e.g. ``Cin*/Pos``)."""
        star = "*" if self.optimized else ""
        db = "Pos" if self.backend == "postgresql" else "My"
        return f"Cin{star}/{db}"


@dataclass
class CinderellaResult:
    """Everything a Cinderella run produced."""

    inclusions: List[ConditionalInclusion]
    config: CinderellaConfig
    elapsed_seconds: float = 0.0
    peak_memory_cells: int = 0

    def render(self, limit: Optional[int] = None) -> List[str]:
        """Rendered inclusions (most supported first)."""
        rows = self.inclusions if limit is None else self.inclusions[:limit]
        return [row.render() for row in rows]

    def __repr__(self) -> str:
        return (
            f"<CinderellaResult {self.config.variant_name} h={self.config.h}: "
            f"{len(self.inclusions)} inclusions in {self.elapsed_seconds:.2f}s>"
        )


class Cinderella:
    """The Cinderella baseline algorithm."""

    def __init__(self, config: Optional[CinderellaConfig] = None) -> None:
        self.config = config if config is not None else CinderellaConfig()

    def discover(
        self, dataset: Union[Dataset, EncodedDataset]
    ) -> CinderellaResult:
        """Find all conditional inclusions across the six column pairs."""
        if isinstance(dataset, EncodedDataset):
            dataset = dataset.decode()
        started = time.perf_counter()
        inclusions: List[ConditionalInclusion] = []
        peak = 0
        with gc_paused():
            database = Database()
            table = database.create_table("triples", ("s", "p", "o"))
            table.insert_many(dataset.triples)
            for dep_attr in ALL_ATTRS:
                for ref_attr in ALL_ATTRS:
                    if dep_attr == ref_attr:
                        continue
                    found, used = self._one_partial_ind(table, dep_attr, ref_attr)
                    inclusions.extend(found)
                    peak = max(peak, used)
        inclusions.sort(key=lambda row: (-row.support, row))
        return CinderellaResult(
            inclusions=inclusions,
            config=self.config,
            elapsed_seconds=time.perf_counter() - started,
            peak_memory_cells=peak,
        )

    # ------------------------------------------------------------------
    # join phase
    # ------------------------------------------------------------------

    def _joined_rows(
        self, table, dep_attr: Attr, ref_attr: Attr
    ) -> Iterator[Tuple[Tuple[int, int, int], bool]]:
        """Run the partial-IND outer join through the database engine.

        The plan is the one Cinderella issues against its DBMS::

            SELECT T.s, T.p, T.o, R.v
            FROM triples T LEFT OUTER JOIN
                 (SELECT DISTINCT <ref> AS v FROM triples) R
              ON T.<dep> = R.v

        and rows stream to the client tuple-at-a-time.  ``covered`` is the
        outer join's null test.  The backend profile selects the join
        implementation: hash join (PostgreSQL) or sort-merge (MySQL) —
        exactly the difference behind the two bar groups in Figure 7.
        """
        # The DBMS manages its own work memory (the paper's servers had
        # dedicated buffers); the memory budget models the *client-side*
        # algorithm state, where the published Cinderella actually fails.
        referenced = Distinct(Project(Scan(table), (int(ref_attr),)))
        if self.config.backend == "postgresql":
            join: Iterator = HashLeftOuterJoin(
                Scan(table), referenced,
                left_key=int(dep_attr), right_key=0,
            )
        else:
            join = SortMergeLeftOuterJoin(
                Scan(table), referenced,
                left_key=int(dep_attr), right_key=0,
            )
        for row in Cursor(join):
            yield row[:3], row[3] is not None

    # ------------------------------------------------------------------
    # condition generation
    # ------------------------------------------------------------------

    def _one_partial_ind(
        self, table, dep_attr: Attr, ref_attr: Attr
    ) -> Tuple[List[ConditionalInclusion], int]:
        """Join one column pair and generate its valid conditions."""
        if self.config.optimized:
            return self._generate_optimized(table, dep_attr, ref_attr)
        return self._generate_standard(table, dep_attr, ref_attr)

    def _generate_standard(
        self, table, dep_attr: Attr, ref_attr: Attr
    ) -> Tuple[List[ConditionalInclusion], int]:
        """Materialize the join product, then group by condition."""
        budget = self.config.memory_budget
        dep_index = int(dep_attr)
        cond_attrs = Attr.others(dep_attr)

        # The materialized join product (fetchall): one row per triple
        # with its covered flag — the standard variant's memory hog.
        join_product: List[Tuple[Tuple[int, int, int], bool]] = []
        for triple, covered in self._joined_rows(table, dep_attr, ref_attr):
            join_product.append((triple, covered))
            if budget is not None and len(join_product) > budget:
                raise SimulatedOutOfMemory(
                    f"cinderella/join({dep_attr.symbol}⊆{ref_attr.symbol})",
                    len(join_product),
                    budget,
                )

        # One state entry per condition: its distinct dependent values and
        # whether it ever selected an uncovered row.
        state: Dict[Condition, Tuple[Set, List[bool]]] = {}
        cells = len(join_product)
        for triple, covered in join_product:
            dep_value = triple[dep_index]
            for condition in _conditions_of(triple, cond_attrs):
                entry = state.get(condition)
                if entry is None:
                    entry = (set(), [False])
                    state[condition] = entry
                    cells += 1
                values, violated = entry
                if not covered:
                    violated[0] = True
                elif dep_value not in values:
                    values.add(dep_value)
                    cells += 1
                if budget is not None and cells > budget:
                    raise SimulatedOutOfMemory(
                        "cinderella/condition-groups", cells, budget
                    )

        found = [
            ConditionalInclusion(dep_attr, condition, ref_attr, len(values))
            for condition, (values, violated) in state.items()
            if not violated[0] and len(values) >= self.config.h
        ]
        return found, cells

    def _generate_optimized(
        self, table, dep_attr: Attr, ref_attr: Attr
    ) -> Tuple[List[ConditionalInclusion], int]:
        """Cinderella*: stream the join; track only h-frequent conditions.

        A first streamed pass counts per-condition row frequencies (small
        integer counters); only conditions with at least ``h`` covered
        rows can be valid with support >= h, so only they get
        distinct-value sets in the second streamed pass.  Nothing is
        materialized client-side, which is why this variant's footprint
        shrinks with growing ``h``.
        """
        budget = self.config.memory_budget
        dep_index = int(dep_attr)
        cond_attrs = Attr.others(dep_attr)

        # First streamed pass: covered-row frequency per condition (plain
        # integer counters — the cheap part).
        frequencies: Counter = Counter()
        for triple, covered in self._joined_rows(table, dep_attr, ref_attr):
            if covered:
                for condition in _conditions_of(triple, cond_attrs):
                    frequencies[condition] += 1

        # Second streamed pass: distinct-value sets and violation flags,
        # but only for conditions whose covered frequency reaches h — the
        # number of such candidates (and hence the memory) grows as h
        # shrinks, which is where the paper's h=5/10 failures come from.
        candidates = {
            condition
            for condition, count in frequencies.items()
            if count >= self.config.h
        }
        state: Dict[Condition, Tuple[Set, List[bool]]] = {
            condition: (set(), [False]) for condition in candidates
        }
        cells = len(candidates)
        for triple, covered in self._joined_rows(table, dep_attr, ref_attr):
            dep_value = triple[dep_index]
            for condition in _conditions_of(triple, cond_attrs):
                entry = state.get(condition)
                if entry is None:
                    continue
                values, violated = entry
                if not covered:
                    violated[0] = True
                elif dep_value not in values:
                    values.add(dep_value)
                    cells += 1
                    if budget is not None and cells > budget:
                        raise SimulatedOutOfMemory(
                            "cinderella*/condition-groups", cells, budget
                        )

        found = [
            ConditionalInclusion(dep_attr, condition, ref_attr, len(values))
            for condition, (values, violated) in state.items()
            if not violated[0] and len(values) >= self.config.h
        ]
        return found, cells


def _render_condition(condition: Condition) -> str:
    if isinstance(condition, UnaryCondition):
        return f"{condition.attr.symbol}={condition.value}"
    return (
        f"{condition.attr1.symbol}={condition.value1} ∧ "
        f"{condition.attr2.symbol}={condition.value2}"
    )


def _conditions_of(
    triple, cond_attrs: Tuple[Attr, Attr]
) -> Iterator[Condition]:
    """The two unary and one binary condition over the non-dep columns."""
    first, second = cond_attrs
    value_first = triple[int(first)]
    value_second = triple[int(second)]
    yield UnaryCondition(first, value_first)
    yield UnaryCondition(second, value_second)
    yield BinaryCondition(first, value_first, second, value_second)
