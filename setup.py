"""Setup shim.

Kept so that offline environments without the ``wheel`` package can still
do a legacy editable install (``pip install -e . --no-use-pep517``); all
real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
