"""Tests for the ontology reverse-engineering and knowledge-discovery apps."""

import pytest

from repro.apps import discover_knowledge, reverse_engineer_ontology
from repro.core.discovery import find_pertinent_cinds
from repro.datasets import db14_mpce, linkedmdb


@pytest.fixture(scope="module")
def mpce_result():
    return find_pertinent_cinds(
        db14_mpce(scale=0.35).encode(), support_threshold=10, parallelism=4
    )


@pytest.fixture(scope="module")
def lmdb_result():
    return find_pertinent_cinds(
        linkedmdb(scale=0.1).encode(), support_threshold=10, parallelism=4
    )


class TestOntologyHints:
    def test_subclass_hint(self, mpce_result):
        hints = reverse_engineer_ontology(mpce_result, min_support=10)
        rendered = {h.describe() for h in hints}
        assert any("Leptodactylidae rdfs:subClassOf Frog" in r for r in rendered)

    def test_subproperty_hint_requires_both_sides(self, mpce_result):
        hints = reverse_engineer_ontology(mpce_result, min_support=10)
        subproperties = {
            (h.subject, h.object) for h in hints if h.kind == "subproperty"
        }
        assert ("associatedBand", "associatedMusicalArtist") in subproperties

    def test_domain_hints(self, mpce_result):
        hints = reverse_engineer_ontology(mpce_result, min_support=10)
        domains = {
            (h.subject, h.object) for h in hints if h.kind == "domain"
        }
        assert ("areaCode", "Settlement") in domains
        assert ("birthPlace", "Person") in domains

    def test_range_hints(self, mpce_result):
        hints = reverse_engineer_ontology(mpce_result, min_support=10)
        ranges = {(h.subject, h.object) for h in hints if h.kind == "range"}
        assert ("birthPlace", "Settlement") in ranges

    def test_class_detection_from_ars(self, lmdb_result):
        """The paper's lmdb:performance class-detection example."""
        hints = reverse_engineer_ontology(lmdb_result, min_support=10)
        classes = {h.subject for h in hints if h.kind == "class"}
        assert "lmdb:performance" in classes

    def test_movie_editor_range(self, lmdb_result):
        hints = reverse_engineer_ontology(lmdb_result, min_support=10)
        ranges = {(h.subject, h.object) for h in hints if h.kind == "range"}
        assert ("movieEditor", "foaf:Person") in ranges

    def test_min_support_filters(self, mpce_result):
        all_hints = reverse_engineer_ontology(mpce_result, min_support=10)
        strong_hints = reverse_engineer_ontology(mpce_result, min_support=500)
        assert len(strong_hints) < len(all_hints)
        assert all(h.support >= 500 for h in strong_hints)

    def test_describe_templates(self, mpce_result):
        for hint in reverse_engineer_ontology(mpce_result, min_support=10)[:10]:
            text = hint.describe()
            assert hint.subject in text and str(hint.support) in text


class TestKnowledgeFacts:
    def test_acdc_equivalence(self, mpce_result):
        facts = discover_knowledge(mpce_result, min_support=10)
        equivalences = [f for f in facts if f.kind == "equivalence"]
        rendered = {f.describe() for f in equivalences}
        assert any(
            "Angus_Young" in r and "Malcolm_Young" in r for r in rendered
        )

    def test_acdc_support_is_26(self, mpce_result):
        facts = discover_knowledge(mpce_result, min_support=10)
        young = [
            f for f in facts
            if f.kind == "equivalence" and "Angus_Young" in f.lhs + f.rhs
        ]
        assert young and young[0].support == 26

    def test_area_code_rule(self, mpce_result):
        facts = discover_knowledge(mpce_result, min_support=10)
        rendered = {f.describe() for f in facts if f.kind == "rule"}
        assert any(
            'areaCode="559"' in r and "partOf=California" in r for r in rendered
        )

    def test_rules_exclude_pure_class_hierarchy(self, mpce_result):
        facts = discover_knowledge(mpce_result, min_support=10)
        for fact in facts:
            assert not (
                fact.lhs.startswith("rdf:type=") and fact.rhs.startswith("rdf:type=")
            )

    def test_equivalences_not_duplicated(self, mpce_result):
        facts = discover_knowledge(mpce_result, min_support=10)
        seen = set()
        for fact in facts:
            if fact.kind == "equivalence":
                key = frozenset((fact.lhs, fact.rhs))
                assert key not in seen
                seen.add(key)
