"""Fault recovery: injected failures and adaptive OOM degradation.

Not a paper figure — this characterizes the fault-tolerance layer the
paper inherits from Flink for free (Section 8 runs on a cluster whose
task failures Flink re-executes from lineage).  Two questions:

* what does recovery *cost*?  A seeded FaultPlan injects transient task
  failures, a worker crash, and stragglers into every pipeline phase; the
  run must produce byte-identical CINDs/ARs (asserted) and the overhead
  is the re-executed tasks only.
* what does recovery *buy*?  The Figure 12 failure case — RDFind-DE on
  full-size Diseasome at h=10, whose fused-combiner state exceeds the
  calibrated single-node budget — is rerun with ``--oom-recovery``: the
  engine spills the combiner / key-splits the offending buckets and the
  run completes with byte-identical output instead of aborting.
"""

from repro.core.discovery import RDFind, RDFindConfig
from repro.dataflow.engine import SimulatedOutOfMemory
from repro.dataflow.faults import FaultPlan

from benchmarks.conftest import once

FAULT_SEED = 1234
FAULT_DATASET = "Countries"
FAULT_H = 25

#: The Figure 12 failure: DE's combiner state on Diseasome h=10 needs
#: ~6.0M cells against the 6M single-node budget (bench_fig12 reports the
#: abort; the paper's 40 GB cluster absorbed it).
OOM_DATASET = "Diseasome"
OOM_H = 10
OOM_BUDGET = 6_000_000


def _identical(a, b):
    return a.cinds == b.cinds and a.association_rules == b.association_rules


def test_fault_recovery(benchmark, report, cache):
    def body():
        clean_result, clean_seconds = cache.run(
            FAULT_DATASET, FAULT_H, parallelism=4, executor="serial"
        )
        faulty = RDFind(
            RDFindConfig(
                support_threshold=FAULT_H,
                parallelism=4,
                fault_seed=FAULT_SEED,
            )
        ).discover(cache.dataset(FAULT_DATASET))

        de_clean = cache.run(OOM_DATASET, OOM_H, variant="de")[0]
        budgeted = RDFindConfig.direct_extraction(
            support_threshold=OOM_H, memory_budget=OOM_BUDGET
        )
        oom_error = None
        try:
            RDFind(budgeted).discover(cache.dataset(OOM_DATASET))
        except SimulatedOutOfMemory as error:
            oom_error = error
        recovered = RDFind(
            RDFindConfig.direct_extraction(
                support_threshold=OOM_H,
                memory_budget=OOM_BUDGET,
                oom_recovery=True,
            )
        ).discover(cache.dataset(OOM_DATASET))
        return (clean_result, clean_seconds), faulty, de_clean, oom_error, recovered

    (clean_result, clean_seconds), faulty, de_clean, oom_error, recovered = once(
        benchmark, body
    )

    section = report.section(
        f"Fault recovery — seeded injection ({FAULT_DATASET} h={FAULT_H}, "
        f"seed {FAULT_SEED}) and OOM degradation ({OOM_DATASET} h={OOM_H}, "
        f"budget {OOM_BUDGET:,} cells)"
    )

    metrics = faulty.metrics
    same = _identical(clean_result, faulty)
    overhead = faulty.elapsed_seconds / clean_seconds
    section.row(
        f"injection: {metrics.total_faults_injected} faults over "
        f"{len(metrics.stages)} stages, {metrics.total_retries} task "
        f"retries -> output {'identical' if same else 'DIFFERS'}, "
        f"{overhead:.2f}x clean wall-clock "
        f"({faulty.elapsed_seconds:.2f}s vs {clean_seconds:.2f}s)"
    )
    assert same, "faulty run output differs from clean run"
    assert metrics.total_faults_injected > 0, "seed injected nothing"
    assert metrics.total_retries > 0

    assert oom_error is not None, "budget did not fail without recovery"
    section.row(
        f"without --oom-recovery: aborted at {oom_error.stage} "
        f"({oom_error.records:,} cells > {oom_error.budget:,})"
    )
    same_oom = _identical(de_clean, recovered)
    section.row(
        f"with    --oom-recovery: completed in "
        f"{recovered.elapsed_seconds:.1f}s via "
        f"{recovered.metrics.total_recovered_oom_splits} split/spill "
        f"round(s) -> output {'identical' if same_oom else 'DIFFERS'} "
        f"to the unconstrained run"
    )
    assert same_oom, "recovered run output differs from unconstrained run"
    assert recovered.metrics.total_recovered_oom_splits >= 1
