"""repro — a full reproduction of RDFind (Kruse et al., SIGMOD 2016).

RDFind discovers all *pertinent* conditional inclusion dependencies
(CINDs) — those that are minimal and broad — plus exact association rules
in RDF datasets.  This package re-implements the complete system on a
simulated distributed dataflow engine, together with the paper's
baselines, evaluation datasets (synthetic stand-ins), and a SPARQL
query-minimization use case.

Quick start::

    from repro import find_pertinent_cinds
    from repro.datasets import table1

    result = find_pertinent_cinds(table1(), support_threshold=2)
    for line in result.render_cinds():
        print(line)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core.cind import (
    CIND,
    AssociationRule,
    Capture,
    SupportedAR,
    SupportedCIND,
)
from repro.core.conditions import (
    BinaryCondition,
    ConditionScope,
    UnaryCondition,
)
from repro.core.discovery import (
    DiscoveryResult,
    RDFind,
    RDFindConfig,
    find_pertinent_cinds,
)
from repro.core.incremental import IncrementalRDFind
from repro.core.validation import NaiveProfiler
from repro.rdf.model import Attr, Dataset, Triple

__version__ = "1.0.0"

__all__ = [
    "CIND",
    "AssociationRule",
    "Capture",
    "SupportedAR",
    "SupportedCIND",
    "BinaryCondition",
    "ConditionScope",
    "UnaryCondition",
    "DiscoveryResult",
    "RDFind",
    "RDFindConfig",
    "find_pertinent_cinds",
    "IncrementalRDFind",
    "NaiveProfiler",
    "Attr",
    "Dataset",
    "Triple",
    "__version__",
]
