"""Execute module doctests so the examples in docstrings stay true.

The ``IncrementalRDFind`` docstring shipped an example that silently
drifted from the real API (``add`` returns ``True``/``False``; the
example showed no output).  Running the doctests as a test leg keeps
every embedded example honest from now on.
"""

import doctest

import pytest

import repro.core.incremental
import repro.streaming.changelog
import repro.streaming.compaction
import repro.streaming.delta
import repro.streaming.maintainer
import repro.streaming.session

MODULES = [
    repro.core.incremental,
    repro.streaming.changelog,
    repro.streaming.compaction,
    repro.streaming.delta,
    repro.streaming.maintainer,
    repro.streaming.session,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"


def test_incremental_examples_actually_run():
    """The fixed doctest must exercise the API, not be vacuously empty."""
    results = doctest.testmod(repro.core.incremental, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0
