"""Tests for the brute-force oracle itself (NaiveProfiler internals)."""

import pytest

from repro.core.cind import CIND, Capture
from repro.core.conditions import BinaryCondition, UnaryCondition
from repro.core.validation import NaiveProfiler
from repro.rdf.model import Attr, Dataset


@pytest.fixture
def profiler(table1_encoded):
    return NaiveProfiler(table1_encoded)


def _capture(dictionary, attr, *constraints):
    if len(constraints) == 1:
        ((c_attr, term),) = constraints
        condition = UnaryCondition(c_attr, dictionary.encode_existing(term))
    else:
        (a1, t1), (a2, t2) = constraints
        condition = BinaryCondition.make(
            a1, dictionary.encode_existing(t1), a2, dictionary.encode_existing(t2)
        )
    return Capture(attr, condition)


class TestInterpretations:
    def test_example2_interpretation(self, profiler, table1_encoded):
        """Example 2: (s, p=rdf:type ∧ o=gradStudent) -> {patrick, mike}."""
        dictionary = table1_encoded.dictionary
        capture = _capture(
            dictionary, Attr.S, (Attr.P, "rdf:type"), (Attr.O, "gradStudent")
        )
        values = {
            dictionary.decode(v) for v in profiler.interpretation(capture)
        }
        assert values == {"patrick", "mike"}

    def test_unary_interpretation(self, profiler, table1_encoded):
        dictionary = table1_encoded.dictionary
        capture = _capture(dictionary, Attr.S, (Attr.P, "undergradFrom"))
        values = {dictionary.decode(v) for v in profiler.interpretation(capture)}
        assert values == {"patrick", "mike", "tim"}

    def test_batch_interpretations_match_single(self, profiler):
        universe = sorted(profiler.capture_universe(1))[:15]
        batch = profiler.interpretations(universe)
        for capture in universe:
            assert batch[capture] == profiler.interpretation(capture)

    def test_capture_support(self, profiler, table1_encoded):
        dictionary = table1_encoded.dictionary
        capture = _capture(dictionary, Attr.S, (Attr.P, "rdf:type"))
        assert profiler.capture_support(capture) == 3


class TestValidity:
    def test_example3_cind_valid(self, profiler, table1_encoded):
        dictionary = table1_encoded.dictionary
        cind = CIND(
            _capture(dictionary, Attr.S, (Attr.P, "rdf:type"), (Attr.O, "gradStudent")),
            _capture(dictionary, Attr.S, (Attr.P, "undergradFrom")),
        )
        assert profiler.is_valid(cind)
        assert profiler.support(cind) == 2

    def test_invalid_cind(self, profiler, table1_encoded):
        dictionary = table1_encoded.dictionary
        cind = CIND(
            _capture(dictionary, Attr.S, (Attr.P, "undergradFrom")),
            _capture(dictionary, Attr.S, (Attr.P, "rdf:type")),
        )
        assert not profiler.is_valid(cind)  # tim never has an rdf:type


class TestConditionMachinery:
    def test_frequencies_total(self, profiler):
        frequencies = profiler.condition_frequencies()
        # 8 triples x (3 unary + 3 binary) condition slots, minus merges
        assert sum(frequencies.values()) == 8 * 6

    def test_frequent_filtering(self, profiler):
        assert all(c >= 2 for c in profiler.frequent_conditions(2).values())

    def test_threshold_validation(self, profiler):
        with pytest.raises(ValueError):
            profiler.frequent_conditions(0)
        with pytest.raises(ValueError):
            profiler.broad_cinds(0)


class TestUniverse:
    def test_universe_excludes_ar_binaries(self, table1_encoded):
        profiler = NaiveProfiler(table1_encoded)
        dictionary = table1_encoded.dictionary
        ar_binary = _capture(
            dictionary, Attr.S, (Attr.P, "rdf:type"), (Attr.O, "gradStudent")
        )
        universe = profiler.capture_universe(2)
        assert ar_binary not in universe
        unary_twin = _capture(dictionary, Attr.S, (Attr.O, "gradStudent"))
        assert unary_twin in universe

    def test_universe_excludes_projection_in_condition(self, profiler):
        for capture in profiler.capture_universe(1):
            assert capture.attr not in capture.condition.attrs

    def test_string_dataset_accepted(self):
        profiler = NaiveProfiler(Dataset.from_tuples([("a", "b", "c")]))
        assert profiler.condition_frequencies()


class TestDiscoverShape:
    def test_sorted_by_support_descending(self, table1_encoded):
        cinds, ars = NaiveProfiler(table1_encoded).discover(1)
        supports = [sc.support for sc in cinds]
        assert supports == sorted(supports, reverse=True)
        ar_supports = [sa.support for sa in ars]
        assert ar_supports == sorted(ar_supports, reverse=True)

    def test_broad_respects_threshold(self, profiler):
        assert all(s >= 3 for s in profiler.broad_cinds(3).values())
