"""Tests for incremental CIND maintenance."""

import random

import pytest

from repro.core.cind import decode_cind
from repro.core.incremental import IncrementalRDFind
from repro.core.validation import NaiveProfiler
from repro.rdf.model import Dataset
from tests.conftest import random_rdf


def oracle_pertinent(dataset, h):
    """Ground truth under the maintainer's semantics (no AR rewriting)."""
    profiler = NaiveProfiler(dataset.encode(), prune_ar_equivalents=False)
    return {(sc.cind, sc.support) for sc in profiler.pertinent_cinds(h)}


def maintained_pertinent(maintainer):
    """Maintainer output decoded to string-valued CINDs for comparison."""
    return {
        (decode_cind(sc.cind, maintainer.dictionary), sc.support)
        for sc in maintainer.pertinent_cinds()
    }


def oracle_decoded(dataset, h):
    encoded = dataset.encode()
    profiler = NaiveProfiler(encoded, prune_ar_equivalents=False)
    return {
        (decode_cind(sc.cind, encoded.dictionary), sc.support)
        for sc in profiler.pertinent_cinds(h)
    }


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("h", [1, 2])
    def test_final_state_matches_batch_oracle(self, seed, h):
        dataset = random_rdf(seed + 1000, n_triples=35)
        maintainer = IncrementalRDFind(h=h)
        maintainer.add_all(dataset)
        assert maintained_pertinent(maintainer) == oracle_decoded(dataset, h)

    @pytest.mark.parametrize("seed", range(4))
    def test_every_intermediate_state_matches(self, seed):
        """Query after every insertion: each state must be exact."""
        dataset = list(random_rdf(seed + 1100, n_triples=18))
        maintainer = IncrementalRDFind(h=2)
        seen = []
        for triple in dataset:
            maintainer.add(triple)
            seen.append(triple)
            expected = oracle_decoded(Dataset(seen), 2)
            assert maintained_pertinent(maintainer) == expected

    def test_threshold_crossing_backfills(self):
        """A condition crossing h must pick up earlier triples' captures."""
        maintainer = IncrementalRDFind(h=2)
        maintainer.add(("a", "p", "x"))   # p=p has frequency 1: inactive
        assert maintainer.pertinent_cinds() == []
        maintainer.add(("b", "p", "y"))   # p=p crosses h=2
        rendered = {maintainer.render(sc) for sc in maintainer.pertinent_cinds()}
        # (s, p=p) now has support 2 and is included in ... nothing else,
        # but the capture exists; add a co-occurring condition:
        maintainer.add(("a", "q", "x"))
        maintainer.add(("b", "q", "y"))
        rendered = {maintainer.render(sc) for sc in maintainer.pertinent_cinds()}
        assert "(s, p=p) ⊆ (s, p=q)  [support=2]" in rendered
        assert "(s, p=q) ⊆ (s, p=p)  [support=2]" in rendered

    def test_insertion_can_break_a_cind(self):
        maintainer = IncrementalRDFind(h=2)
        maintainer.add_all(
            [("a", "p", "x"), ("b", "p", "y"), ("a", "q", "x"), ("b", "q", "y")]
        )
        before = {maintainer.render(sc) for sc in maintainer.pertinent_cinds()}
        assert "(s, p=q) ⊆ (s, p=p)  [support=2]" in before
        maintainer.add(("c", "q", "z"))  # c has q but not p
        after = {maintainer.render(sc) for sc in maintainer.pertinent_cinds()}
        assert "(s, p=q) ⊆ (s, p=p)  [support=3]" not in after
        assert not any(line.startswith("(s, p=q) ⊆ (s, p=p)") for line in after)
        assert "(s, p=p) ⊆ (s, p=q)  [support=2]" in after

    def test_duplicates_ignored(self):
        maintainer = IncrementalRDFind(h=1)
        assert maintainer.add(("a", "b", "c")) is True
        assert maintainer.add(("a", "b", "c")) is False
        assert maintainer.triples == 1
        assert maintainer.stats.duplicates_ignored == 1


class TestIncrementality:
    def test_clean_dependents_not_recomputed(self):
        """Inserting a triple touching fresh values must not recompute the
        whole adjacency."""
        base = random_rdf(1200, n_triples=60)
        maintainer = IncrementalRDFind(h=2)
        maintainer.add_all(base)
        maintainer.pertinent_cinds()  # settle the cache
        before = maintainer.stats.dependents_recomputed

        maintainer.add(("totally", "new", "terms"))
        maintainer.pertinent_cinds()
        delta = maintainer.stats.dependents_recomputed - before
        # fresh terms activate nothing at h=2 — no recomputation at all
        assert delta == 0

    def test_repeated_queries_without_updates_are_free(self):
        maintainer = IncrementalRDFind(h=2)
        maintainer.add_all(random_rdf(1201, n_triples=40))
        first = maintainer.pertinent_cinds()
        recomputed = maintainer.stats.dependents_recomputed
        second = maintainer.pertinent_cinds()
        assert maintainer.stats.dependents_recomputed == recomputed
        assert {(sc.cind, sc.support) for sc in first} == {
            (sc.cind, sc.support) for sc in second
        }

    def test_snapshot_roundtrip(self):
        dataset = random_rdf(1202, n_triples=25)
        maintainer = IncrementalRDFind(h=1)
        maintainer.add_all(dataset)
        assert maintainer.as_dataset() == dataset

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalRDFind(h=0)

    def test_repr(self):
        maintainer = IncrementalRDFind(h=2)
        maintainer.add(("a", "b", "c"))
        assert "1 triples" in repr(maintainer).replace(",", "")
