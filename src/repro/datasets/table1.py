"""The paper's running example: the university dataset of Table 1."""

from __future__ import annotations

from repro.rdf.model import Dataset, EncodedDataset, Triple

#: The example triples exactly as printed in Table 1 of the paper.
TABLE1_TRIPLES = (
    ("patrick", "rdf:type", "gradStudent"),
    ("mike", "rdf:type", "gradStudent"),
    ("john", "rdf:type", "professor"),
    ("patrick", "memberOf", "csd"),
    ("mike", "memberOf", "biod"),
    ("patrick", "undergradFrom", "hpi"),
    ("tim", "undergradFrom", "hpi"),
    ("mike", "undergradFrom", "cmu"),
)


def table1(encoded: bool = False) -> "Dataset | EncodedDataset":
    """The 8-triple university example (paper Table 1).

    Satisfies, among others, the paper's Example 3 CIND
    ``(s, p=rdf:type ∧ o=gradStudent) ⊆ (s, p=undergradFrom)``.
    """
    if encoded:
        return EncodedDataset.from_terms(
            (Triple(*row) for row in TABLE1_TRIPLES), name="Table1"
        )
    return Dataset((Triple(*row) for row in TABLE1_TRIPLES), name="Table1")
