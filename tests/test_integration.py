"""Cross-module integration tests: realistic end-to-end flows."""

import pytest

from repro.apps import discover_knowledge, reverse_engineer_ontology
from repro.baselines import Cinderella, CinderellaConfig
from repro.core.conditions import ConditionScope
from repro.core.discovery import RDFind, RDFindConfig, find_pertinent_cinds
from repro.datasets import countries, drugbank, freebase, lubm
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.store import TripleStore
from repro.rdf.model import Dataset
from repro.sparql import QueryMinimizer, evaluate, lubm_q2


class TestNTriplesRoundTripDiscovery:
    def test_discovery_invariant_under_serialization(self):
        """Writing a dataset to N-Triples and reading it back must yield
        byte-identical discovery results."""
        original = countries(scale=0.15)
        reparsed = Dataset(parse_ntriples(serialize_ntriples(original)))
        assert reparsed == original
        a = find_pertinent_cinds(original.encode(), support_threshold=5)
        b = find_pertinent_cinds(reparsed.encode(), support_threshold=5)
        assert set(a.render_cinds()) == set(b.render_cinds())


class TestDrugBankKnowledgeFlow:
    def test_paper_drug_target_rule(self):
        """The paper's Appendix B drug example: everything targeted by one
        drug is targeted by another (support 14)."""
        dataset = drugbank(scale=0.3)
        result = find_pertinent_cinds(dataset.encode(), support_threshold=10)
        facts = discover_knowledge(result, min_support=10)
        drug_rules = [
            f for f in facts
            if f.kind == "rule" and "drug/" in f.lhs and "drug/" in f.rhs
        ]
        # the planted pair: drug/30's targets within drug/47's
        assert any(f.support == 14 for f in drug_rules)

    def test_classification_hierarchy_fact(self):
        dataset = drugbank(scale=0.3)
        result = find_pertinent_cinds(dataset.encode(), support_threshold=25)
        facts = discover_knowledge(result, min_support=25)
        rendered = {f.describe() for f in facts}
        assert any(
            "hydrolase activity" in r and "catalytic activity" in r
            for r in rendered
        )


class TestFreebasePredicateScope:
    def test_scoped_discovery_runs_and_finds_type_cinds(self):
        dataset = freebase(n_triples=20_000)
        config = RDFindConfig(
            support_threshold=100,
            scope=ConditionScope.predicates_only(),
            parallelism=4,
        )
        result = RDFind(config).discover(dataset.encode())
        assert result.cinds
        # with predicate-only conditions there are no binary conditions,
        # hence no association rules
        assert result.association_rules == []
        for supported in result.cinds:
            assert supported.cind.dependent.condition.attr.name == "P"


class TestFigure14Flow:
    def test_lubm_query_minimization_end_to_end(self):
        dataset = lubm(scale=0.3)
        result = find_pertinent_cinds(dataset.encode(), support_threshold=5)
        minimizer = QueryMinimizer.from_discovery(result)
        report = minimizer.minimize(lubm_q2())
        assert report.joins_saved == 3

        store = TripleStore.from_dataset(dataset)
        rows_original, stats_original = evaluate(store, lubm_q2())
        rows_minimized, stats_minimized = evaluate(store, report.minimized)
        assert rows_original == rows_minimized
        assert stats_minimized.index_probes < stats_original.index_probes


class TestBaselineComparison:
    def test_cinderella_conditions_are_rdfind_dependent_conditions(self):
        """Cinderella's output (dependent-side conditions against a full
        column) corresponds to valid inclusions RDFind would also accept:
        verify each against the raw data."""
        dataset = countries(scale=0.2)
        baseline = Cinderella(CinderellaConfig(h=5)).discover(dataset)
        triples = list(dataset)
        for row in baseline.inclusions[:50]:
            ref_values = {t[int(row.ref_attr)] for t in triples}
            selected = [t for t in triples if row.condition.matches(t)]
            dep_values = {t[int(row.dep_attr)] for t in selected}
            assert dep_values <= ref_values


class TestOntologyOnCountries:
    def test_capital_domain_and_range(self):
        dataset = countries()
        result = find_pertinent_cinds(dataset.encode(), support_threshold=25)
        hints = reverse_engineer_ontology(result, min_support=25)
        domains = {(h.subject, h.object) for h in hints if h.kind == "domain"}
        ranges = {(h.subject, h.object) for h in hints if h.kind == "range"}
        assert ("capital", "Country") in domains
        assert ("capital", "City") in ranges
