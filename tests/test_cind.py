"""Tests for captures, CINDs, and association rules."""

import pytest

from repro.core.cind import (
    CIND,
    AssociationRule,
    Capture,
    SupportedAR,
    SupportedCIND,
    decode_capture,
    decode_cind,
    decode_condition,
)
from repro.core.conditions import BinaryCondition, UnaryCondition
from repro.rdf.model import Attr, EncodedTriple, TermDictionary


def _dictionary():
    dictionary = TermDictionary()
    for term in ("rdf:type", "gradStudent", "memberOf", "undergradFrom"):
        dictionary.encode(term)
    return dictionary


class TestCapture:
    def test_make_valid(self):
        capture = Capture.make(Attr.S, UnaryCondition(Attr.P, 0))
        assert capture.attr is Attr.S

    def test_make_rejects_projection_in_condition(self):
        with pytest.raises(ValueError):
            Capture.make(Attr.P, UnaryCondition(Attr.P, 0))
        with pytest.raises(ValueError):
            Capture.make(Attr.O, BinaryCondition.make(Attr.P, 0, Attr.O, 1))

    def test_value_of(self):
        capture = Capture(Attr.S, UnaryCondition(Attr.P, 0))
        assert capture.value_of(EncodedTriple(7, 0, 1)) == 7
        assert capture.value_of(EncodedTriple(7, 9, 1)) is None

    def test_arity_flags(self):
        unary = Capture(Attr.S, UnaryCondition(Attr.P, 0))
        binary = Capture(Attr.S, BinaryCondition.make(Attr.P, 0, Attr.O, 1))
        assert unary.is_unary and not unary.is_binary
        assert binary.is_binary and not binary.is_unary

    def test_unary_relaxations(self):
        binary = Capture(Attr.S, BinaryCondition.make(Attr.P, 0, Attr.O, 1))
        relaxed = set(binary.unary_relaxations())
        assert relaxed == {
            Capture(Attr.S, UnaryCondition(Attr.P, 0)),
            Capture(Attr.S, UnaryCondition(Attr.O, 1)),
        }
        assert list(Capture(Attr.S, UnaryCondition(Attr.P, 0)).unary_relaxations()) == []

    def test_render(self):
        dictionary = _dictionary()
        capture = Capture(
            Attr.S, BinaryCondition.make(Attr.P, 0, Attr.O, 1)
        )
        assert capture.render(dictionary) == "(s, p=rdf:type ∧ o=gradStudent)"


class TestCIND:
    def test_trivial_reflexive_like(self):
        capture = Capture(Attr.S, UnaryCondition(Attr.P, 0))
        assert CIND(capture, capture).is_trivial()

    def test_trivial_binary_to_unary_same_projection(self):
        binary = Capture(Attr.S, BinaryCondition.make(Attr.P, 0, Attr.O, 1))
        unary = Capture(Attr.S, UnaryCondition(Attr.P, 0))
        assert CIND(binary, unary).is_trivial()
        assert not CIND(unary, binary).is_trivial()

    def test_not_trivial_across_projections(self):
        a = Capture(Attr.S, UnaryCondition(Attr.P, 0))
        b = Capture(Attr.O, UnaryCondition(Attr.P, 0))
        assert not CIND(a, b).is_trivial()

    def test_render(self):
        dictionary = _dictionary()
        cind = CIND(
            Capture(Attr.S, UnaryCondition(Attr.P, 2)),
            Capture(Attr.S, UnaryCondition(Attr.P, 0)),
        )
        assert cind.render(dictionary) == "(s, p=memberOf) ⊆ (s, p=rdf:type)"

    def test_supported_render_includes_support(self):
        dictionary = _dictionary()
        cind = CIND(
            Capture(Attr.S, UnaryCondition(Attr.P, 2)),
            Capture(Attr.S, UnaryCondition(Attr.P, 0)),
        )
        assert "[support=5]" in SupportedCIND(cind, 5).render(dictionary)


class TestAssociationRule:
    def test_binary_condition(self):
        rule = AssociationRule(
            UnaryCondition(Attr.O, 1), UnaryCondition(Attr.P, 0)
        )
        assert rule.binary_condition == BinaryCondition.make(Attr.P, 0, Attr.O, 1)

    def test_implied_cinds_use_free_attributes(self):
        rule = AssociationRule(
            UnaryCondition(Attr.O, 1), UnaryCondition(Attr.P, 0)
        )
        implied = list(rule.implied_cinds({Attr.S, Attr.P, Attr.O}))
        assert len(implied) == 1
        (cind,) = implied
        assert cind.dependent == Capture(Attr.S, UnaryCondition(Attr.O, 1))
        assert cind.referenced == Capture(
            Attr.S, BinaryCondition.make(Attr.P, 0, Attr.O, 1)
        )

    def test_implied_cinds_respect_scope(self):
        rule = AssociationRule(
            UnaryCondition(Attr.O, 1), UnaryCondition(Attr.P, 0)
        )
        assert list(rule.implied_cinds({Attr.P})) == []

    def test_render(self):
        dictionary = _dictionary()
        rule = AssociationRule(
            UnaryCondition(Attr.O, 1), UnaryCondition(Attr.P, 0)
        )
        assert rule.render(dictionary) == "o=gradStudent → p=rdf:type"
        assert "[support=2]" in SupportedAR(rule, 2).render(dictionary)


class TestDecoding:
    def test_decode_condition(self):
        dictionary = _dictionary()
        unary = UnaryCondition(Attr.P, 0)
        assert decode_condition(unary, dictionary) == UnaryCondition(Attr.P, "rdf:type")
        binary = BinaryCondition.make(Attr.P, 0, Attr.O, 1)
        decoded = decode_condition(binary, dictionary)
        assert decoded.value1 == "rdf:type" and decoded.value2 == "gradStudent"

    def test_decode_capture_and_cind(self):
        dictionary = _dictionary()
        cind = CIND(
            Capture(Attr.S, UnaryCondition(Attr.P, 2)),
            Capture(Attr.S, UnaryCondition(Attr.P, 3)),
        )
        decoded = decode_cind(cind, dictionary)
        assert decoded.dependent.condition.value == "memberOf"
        assert decoded.referenced.condition.value == "undergradFrom"
        assert decode_capture(cind.dependent, dictionary) == decoded.dependent

    def test_decoded_structures_keep_behaviour(self):
        dictionary = _dictionary()
        binary = BinaryCondition.make(Attr.P, 0, Attr.O, 1)
        decoded = decode_condition(binary, dictionary)
        parts = decoded.unary_parts()
        assert parts[0].value in ("rdf:type", "gradStudent")
