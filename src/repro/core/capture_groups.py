"""CGCreator: capture evidences and capture groups (Section 6).

A *capture evidence* states that a value occurs in a capture's
interpretation; a *capture group* is the set of captures sharing one
value.  Lemma 3 reduces CIND validity to capture-group membership, which
is what makes groups the central data structure of the extraction phase.

Evidence creation follows Algorithm 2 exactly: per triple and projection
attribute, the two candidate unary conditions are probed against the
unary-condition Bloom filter; if both pass, the binary condition is probed
against the binary filter and checked against the known association rules.
A frequent, non-AR binary condition yields a *single* binary capture
evidence — it *subsumes* the two unary evidences (they are recovered
during group aggregation, see :func:`expand_captures`), which keeps the
shuffle volume at one record instead of three.  An AR-embedding binary
condition is skipped entirely: its capture is extent-equal to a unary
capture (equivalence pruning, Section 5.1), so the unary evidences are
emitted instead.

With ``frequent=None`` the creator runs unpruned — every condition is
treated as frequent and no ARs exist.  That is the RDFind-NF ablation of
Section 8.5.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core.cind import Capture
from repro.core.conditions import (
    BinaryCondition,
    ConditionScope,
    UnaryCondition,
    is_binary,
)
from repro.core.frequent_conditions import FrequentConditions
from repro.dataflow.engine import DataSet, ExecutionEnvironment, pair_key
from repro.rdf.model import Attr, EncodedTriple

#: A capture group: the set of captures that share one common value.
CaptureGroup = FrozenSet[Capture]


class _EvidenceEmitter:
    """The per-triple evidence function (Algorithm 2).

    A module-level class rather than a closure so the process executor can
    pickle it; the Bloom filters and rule set travel with the instance to
    each pool worker once per stage.
    """

    __slots__ = ("projections", "unary_bloom", "binary_bloom", "rules", "allow_binary")

    def __init__(
        self, scope: ConditionScope, frequent: Optional[FrequentConditions]
    ) -> None:
        self.projections: Tuple[Tuple[Attr, Tuple[Attr, ...]], ...] = tuple(
            (attr, scope.condition_attrs_for(attr))
            for attr in sorted(scope.projection_attrs)
        )
        if frequent is not None:
            self.unary_bloom = frequent.unary_bloom
            self.binary_bloom = frequent.binary_bloom
            self.rules = frozenset(frequent.rule_set)
        else:
            self.unary_bloom = self.binary_bloom = None
            self.rules = frozenset()
        self.allow_binary = scope.allow_binary

    def __call__(
        self, triple: EncodedTriple
    ) -> Iterator[Tuple[int, Capture]]:
        unary_bloom = self.unary_bloom
        binary_bloom = self.binary_bloom
        rules = self.rules
        for alpha, condition_attrs in self.projections:
            value = triple[int(alpha)]
            if len(condition_attrs) == 2 and self.allow_binary:
                beta, gamma = condition_attrs
                v_beta = triple[int(beta)]
                v_gamma = triple[int(gamma)]
                unary_beta = UnaryCondition(beta, v_beta)
                unary_gamma = UnaryCondition(gamma, v_gamma)
                beta_ok = unary_bloom is None or unary_beta in unary_bloom
                gamma_ok = unary_bloom is None or unary_gamma in unary_bloom
                if beta_ok and gamma_ok:
                    binary = BinaryCondition(beta, v_beta, gamma, v_gamma)
                    binary_ok = binary_bloom is None or binary in binary_bloom
                    if (
                        binary_ok
                        and (unary_beta, unary_gamma) not in rules
                        and (unary_gamma, unary_beta) not in rules
                    ):
                        yield value, Capture(alpha, binary)
                    else:
                        yield value, Capture(alpha, unary_beta)
                        yield value, Capture(alpha, unary_gamma)
                elif beta_ok:
                    yield value, Capture(alpha, unary_beta)
                elif gamma_ok:
                    yield value, Capture(alpha, unary_gamma)
            else:
                for attr in condition_attrs:
                    unary = UnaryCondition(attr, triple[int(attr)])
                    if unary_bloom is None or unary in unary_bloom:
                        yield value, Capture(alpha, unary)


def expand_captures(captures: Set[Capture]) -> CaptureGroup:
    """Recover the unary captures a binary capture evidence subsumes.

    A binary evidence ``v ∈ (α, φ1 ∧ φ2)`` implies ``v ∈ (α, φ1)`` and
    ``v ∈ (α, φ2)``; both unary conditions are frequent whenever the
    binary one is (the Apriori property), so no extra frequency check is
    needed here.
    """
    expanded: Set[Capture] = set(captures)
    for capture in captures:
        if is_binary(capture.condition):
            for part in capture.condition.unary_parts():
                expanded.add(Capture(capture.attr, part))
    return frozenset(expanded)


def create_capture_groups(
    env: ExecutionEnvironment,
    triples: DataSet,
    scope: Optional[ConditionScope] = None,
    frequent: Optional[FrequentConditions] = None,
    batches: Optional[DataSet] = None,
) -> DataSet:
    """Run the CGCreator: evidences → grouped and expanded capture groups.

    Returns a :class:`~repro.dataflow.engine.DataSet` of
    :data:`CaptureGroup` (frozensets of captures); the grouping values are
    discarded after aggregation, as in the paper ("the system discards the
    values as they are no longer needed").

    Parameters
    ----------
    env, triples:
        The environment and the encoded-triple dataset.
    scope:
        Attribute restrictions (defaults to the general setting).
    frequent:
        FCDetector output; ``None`` disables the frequent-condition
        pruning (the RDFind-NF ablation).
    batches:
        Optional column-batch dataset over the same triples (one
        :class:`~repro.storage.columnar.TripleBatch` per partition, same
        round-robin layout).  When given, Algorithm 2 runs as the fused
        batch kernel — evidence emission and the grouping combiner in one
        pass, Bloom probes and capture construction cached per distinct
        id — instead of the ``flat_map`` + ``reduce_by_key`` record
        chain.  Both paths emit identical evidences in identical order,
        so the grouped output is byte-identical.
    """
    scope = scope if scope is not None else ConditionScope.full()
    if batches is not None:
        from repro.dataflow.kernels import EvidenceBatchKernel

        grouped = batches.flat_map_reduce_by_key(
            EvidenceBatchKernel(scope, frequent),
            _merge_sets,
            name="cg/group-by-value",
        )
        planner = getattr(env, "planner", None)
        if planner is not None:
            planner.annotate(
                env.metrics,
                "cg/group-by-value",
                planner.plan_kernel("cg/group-by-value", triples._total_records()),
            )
    else:
        evidences = triples.flat_map(
            _EvidenceEmitter(scope, frequent), name="cg/evidences"
        )
        grouped = evidences.reduce_by_key(
            key_fn=pair_key,
            value_fn=_singleton_capture_set,
            reduce_fn=_merge_sets,
            name="cg/group-by-value",
        )
    # Round-robin the groups before the expensive per-group work: the hash
    # partitioning above clusters by value, so the few very large groups
    # (paper Section 7.1: they emerge from values like rdf:type) would
    # otherwise pile onto single workers ("the capture groups are
    # distributed among the workers after this step").
    rebalanced = grouped.rebalance(name="cg/rebalance")
    return rebalanced.map(_expand_group_value, name="cg/expand")


def _singleton_capture_set(pair: Tuple[int, Capture]) -> Set[Capture]:
    """Seed accumulator for one evidence record."""
    return {pair[1]}


def _expand_group_value(pair: Tuple[int, Set[Capture]]) -> CaptureGroup:
    """Drop the grouping value and expand subsumed unary captures."""
    return expand_captures(pair[1])


def _merge_sets(a: Set[Capture], b: Set[Capture]) -> Set[Capture]:
    """Union two accumulator sets, mutating the larger one.

    The accumulators are owned by the aggregation, so in-place union is
    safe; always growing the larger set keeps aggregation near-linear even
    for values with very many capture evidences.
    """
    if len(a) < len(b):
        a, b = b, a
    a |= b
    return a
