"""Figure 8: scaling the number of input triples (Freebase workload).

The paper streams 0.5-3 billion Freebase triples through RDFind with
h=1,000, considering "predicates only in conditions" (read here as: no
predicate projections), and reports (a) slightly super-linear runtime
growth, and (b) pertinent-CIND counts growing with the input while AR
counts peak and then decline (rules get violated as data accumulates).

This reproduction sweeps the Freebase-like generator from 25k to 400k
triples (the documented scale substitution) with a proportionally scaled
support threshold.
"""

import time

from repro.core.conditions import ConditionScope
from repro.core.discovery import RDFind, RDFindConfig
from repro.datasets import freebase

TRIPLE_COUNTS = (25_000, 50_000, 100_000, 200_000, 400_000)

#: h=1,000 at 3G triples scales to ~the same selectivity here.
SUPPORT_THRESHOLD = 100


def test_fig08_triple_scaling(benchmark, report):
    def body():
        rows = []
        for n_triples in TRIPLE_COUNTS:
            dataset = freebase(n_triples=n_triples).encode()
            config = RDFindConfig(
                support_threshold=SUPPORT_THRESHOLD,
                scope=ConditionScope.no_predicate_projections(),
                parallelism=4,
            )
            started = time.perf_counter()
            result = RDFind(config).discover(dataset)
            elapsed = time.perf_counter() - started
            rows.append(
                (
                    n_triples,
                    elapsed,
                    len(result.cinds),
                    len(result.association_rules),
                )
            )
        return rows

    rows = benchmark.pedantic(body, rounds=1, iterations=1)

    section = report.section(
        f"Figure 8 — triple scaling, Freebase-like, h={SUPPORT_THRESHOLD}, "
        f"predicates in conditions only (paper: 0.5-3G triples, h=1000)"
    )
    section.row(f"{'triples':>10} | {'runtime':>9} | {'CINDs':>8} | {'ARs':>6}")
    for n_triples, elapsed, cinds, ars in rows:
        section.row(
            f"{n_triples:>10,} | {elapsed:>8.2f}s | {cinds:>8,} | {ars:>6,}"
        )

    runtimes = [row[1] for row in rows]
    cind_counts = [row[2] for row in rows]
    ar_counts = [row[3] for row in rows]
    # Shape: runtime grows monotonically-ish and at-least-linearly overall
    # (the paper observes "slightly quadratic" growth).
    assert runtimes[-1] > runtimes[0] * (
        TRIPLE_COUNTS[-1] / TRIPLE_COUNTS[0]
    ) * 0.5
    # Shape: more triples yield more pertinent CINDs ...
    assert cind_counts[-1] > cind_counts[0]
    # ... while ARs peak and then decline (growing data violates exact
    # rules; the paper observes the peak at 1G of 3G triples).
    peak = max(ar_counts)
    assert peak > ar_counts[-1] or peak == 0
