"""Tests for the CINDExtractor (broad CIND extraction from groups)."""

import pytest

from repro.core.capture_groups import create_capture_groups
from repro.core.cind import CIND
from repro.core.extraction import (
    ExtractionConfig,
    extract_broad_cinds,
)
from repro.core.frequent_conditions import detect_frequent_conditions
from repro.core.validation import NaiveProfiler
from repro.dataflow.engine import ExecutionEnvironment, SimulatedOutOfMemory
from tests.conftest import random_rdf


def run_extraction(
    encoded,
    h,
    parallelism=3,
    memory_budget=None,
    **config_overrides,
):
    env = ExecutionEnvironment(parallelism=parallelism, memory_budget=memory_budget)
    triples = env.from_collection(encoded.triples)
    frequent = detect_frequent_conditions(env, triples, h=h, fp_rate=1e-9)
    groups = create_capture_groups(env, triples, frequent=frequent)
    config = ExtractionConfig(h=h, **config_overrides)
    return extract_broad_cinds(env, groups, config)


def broad_as_set(broad):
    out = set()
    for dependent, (refs, support) in broad.items():
        for referenced in refs:
            cind = CIND(dependent, referenced)
            if not cind.is_trivial():
                out.add((cind, support))
    return out


def oracle_broad_set(encoded, h):
    return set(NaiveProfiler(encoded).broad_cinds(h).items())


class TestCorrectness:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_table1_matches_oracle(self, table1_encoded, h):
        broad, _stats = run_extraction(table1_encoded, h)
        assert broad_as_set(broad) == oracle_broad_set(table1_encoded, h)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_random_matches_oracle(self, seed, parallelism):
        encoded = random_rdf(seed + 70, n_triples=40).encode()
        broad, _stats = run_extraction(encoded, 2, parallelism)
        assert broad_as_set(broad) == oracle_broad_set(encoded, 2)

    def test_supports_are_dependent_interpretation_sizes(self, table1_encoded):
        broad, _stats = run_extraction(table1_encoded, 2)
        profiler = NaiveProfiler(table1_encoded)
        for dependent, (_refs, support) in broad.items():
            assert support == len(profiler.interpretation(dependent))

    def test_no_dependent_below_threshold(self):
        encoded = random_rdf(5, n_triples=50).encode()
        broad, _stats = run_extraction(encoded, 3)
        assert all(support >= 3 for _refs, support in broad.values())

    def test_dependent_never_among_its_references(self):
        encoded = random_rdf(6, n_triples=50).encode()
        broad, _stats = run_extraction(encoded, 2)
        for dependent, (refs, _support) in broad.items():
            assert dependent not in refs


class TestAblationSwitches:
    """Disabling the paper's optimizations must never change results."""

    @pytest.mark.parametrize("seed", range(5))
    def test_no_capture_support_pruning_same_results(self, seed):
        encoded = random_rdf(seed + 90, n_triples=40).encode()
        with_pruning, _ = run_extraction(encoded, 2)
        without, _ = run_extraction(encoded, 2, prune_capture_support=False)
        assert broad_as_set(with_pruning) == broad_as_set(without)

    @pytest.mark.parametrize("seed", range(5))
    def test_no_load_balancing_same_results(self, seed):
        encoded = random_rdf(seed + 110, n_triples=40).encode()
        balanced, _ = run_extraction(encoded, 2)
        direct, _ = run_extraction(encoded, 2, balance_dominant_groups=False)
        assert broad_as_set(balanced) == broad_as_set(direct)

    @pytest.mark.parametrize("seed", range(5))
    def test_tiny_candidate_blooms_same_results(self, seed):
        """Aggressively small Bloom filters stress the validation path."""
        encoded = random_rdf(seed + 130, n_triples=45).encode()
        # parallelism 2 with small random data makes many groups dominant
        small, _ = run_extraction(
            encoded, 1, parallelism=2,
            candidate_bloom_bits=16, candidate_bloom_hashes=2,
        )
        exact, _ = run_extraction(
            encoded, 1, parallelism=2, balance_dominant_groups=False
        )
        assert broad_as_set(small) == broad_as_set(exact)


class TestStats:
    def test_stats_populated(self, table1_encoded):
        _broad, stats = run_extraction(table1_encoded, 2)
        assert stats.groups_total > 0
        assert stats.groups_after_pruning <= stats.groups_total
        assert stats.captures_total >= stats.captures_pruned
        assert stats.broad_cind_count >= stats.broad_dependents > 0

    def test_pruning_reduces_captures(self):
        encoded = random_rdf(8, n_triples=60).encode()
        _broad, stats = run_extraction(encoded, 4)
        assert stats.captures_pruned > 0


class TestMemoryBudget:
    def test_direct_extraction_can_oom(self):
        encoded = random_rdf(12, n_triples=80, n_subjects=3, n_objects=3).encode()
        with pytest.raises(SimulatedOutOfMemory):
            run_extraction(
                encoded, 1, parallelism=1, memory_budget=50,
                prune_capture_support=False, balance_dominant_groups=False,
            )

    def test_config_validates_threshold(self):
        with pytest.raises(ValueError):
            ExtractionConfig(h=0)
