"""Eager, partitioned dataflow engine with pluggable executor backends.

This is the substrate RDFind runs on in this reproduction, standing in for
Apache Flink (see DESIGN.md, substitutions).  An
:class:`ExecutionEnvironment` fixes a *parallelism* (number of workers); a
:class:`DataSet` is a list of per-worker partitions.  Operators execute
eagerly, one *task* per partition, timing each task so that the engine can
report what a cluster would have achieved
(:class:`repro.dataflow.metrics.JobMetrics`).

Where the tasks run is decided by the environment's executor backend
(:mod:`repro.dataflow.executors`): ``serial`` runs them inline in the
driver (the reference behaviour), ``process`` runs them concurrently on a
persistent process pool — real multi-core execution.  Every per-partition
task is a module-level function over a picklable payload, so the same
task code serves both backends and results are byte-identical between
them.

Operator vocabulary (mapping to the paper's Appendix C):

========================  ====================================================
paper / Flink             here
========================  ====================================================
``Map`` / ``FlatMap``     :meth:`DataSet.map`, :meth:`DataSet.flat_map`,
                          :meth:`DataSet.filter`
``GroupBy`` + ``Group-    :meth:`DataSet.reduce_by_key` (hash-partitioned
Combine`` + ``Group-      shuffle with optional local pre-aggregation — the
Reduce``                  paper's "early aggregation")
``CoGroup``               :meth:`DataSet.co_group`
``GlobalReduce``          :meth:`DataSet.reduce_partitions` (local partials
                          merged on one worker — used for Bloom unions)
``Broadcast``             :meth:`DataSet.broadcast` (collect + per-worker
                          copy accounting)
``Repartition``           :meth:`DataSet.rebalance`,
                          :meth:`DataSet.partition_by_key`
========================  ====================================================

Shuffles are routed by :func:`stable_hash`, a deterministic 64-bit hash
over the key types the pipeline uses (defined in
:mod:`repro.dataflow.hashing`, re-exported here).  Builtin ``hash`` would
not do: it is randomized per process for strings (``PYTHONHASHSEED``),
which would make partition assignment differ between pool workers and
between runs.

The *shuffle mode* decides how keyed operators move data.  The default,
``shuffle="inline"``, materializes every shuffle bucket in driver
memory — the reference data plane, byte-identical to the engine's
historical behaviour.  ``shuffle="spill"`` routes
:meth:`DataSet.reduce_by_key`, :meth:`DataSet.flat_map_reduce_by_key`,
:meth:`DataSet.group_by_key`, and :meth:`DataSet.co_group` through
:mod:`repro.dataflow.shuffle` instead: map-side workers cut sorted,
CRC-framed runs to disk whenever a byte-accurate
:class:`~repro.dataflow.shuffle.MemoryBudget` (``memory_budget_bytes``)
overflows, and reduce-side workers k-way-merge the runs — bounded memory
regardless of bucket size, output asserted byte-identical to ``inline``
on both executor backends.  Under the ``process`` backend the spill path
also moves the shuffled data through the filesystem instead of pickling
whole buckets through the driver.

A configurable per-partition *memory budget* (max records materialized in
any one worker's in-memory state) emulates out-of-memory failures: stateful
operators raise :class:`SimulatedOutOfMemory` when a single worker would
have to hold more records than the budget allows.  The exception pickles
faithfully, so a budget blown inside a pool worker surfaces in the driver
exactly like a serial one.  The paper's Figures 7 and 13 report such
failures for Cinderella and RDFind-DE.

With ``oom_recovery=True`` the engine treats memory exhaustion as an
operating mode instead of a crash (full-in-memory RDF engines in the
vertical-partitioning tradition do the same): a stateful stage that blows
the budget is retried at higher effective parallelism — its hash buckets
are split into sub-buckets re-routed by a salted :func:`stable_hash` of
the key, so each sub-task holds a strictly smaller state — and a combiner
that blows the budget degrades to no-combine streaming (a spill).  Runs
that would have failed complete slower instead; the flag defaults off so
the paper's failure tables still reproduce.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.dataflow import shuffle as _shuffle
from repro.dataflow import workspace as _workspace
from repro.dataflow.executors import create_executor
from repro.dataflow.faults import (
    FaultPlan,
    RetryPolicy,
    SimulatedOutOfMemory,
)
from repro.dataflow.gcpause import stage_gc_pause
from repro.dataflow.hashing import _mix_int, hash_partition, stable_hash
from repro.dataflow.metrics import JobMetrics, StageMetrics
from repro.dataflow.shuffle import (
    SHUFFLE_MODES,
    RunInfo,
    SpillConfig,
    record_bytes,
)

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")

__all__ = [
    "DataSet",
    "ExecutionEnvironment",
    "SimulatedOutOfMemory",  # re-exported from repro.dataflow.faults
    "SHUFFLE_MODES",  # re-exported from repro.dataflow.shuffle
    "stable_hash",  # re-exported from repro.dataflow.hashing
    "pair_key",
    "pair_value",
    "record_cells",
    "record_bytes",  # re-exported from repro.dataflow.shuffle
]


#: Backward-compatible alias — the partitioner moved to
#: :mod:`repro.dataflow.hashing` so the shuffle subsystem can share it.
_hash_partition = hash_partition


# ----------------------------------------------------------------------
# picklable helpers for keyed operators (usable from any backend)
# ----------------------------------------------------------------------


def pair_key(pair: Tuple[K, V]) -> K:
    """First element of a pair — the canonical picklable ``key_fn``."""
    return pair[0]


def pair_value(pair: Tuple[K, V]) -> V:
    """Second element of a pair — the canonical picklable ``value_fn``."""
    return pair[1]


def record_cells(record: Any) -> int:
    """Price one record in memory-budget cells.

    A cell is one dictionary-encoded value slot: an int is one cell, a
    tuple (e.g. an ``EncodedTriple``) is the sum of its fields, and a
    string is charged by its length in 8-byte words — the width ratio
    that makes encoded and raw-string records comparable under one
    budget.

    Batch records price themselves: an object exposing ``budget_cells``
    (e.g. :class:`repro.storage.columnar.TripleBatch`, 3 cells per
    triple) is charged that — the same cells its triples would cost as an
    ``EncodedTriple`` stream, so budget accounting is representation-
    independent.
    """
    cells = getattr(record, "budget_cells", None)
    if cells is not None:
        return cells
    if isinstance(record, int):
        return 1
    if isinstance(record, str):
        return 1 + len(record) // 8
    if isinstance(record, tuple):
        return sum(record_cells(field) for field in record)
    return 1


# ----------------------------------------------------------------------
# per-partition task functions (module-level, hence picklable)
# ----------------------------------------------------------------------
#
# Each task consumes one partition's payload and returns its result plus
# the seconds the worker spent — measured inside the worker, so the
# per-partition timings (and the skew they reveal) are real under both
# backends.


def _map_task(payload):
    fn, partition = payload
    start = time.perf_counter()
    result = [fn(item) for item in partition]
    return result, time.perf_counter() - start


def _flat_map_task(payload):
    fn, partition = payload
    start = time.perf_counter()
    result: List[Any] = []
    extend = result.extend
    for item in partition:
        extend(fn(item))
    return result, time.perf_counter() - start


def _filter_task(payload):
    pred, partition = payload
    start = time.perf_counter()
    result = [item for item in partition if pred(item)]
    return result, time.perf_counter() - start


def _map_partition_task(payload):
    fn, partition, worker = payload
    start = time.perf_counter()
    result = list(fn(partition, worker))
    return result, time.perf_counter() - start


def _combine_shuffle_task(payload):
    """Local pre-aggregation + bucket split of ``reduce_by_key``."""
    key_fn, value_fn, reduce_fn, combine, parallelism, budget, stage, partition = payload
    start = time.perf_counter()
    with stage_gc_pause() as pause:
        if combine:
            local: Dict[Any, Any] = {}
            for item in partition:
                key = key_fn(item)
                value = value_fn(item)
                if key in local:
                    local[key] = reduce_fn(local[key], value)
                else:
                    local[key] = value
            if budget is not None and len(local) > budget:
                raise SimulatedOutOfMemory(stage, len(local), budget)
            pairs: Iterable[Tuple[Any, Any]] = local.items()
            emitted = len(local)
        else:
            pairs = [(key_fn(item), value_fn(item)) for item in partition]
            emitted = len(partition)
        buckets: List[List[Tuple[Any, Any]]] = [[] for _ in range(parallelism)]
        for key, value in pairs:
            buckets[_hash_partition(key, parallelism)].append((key, value))
    return buckets, emitted, pause.suppressed, time.perf_counter() - start


def _fused_combine_shuffle_task(payload):
    """Fused flatMap + local combine + bucket split (operator chaining)."""
    flat_fn, reduce_fn, state_cost_fn, parallelism, budget, stage, partition = payload
    start = time.perf_counter()
    with stage_gc_pause() as pause:
        local: Dict[Any, Any] = {}
        state_cost = 0
        if state_cost_fn is None and budget is None:
            # Unpriced, unbudgeted fast path (the batch kernels' case):
            # same fold, same insertion order, no per-pair branch work.
            local_get = local.get
            for item in partition:
                for key, value in flat_fn(item):
                    previous = local_get(key)
                    if previous is None:
                        local[key] = value
                    else:
                        local[key] = reduce_fn(previous, value)
        else:
            for item in partition:
                for key, value in flat_fn(item):
                    previous = local.get(key)
                    if previous is None:
                        local[key] = value
                        if state_cost_fn is not None:
                            state_cost += state_cost_fn(value)
                    else:
                        merged = reduce_fn(previous, value)
                        local[key] = merged
                        if state_cost_fn is not None:
                            state_cost += state_cost_fn(merged) - state_cost_fn(previous)
                    if budget is not None:
                        used = state_cost if state_cost_fn is not None else len(local)
                        if used > budget:
                            raise SimulatedOutOfMemory(stage, used, budget)
        peak = state_cost if state_cost_fn is not None else len(local)
        buckets: List[List[Tuple[Any, Any]]] = [[] for _ in range(parallelism)]
        for key, value in local.items():
            buckets[_hash_partition(key, parallelism)].append((key, value))
    return buckets, len(local), peak, pause.suppressed, time.perf_counter() - start


def _fused_nocombine_shuffle_task(payload):
    """The spill path of the fused operator: stream pairs, hold no state.

    Used by OOM recovery when the combiner state of
    :func:`_fused_combine_shuffle_task` blows the memory budget — the
    flatMap output goes straight into the shuffle buckets, so the worker
    needs no aggregation table at all.  The shuffle volume grows (every
    pair moves instead of one entry per key), which is exactly the
    slow-but-completed trade the recovery mode makes.
    """
    flat_fn, _reduce_fn, _state_cost_fn, parallelism, _budget, _stage, partition = payload
    start = time.perf_counter()
    with stage_gc_pause() as pause:
        buckets: List[List[Tuple[Any, Any]]] = [[] for _ in range(parallelism)]
        emitted = 0
        for item in partition:
            for key, value in flat_fn(item):
                buckets[_hash_partition(key, parallelism)].append((key, value))
                emitted += 1
    return buckets, emitted, 0, pause.suppressed, time.perf_counter() - start


#: Salt decorrelating the OOM sub-bucket routing from the primary
#: bucket routing (both are stable_hash-based; without a salt every
#: record of one bucket would land in the same sub-bucket).
_OOM_SPLIT_SALT = 0x5851F42D4C957F2D

#: Upper bound on the per-bucket split factor OOM recovery will try
#: before conceding that the budget cannot be met (2 -> 4 -> ... -> 256).
MAX_OOM_SPLIT_FACTOR = 256


def _oom_split_index(key: Any, factor: int) -> int:
    """Deterministic sub-bucket for ``key`` under a split ``factor``."""
    return _mix_int(stable_hash(key) ^ _OOM_SPLIT_SALT) % factor


def _split_bucket_by_key(
    bucket: List[Tuple[Any, Any]], factor: int
) -> List[List[Tuple[Any, Any]]]:
    """Split one ``(key, ...)`` bucket into ``factor`` key-disjoint parts.

    Every occurrence of a key lands in the same sub-bucket (routing is a
    pure function of the key), so keyed reduction/grouping over the parts
    is exact — the stage merely runs at higher effective parallelism.
    """
    parts: List[List[Tuple[Any, Any]]] = [[] for _ in range(factor)]
    for pair in bucket:
        parts[_oom_split_index(pair[0], factor)].append(pair)
    return parts


def _reduce_bucket_task(payload):
    """The post-shuffle reduction of one key bucket."""
    reduce_fn, budget, stage, bucket = payload
    start = time.perf_counter()
    with stage_gc_pause() as pause:
        grouped: Dict[Any, Any] = {}
        for key, value in bucket:
            if key in grouped:
                grouped[key] = reduce_fn(grouped[key], value)
            else:
                grouped[key] = value
        if budget is not None and len(grouped) > budget:
            raise SimulatedOutOfMemory(stage, len(grouped), budget)
    return list(grouped.items()), pause.suppressed, time.perf_counter() - start


def _keyed_shuffle_task(payload):
    """Key every record and split it into hash buckets (shuffle side)."""
    key_fn, parallelism, partition = payload
    start = time.perf_counter()
    buckets: List[List[Tuple[Any, Any]]] = [[] for _ in range(parallelism)]
    for item in partition:
        key = key_fn(item)
        buckets[_hash_partition(key, parallelism)].append((key, item))
    return buckets, time.perf_counter() - start


def _group_bucket_task(payload):
    """Materialize one bucket's ``(key, [records])`` groups."""
    budget, stage, bucket = payload
    start = time.perf_counter()
    with stage_gc_pause() as pause:
        if budget is not None and len(bucket) > budget:
            raise SimulatedOutOfMemory(stage, len(bucket), budget)
        grouped: Dict[Any, List[Any]] = {}
        for key, item in bucket:
            grouped.setdefault(key, []).append(item)
    return list(grouped.items()), pause.suppressed, time.perf_counter() - start


def _co_group_apply_task(payload):
    """Group both sides of one bucket pair and apply the join function."""
    fn, budget, stage, left_bucket, right_bucket = payload
    start = time.perf_counter()
    with stage_gc_pause() as pause:
        if budget is not None and len(left_bucket) + len(right_bucket) > budget:
            raise SimulatedOutOfMemory(
                stage, len(left_bucket) + len(right_bucket), budget
            )
        left_groups: Dict[Any, List[Any]] = {}
        for key, item in left_bucket:
            left_groups.setdefault(key, []).append(item)
        right_groups: Dict[Any, List[Any]] = {}
        for key, item in right_bucket:
            right_groups.setdefault(key, []).append(item)
        result: List[Any] = []
        # Deterministic key order (left insertion order, then right-only keys)
        # instead of set union — set iteration order would leak the process's
        # hash seed into the output order.
        for key in left_groups:
            result.extend(fn(key, left_groups[key], right_groups.get(key, [])))
        for key in right_groups:
            if key not in left_groups:
                result.extend(fn(key, [], right_groups[key]))
    return result, pause.suppressed, time.perf_counter() - start


def _local_reduce_task(payload):
    """The per-partition half of a global reduction."""
    local_fn, partition = payload
    start = time.perf_counter()
    return local_fn(partition), time.perf_counter() - start


class ExecutionEnvironment:
    """Factory for :class:`DataSet` objects plus job-wide configuration.

    Parameters
    ----------
    parallelism:
        Number of workers/partitions (>= 1).  All datasets created from
        this environment have exactly this many partitions.
    memory_budget:
        Optional cap on the number of records any single worker may hold
        in in-memory state (grouping tables, collected results).
        ``None`` disables the check.
    name:
        Job name used in metric reports.
    executor:
        Backend that runs the per-partition tasks: ``"serial"`` (inline,
        the default and reference) or ``"process"`` (persistent process
        pool — real cores, but operator functions must be picklable; see
        :mod:`repro.dataflow.executors`).
    workers:
        Pool size for the ``process`` backend; defaults to
        ``min(parallelism, available cores)``.  Ignored by ``serial``.
    fault_plan:
        Optional seeded :class:`~repro.dataflow.faults.FaultPlan`; when
        given, the executor injects deterministic per-task faults
        (transient errors, worker crashes, stragglers, forced OOMs) that
        the retry machinery must absorb — output stays byte-identical.
    retry_policy:
        Bounded-retry/backoff configuration for failed tasks
        (:class:`~repro.dataflow.faults.RetryPolicy`; a default policy
        with 2 retries applies when omitted).
    oom_recovery:
        When ``True``, a stateful stage that raises
        :class:`SimulatedOutOfMemory` is retried with its partitions
        split by a salted key hash (and combiners degraded to streaming)
        instead of failing the job.  Off by default so configured budget
        failures — the paper's Figure 7/13 "failed" cells — still
        reproduce.
    shuffle:
        Data plane for the keyed operators: ``"inline"`` (in-memory
        buckets, the reference) or ``"spill"`` (disk-backed sorted runs
        merged reduce-side; see :mod:`repro.dataflow.shuffle`).  Spill
        output is byte-identical to inline.
    memory_budget_bytes:
        Per-worker cap, in estimated bytes (:func:`record_bytes`), on the
        in-memory shuffle state of spill-mode operators; overflowing
        state is cut to a sorted run on disk instead of raising.  Only
        meaningful with ``shuffle="spill"``; ``None`` means a single
        final flush per task.
    spill_dir:
        Directory under which the spill workspace is created (a fresh
        ``tempfile.mkdtemp`` per environment, removed on :meth:`close`).
        Defaults to the system temp dir.
    spill_config:
        Full :class:`~repro.dataflow.shuffle.SpillConfig` override for
        tests and benchmarks (frame sizing, merge fan-in); wins over
        ``memory_budget_bytes`` when given.
    task_timeout_seconds:
        Per-task wall-clock bound under the ``process`` backend; a
        timed-out task is treated as a retryable transient fault (the
        pool is abandoned and the task replayed).  ``None`` (default)
        waits forever; ignored by ``serial``.
    """

    def __init__(
        self,
        parallelism: int = 1,
        memory_budget: Optional[int] = None,
        name: str = "job",
        executor: str = "serial",
        workers: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        oom_recovery: bool = False,
        shuffle: str = "inline",
        memory_budget_bytes: Optional[int] = None,
        spill_dir: Optional[str] = None,
        spill_config: Optional[SpillConfig] = None,
        task_timeout_seconds: Optional[float] = None,
        metrics: Optional[JobMetrics] = None,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if shuffle not in SHUFFLE_MODES:
            raise ValueError(
                f"unknown shuffle mode {shuffle!r}; expected one of {SHUFFLE_MODES}"
            )
        self.parallelism = int(parallelism)
        self.memory_budget = memory_budget
        self.oom_recovery = bool(oom_recovery)
        self.shuffle = shuffle
        self.spill_config = (
            spill_config
            if spill_config is not None
            else SpillConfig(budget_bytes=memory_budget_bytes)
        )
        self._spill_dir_base = spill_dir
        self._spill_root: Optional[str] = None
        self._spill_token: Optional[int] = None
        self._spill_stage_seq = 0
        #: Optional CheckpointManager the discovery facade attaches so
        #: pipeline code can checkpoint sub-stage boundaries (kept as a
        #: plain attribute: repro.dataflow.checkpoint must stay importable
        #: without the engine and vice versa).
        self.checkpoint = None
        #: Optional StagePlanner the discovery facade attaches
        #: (repro.dataflow.planner): keyed operators consult it for
        #: per-stage combine and shuffle decisions, pipeline code for
        #: kernel-vs-record decisions.  Plain attribute for the same
        #: import-independence reason as ``checkpoint``.
        self.planner = None
        self.executor = create_executor(
            executor,
            self.parallelism,
            workers,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
            task_timeout_seconds=task_timeout_seconds,
        )
        # A caller-supplied JobMetrics lets an observer in another thread
        # watch the job live (the server's worker snapshots it into
        # progress.json while discovery runs); default is a private one.
        self.metrics = metrics if metrics is not None else JobMetrics()
        self.metrics.job_name = name
        self.metrics.parallelism = self.parallelism
        self.metrics.executor = self.executor.name
        self.metrics.workers = self.executor.workers

    def _new_spill_stage_dir(self) -> str:
        """A fresh directory for one spill stage's run files.

        The workspace root is created lazily (``tempfile.mkdtemp`` under
        ``spill_dir``), so inline-mode jobs never touch the filesystem.
        Stage directories are numbered rather than named — stage names
        contain ``/``.
        """
        if self._spill_root is None:
            base = self._spill_dir_base
            if base is not None:
                os.makedirs(base, exist_ok=True)
            self._spill_root = tempfile.mkdtemp(prefix="rdfind-spill-", dir=base)
            # Interrupted runs (Ctrl-C, SIGTERM, plain exit without
            # close()) must not leak the workspace.
            self._spill_token = _workspace.register(
                self._spill_root, kind=_workspace.TREE
            )
        stage_dir = os.path.join(
            self._spill_root, f"stage{self._spill_stage_seq:04d}"
        )
        self._spill_stage_seq += 1
        os.makedirs(stage_dir)
        return stage_dir

    def close(self) -> None:
        """Release executor resources and remove the spill workspace."""
        self.executor.close()
        if self._spill_root is not None:
            shutil.rmtree(self._spill_root, ignore_errors=True)
            self._spill_root = None
        if self._spill_token is not None:
            _workspace.unregister(self._spill_token)
            self._spill_token = None

    def __enter__(self) -> "ExecutionEnvironment":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def from_collection(
        self,
        items: Iterable[T],
        name: str = "source",
        cost_fn: Optional[Callable[[T], int]] = None,
    ) -> "DataSet[T]":
        """Create a dataset by round-robin partitioning ``items``.

        ``cost_fn`` prices one record in memory-budget cells (see
        :func:`record_cells`); when given, each worker's materialized
        source partition is charged against the memory budget by *cost*
        rather than implicitly held for free — this is how
        dictionary-encoded sources account for their three-id records.
        """
        partitions: List[List[T]] = [[] for _ in range(self.parallelism)]
        start = time.perf_counter()
        for index, item in enumerate(items):
            partitions[index % self.parallelism].append(item)
        elapsed = time.perf_counter() - start
        stage = self.metrics.new_stage(name)
        stage.wall_seconds = elapsed
        stage.partition_seconds = [elapsed / self.parallelism] * self.parallelism
        stage.records_in = [len(p) for p in partitions]
        stage.records_out = [len(p) for p in partitions]
        if cost_fn is not None:
            for partition in partitions:
                cost = sum(map(cost_fn, partition))
                stage.peak_state_cost = max(stage.peak_state_cost, cost)
                self._check_budget(name, cost)
        return DataSet(self, partitions, name=name)

    def from_batches(
        self,
        batches: Sequence[T],
        sizes: Sequence[int],
        name: str = "source/batches",
        cost_fn: Optional[Callable[[T], int]] = None,
    ) -> "DataSet[T]":
        """Create a dataset of one pre-built batch per worker.

        Each partition holds exactly one batch object (e.g. a
        :class:`~repro.storage.columnar.TripleBatch`); ``sizes`` declares
        how many *logical* records each batch stands for, so stage
        accounting and the process backend's inline threshold see the
        real record volume rather than "one record per partition".
        ``cost_fn`` charges each batch against the memory budget, exactly
        as :meth:`from_collection` charges materialized sources.
        """
        if len(batches) != self.parallelism:
            raise ValueError(
                f"expected {self.parallelism} batches (one per worker), "
                f"got {len(batches)}"
            )
        if len(sizes) != len(batches):
            raise ValueError(
                f"sizes ({len(sizes)}) must match batches ({len(batches)})"
            )
        stage = self.metrics.new_stage(name)
        stage.partition_seconds = [0.0] * self.parallelism
        stage.records_in = [int(size) for size in sizes]
        stage.records_out = [int(size) for size in sizes]
        if cost_fn is not None:
            for batch in batches:
                cost = cost_fn(batch)
                stage.peak_state_cost = max(stage.peak_state_cost, cost)
                self._check_budget(name, cost)
        return DataSet(
            self,
            [[batch] for batch in batches],
            name=name,
            logical_sizes=[int(size) for size in sizes],
        )

    def from_partitions(
        self, partitions: Sequence[Sequence[T]], name: str = "source"
    ) -> "DataSet[T]":
        """Create a dataset from pre-built partitions.

        Missing partitions are padded with empty ones; overflow partitions
        are merged round-robin onto the existing ones, so no single worker
        silently absorbs all the excess (which would skew budget and
        metric accounting).
        """
        normalized: List[List[T]] = [list(p) for p in partitions]
        while len(normalized) < self.parallelism:
            normalized.append([])
        if len(normalized) > self.parallelism:
            merged = normalized[: self.parallelism]
            for index, extra in enumerate(normalized[self.parallelism :]):
                merged[index % self.parallelism].extend(extra)
            normalized = merged
        return DataSet(self, normalized, name=name)

    def _check_budget(self, stage: str, records: int) -> None:
        budget = self.memory_budget
        if budget is not None and records > budget:
            raise SimulatedOutOfMemory(stage, records, budget)


class DataSet(Generic[T]):
    """An immutable, partitioned collection plus the operators over it."""

    __slots__ = ("env", "partitions", "name", "logical_sizes")

    def __init__(
        self,
        env: ExecutionEnvironment,
        partitions: List[List[T]],
        name: str = "dataset",
        logical_sizes: Optional[List[int]] = None,
    ) -> None:
        self.env = env
        self.partitions = partitions
        self.name = name
        #: For batch datasets (one columnar batch per partition): how many
        #: logical records each partition's batch stands for.  ``None``
        #: means the partitions hold plain records and size is their
        #: length.  Keeps record accounting — and the process backend's
        #: inline threshold — honest when a partition's ``len`` is 1.
        self.logical_sizes = logical_sizes

    def _partition_sizes(self) -> List[int]:
        """Logical record count per partition (batch-aware)."""
        if self.logical_sizes is not None:
            return list(self.logical_sizes)
        return [len(partition) for partition in self.partitions]

    def _total_records(self) -> int:
        return sum(self._partition_sizes())

    def _run_stage(
        self,
        stage: StageMetrics,
        task: Callable[[Any], Any],
        payloads: List[Any],
        records: Optional[int] = None,
    ) -> List[Any]:
        """Run one task per payload on the executor, recording wall-clock.

        ``records`` hints the stage's total input size so the process
        backend can run trivially small stages inline.  The stage record
        itself is handed to the executor so fault injections and retries
        are accounted where they happen.
        """
        start = time.perf_counter()
        results = self.env.executor.run(task, payloads, records=records, stage=stage)
        stage.wall_seconds += time.perf_counter() - start
        return results

    # ------------------------------------------------------------------
    # element-wise operators
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], U], name: str = "map") -> "DataSet[U]":
        """Apply ``fn`` to every record."""
        stage = self.env.metrics.new_stage(name)
        payloads = [(fn, partition) for partition in self.partitions]
        out: List[List[U]] = []
        for partition, (result, elapsed) in zip(
            self.partitions, self._run_stage(stage, _map_task, payloads, records=self._total_records())
        ):
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(len(partition))
            stage.records_out.append(len(result))
            out.append(result)
        return DataSet(self.env, out, name=name)

    def flat_map(
        self, fn: Callable[[T], Iterable[U]], name: str = "flat_map"
    ) -> "DataSet[U]":
        """Apply ``fn`` and flatten its iterable results."""
        stage = self.env.metrics.new_stage(name)
        payloads = [(fn, partition) for partition in self.partitions]
        out: List[List[U]] = []
        for partition, (result, elapsed) in zip(
            self.partitions, self._run_stage(stage, _flat_map_task, payloads, records=self._total_records())
        ):
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(len(partition))
            stage.records_out.append(len(result))
            out.append(result)
        return DataSet(self.env, out, name=name)

    def filter(self, pred: Callable[[T], bool], name: str = "filter") -> "DataSet[T]":
        """Keep records for which ``pred`` is true."""
        stage = self.env.metrics.new_stage(name)
        payloads = [(pred, partition) for partition in self.partitions]
        out: List[List[T]] = []
        for partition, (result, elapsed) in zip(
            self.partitions, self._run_stage(stage, _filter_task, payloads, records=self._total_records())
        ):
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(len(partition))
            stage.records_out.append(len(result))
            out.append(result)
        return DataSet(self.env, out, name=name)

    def map_partition(
        self,
        fn: Callable[[List[T], int], Iterable[U]],
        name: str = "map_partition",
    ) -> "DataSet[U]":
        """Apply ``fn(partition, worker_index)`` per partition."""
        stage = self.env.metrics.new_stage(name)
        payloads = [
            (fn, partition, worker)
            for worker, partition in enumerate(self.partitions)
        ]
        out: List[List[U]] = []
        for size, (result, elapsed) in zip(
            self._partition_sizes(),
            self._run_stage(stage, _map_partition_task, payloads, records=self._total_records()),
        ):
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(size)
            stage.records_out.append(len(result))
            out.append(result)
        return DataSet(self.env, out, name=name)

    # ------------------------------------------------------------------
    # keyed aggregation (GroupBy + GroupCombine + GroupReduce)
    # ------------------------------------------------------------------

    def _gather_buckets(
        self, bucket_lists: Iterable[List[List[Any]]]
    ) -> List[List[Any]]:
        """Concatenate per-task bucket splits in partition order."""
        buckets: List[List[Any]] = [[] for _ in range(self.env.parallelism)]
        for split in bucket_lists:
            for index, chunk in enumerate(split):
                buckets[index].extend(chunk)
        return buckets

    def _next_split_factor(self, stage: StageMetrics, factor: int) -> int:
        """Advance one OOM-recovery round, or re-raise if recovery is off.

        Called from an ``except SimulatedOutOfMemory`` block: doubles the
        split factor (2, 4, ..., :data:`MAX_OOM_SPLIT_FACTOR`) and counts
        the recovery on the stage.
        """
        if not self.env.oom_recovery or factor >= MAX_OOM_SPLIT_FACTOR:
            raise
        stage.recovered_oom_splits += 1
        return factor * 2

    def _run_split_bucket_stage(
        self,
        stage: StageMetrics,
        task: Callable[[Any], Any],
        buckets: List[List[Tuple[Any, Any]]],
        make_payload: Callable[[List[Tuple[Any, Any]]], Any],
        records: int,
    ) -> List[List[Any]]:
        """Run a per-bucket stateful task, splitting buckets on OOM.

        On :class:`SimulatedOutOfMemory` (with recovery enabled) every
        bucket is split into key-disjoint sub-buckets re-routed by the
        salted :func:`stable_hash` sub-key, and the stage is retried at
        the higher effective parallelism — doubling the factor until the
        per-sub-task state fits the budget.  Returns one result list per
        *original* bucket (sub-results concatenated in split order).
        """
        factor = 1
        while True:
            if factor == 1:
                sub_buckets: List[List[Tuple[Any, Any]]] = list(buckets)
            else:
                sub_buckets = [
                    part
                    for bucket in buckets
                    for part in _split_bucket_by_key(bucket, factor)
                ]
            payloads = [make_payload(bucket) for bucket in sub_buckets]
            try:
                results = self._run_stage(stage, task, payloads, records=records)
                break
            except SimulatedOutOfMemory:
                factor = self._next_split_factor(stage, factor)
        for sub_bucket, (result, suppressed, elapsed) in zip(sub_buckets, results):
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(len(sub_bucket))
            stage.records_out.append(len(result))
            stage.gc_suppressed_collections += suppressed
        out: List[List[Any]] = [[] for _ in buckets]
        for index, (result, _suppressed, _elapsed) in enumerate(results):
            out[index // factor].extend(result)
        return out

    def _reduce_buckets(
        self,
        buckets: List[List[Tuple[K, V]]],
        reduce_fn: Callable[[V, V], V],
        name: str,
    ) -> List[List[Tuple[K, V]]]:
        """The post-shuffle reduce stage shared by the keyed operators."""
        env = self.env
        reduce_stage = env.metrics.new_stage(name)
        return self._run_split_bucket_stage(
            reduce_stage,
            _reduce_bucket_task,
            buckets,
            lambda bucket: (reduce_fn, env.memory_budget, name, bucket),
            records=sum(len(b) for b in buckets),
        )

    # ------------------------------------------------------------------
    # spilling shuffle (disk-backed data plane; repro.dataflow.shuffle)
    # ------------------------------------------------------------------

    def _run_spill_map_stage(
        self,
        stage: StageMetrics,
        task: Callable[[Any], Any],
        payloads: List[Any],
        records: int,
        input_sizes: List[int],
    ) -> List[List[RunInfo]]:
        """Run map-side spill tasks; account manifests, return runs per
        reduce partition in global ``(map partition, cut order)`` order."""
        results = self._run_stage(stage, task, payloads, records=records)
        shuffled = 0
        per_task_runs: List[List[RunInfo]] = []
        for size, (runs, emitted, spilled_bytes, peak_bytes, elapsed) in zip(
            input_sizes, results
        ):
            shuffled += emitted
            per_task_runs.append(runs)
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(size)
            stage.records_out.append(emitted)
            stage.spilled_runs += len(runs)
            stage.spilled_bytes += spilled_bytes
            stage.peak_state_bytes = max(stage.peak_state_bytes, peak_bytes)
        stage.shuffled_records = shuffled
        return _shuffle.gather_runs(per_task_runs, self.env.parallelism)

    def _run_spill_merge_stage(
        self,
        stage: StageMetrics,
        task: Callable[[Any], Any],
        make_payload: Callable[[int, List[RunInfo]], Any],
        run_lists: List[List[RunInfo]],
    ) -> List[List[Any]]:
        """Run reduce-side merge tasks, one per partition's run set."""
        records = sum(info.records for runs in run_lists for info in runs)
        payloads = [
            make_payload(index, runs) for index, runs in enumerate(run_lists)
        ]
        results = self._run_stage(stage, task, payloads, records=records)
        out: List[List[Any]] = []
        for runs, (result, passes, elapsed) in zip(run_lists, results):
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(sum(info.records for info in runs))
            stage.records_out.append(len(result))
            stage.merge_passes += passes
            out.append(result)
        return out

    def _spill_reduce_by_key(
        self,
        key_fn: Callable[[T], K],
        value_fn: Callable[[T], V],
        reduce_fn: Callable[[V, V], V],
        combine: bool,
        name: str,
    ) -> "DataSet[Tuple[K, V]]":
        env = self.env
        stage = env.metrics.new_stage(name)
        stage_dir = env._new_spill_stage_dir()
        try:
            payloads = [
                (
                    key_fn,
                    value_fn,
                    reduce_fn,
                    combine,
                    env.parallelism,
                    env.spill_config,
                    stage_dir,
                    index,
                    partition,
                )
                for index, partition in enumerate(self.partitions)
            ]
            run_lists = self._run_spill_map_stage(
                stage,
                _shuffle._spill_combine_map_task,
                payloads,
                self._total_records(),
                self._partition_sizes(),
            )
            reduce_stage = env.metrics.new_stage(name + "/reduce")
            out = self._run_spill_merge_stage(
                reduce_stage,
                _shuffle._spill_reduce_task,
                lambda index, runs: (
                    reduce_fn,
                    runs,
                    env.spill_config,
                    stage_dir,
                    index,
                ),
                run_lists,
            )
        finally:
            shutil.rmtree(stage_dir, ignore_errors=True)
        return DataSet(env, out, name=name)

    def _spill_flat_map_reduce_by_key(
        self,
        flat_fn: Callable[[T], Iterable[Tuple[K, V]]],
        reduce_fn: Callable[[V, V], V],
        name: str,
    ) -> "DataSet[Tuple[K, V]]":
        env = self.env
        stage = env.metrics.new_stage(name)
        stage_dir = env._new_spill_stage_dir()
        try:
            payloads = [
                (
                    flat_fn,
                    reduce_fn,
                    env.parallelism,
                    env.spill_config,
                    stage_dir,
                    index,
                    partition,
                )
                for index, partition in enumerate(self.partitions)
            ]
            run_lists = self._run_spill_map_stage(
                stage,
                _shuffle._spill_fused_map_task,
                payloads,
                self._total_records(),
                self._partition_sizes(),
            )
            reduce_stage = env.metrics.new_stage(name + "/reduce")
            out = self._run_spill_merge_stage(
                reduce_stage,
                _shuffle._spill_reduce_task,
                lambda index, runs: (
                    reduce_fn,
                    runs,
                    env.spill_config,
                    stage_dir,
                    index,
                ),
                run_lists,
            )
        finally:
            shutil.rmtree(stage_dir, ignore_errors=True)
        return DataSet(env, out, name=name)

    def _spill_group_by_key(
        self, key_fn: Callable[[T], K], name: str
    ) -> "DataSet[Tuple[K, List[T]]]":
        env = self.env
        stage = env.metrics.new_stage(name)
        stage_dir = env._new_spill_stage_dir()
        try:
            payloads = [
                (
                    key_fn,
                    None,
                    env.parallelism,
                    env.spill_config,
                    stage_dir,
                    index,
                    partition,
                )
                for index, partition in enumerate(self.partitions)
            ]
            run_lists = self._run_spill_map_stage(
                stage,
                _shuffle._spill_keyed_map_task,
                payloads,
                self._total_records(),
                [len(p) for p in self.partitions],
            )
            group_stage = env.metrics.new_stage(name + "/group")
            out = self._run_spill_merge_stage(
                group_stage,
                _shuffle._spill_group_task,
                lambda index, runs: (runs, env.spill_config, stage_dir, index),
                run_lists,
            )
        finally:
            shutil.rmtree(stage_dir, ignore_errors=True)
        return DataSet(env, out, name=name)

    def _spill_co_group(
        self,
        other: "DataSet[U]",
        key_self: Callable[[T], K],
        key_other: Callable[[U], K],
        fn: Callable[[K, List[T], List[U]], Iterable[Any]],
        name: str,
    ) -> "DataSet[Any]":
        env = self.env
        parallelism = env.parallelism
        stage = env.metrics.new_stage(name)
        stage_dir = env._new_spill_stage_dir()
        try:
            # The right side's map indices are offset by the parallelism:
            # unique run names, and every left run globally orders before
            # every right run — the side order the inline co-group applies.
            payloads = [
                (
                    key_self,
                    0,
                    parallelism,
                    env.spill_config,
                    stage_dir,
                    index,
                    partition,
                )
                for index, partition in enumerate(self.partitions)
            ] + [
                (
                    key_other,
                    1,
                    parallelism,
                    env.spill_config,
                    stage_dir,
                    parallelism + index,
                    partition,
                )
                for index, partition in enumerate(other.partitions)
            ]
            run_lists = self._run_spill_map_stage(
                stage,
                _shuffle._spill_keyed_map_task,
                payloads,
                self._total_records() + other._total_records(),
                [len(p) for p in self.partitions]
                + [len(p) for p in other.partitions],
            )
            apply_stage = env.metrics.new_stage(name + "/apply")
            out = self._run_spill_merge_stage(
                apply_stage,
                _shuffle._spill_co_group_task,
                lambda index, runs: (
                    fn,
                    runs,
                    env.spill_config,
                    stage_dir,
                    index,
                ),
                run_lists,
            )
        finally:
            shutil.rmtree(stage_dir, ignore_errors=True)
        return DataSet(env, out, name=name)

    def reduce_by_key(
        self,
        key_fn: Callable[[T], K],
        value_fn: Callable[[T], V],
        reduce_fn: Callable[[V, V], V],
        combine: bool = True,
        name: str = "reduce_by_key",
        order_insensitive: bool = False,
    ) -> "DataSet[Tuple[K, V]]":
        """Hash-partitioned keyed reduction producing ``(key, value)`` pairs.

        With ``combine=True`` (the default, matching the paper's
        early-aggregation optimisation) each worker pre-aggregates its
        partition before the shuffle, which shrinks shuffle volume for
        low-cardinality keys.

        ``order_insensitive=True`` declares that the reduction's *output*
        is independent of combine order and grouping layout (commutative
        integer aggregation over fixed keys): only such stages may have
        their combiner switched off by the stage planner without changing
        output bytes.  Set-valued folds must leave it ``False``.

        Under ``shuffle="spill"`` the same reduction runs on the
        disk-backed data plane: the combiner spills sorted runs whenever
        the byte budget overflows and the reduce side merges them —
        byte-identical output in bounded memory, so the record-count
        ``memory_budget`` simulation does not apply.
        """
        env = self.env
        planner = env.planner
        plans = []
        use_spill = env.shuffle == "spill"
        if planner is not None and planner.active and env.memory_budget is None:
            records = self._total_records()
            combine_plan = planner.plan_combine(
                name, records, order_insensitive=order_insensitive
            )
            if combine_plan.combine is not None and combine_plan.combine != combine:
                combine = combine_plan.combine
                plans.append(combine_plan)
            if not use_spill:
                shuffle_plan = planner.plan_shuffle(name, records)
                if shuffle_plan.shuffle == "spill":
                    use_spill = True
                    plans.append(shuffle_plan)
        stage_index = len(env.metrics.stages)
        if use_spill:
            result = self._spill_reduce_by_key(
                key_fn, value_fn, reduce_fn, combine, name
            )
            self._finish_planned_stage(stage_index, plans)
            return result
        result = self._inline_reduce_by_key(
            key_fn, value_fn, reduce_fn, combine, name
        )
        self._finish_planned_stage(stage_index, plans)
        return result

    def _finish_planned_stage(self, stage_index: int, plans) -> None:
        """Record planner decisions on a finished stage and feed back costs."""
        planner = self.env.planner
        if planner is None or not planner.active:
            return
        stages = self.env.metrics.stages
        if stage_index >= len(stages):
            return
        for plan in plans:
            planner.record(stages[stage_index], plan)
        for stage in stages[stage_index:]:
            planner.observe(stage)

    def _inline_reduce_by_key(
        self,
        key_fn: Callable[[T], K],
        value_fn: Callable[[T], V],
        reduce_fn: Callable[[V, V], V],
        combine: bool,
        name: str,
    ) -> "DataSet[Tuple[K, V]]":
        env = self.env
        parallelism = env.parallelism
        stage = env.metrics.new_stage(name)
        payloads = [
            (
                key_fn,
                value_fn,
                reduce_fn,
                combine,
                parallelism,
                env.memory_budget,
                name,
                partition,
            )
            for partition in self.partitions
        ]
        try:
            results = self._run_stage(stage, _combine_shuffle_task, payloads, records=self._total_records())
        except SimulatedOutOfMemory:
            # Combiner state blew the budget: spill — re-run the stage
            # without local pre-aggregation (the combine=False path holds
            # no state), trading shuffle volume for completion.
            if not (env.oom_recovery and combine):
                raise
            stage.recovered_oom_splits += 1
            payloads = [
                (key_fn, value_fn, reduce_fn, False, parallelism, None, name, partition)
                for partition in self.partitions
            ]
            results = self._run_stage(stage, _combine_shuffle_task, payloads, records=self._total_records())
        shuffled = 0
        for size, (_buckets, emitted, suppressed, elapsed) in zip(
            self._partition_sizes(), results
        ):
            shuffled += emitted
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(size)
            stage.records_out.append(emitted)
            stage.gc_suppressed_collections += suppressed
        stage.shuffled_records = shuffled
        buckets = self._gather_buckets(split for split, _e, _g, _t in results)
        out = self._reduce_buckets(buckets, reduce_fn, name + "/reduce")
        return DataSet(env, out, name=name)

    def flat_map_reduce_by_key(
        self,
        flat_fn: Callable[[T], Iterable[Tuple[K, V]]],
        reduce_fn: Callable[[V, V], V],
        state_cost_fn: Optional[Callable[[V], int]] = None,
        name: str = "flat_map_reduce_by_key",
    ) -> "DataSet[Tuple[K, V]]":
        """Fused flatMap + keyed reduction (Flink's operator chaining).

        ``flat_fn`` yields ``(key, value)`` pairs per record; each pair is
        folded into the local combine state *as it is produced*, so the
        flatMap's output is never materialized — essential when a record
        expands into very many pairs (e.g. CIND candidate sets, which are
        quadratic in capture-group size).

        ``state_cost_fn`` prices a combine-state value (e.g. the size of a
        referenced-capture set); when given, the per-worker memory budget
        is enforced against the *total state cost*, which models a real
        combiner running out of memory (the paper's RDFind-DE failures).

        Under ``shuffle="spill"`` the fused combiner spills its state to
        sorted runs instead of raising: the byte-accurate spill budget
        replaces ``state_cost_fn`` pricing, and the output stays
        byte-identical.
        """
        env = self.env
        planner = env.planner
        plans = []
        use_spill = env.shuffle == "spill"
        if (
            planner is not None
            and planner.active
            and env.memory_budget is None
            and not use_spill
        ):
            shuffle_plan = planner.plan_shuffle(name, self._total_records())
            if shuffle_plan.shuffle == "spill":
                use_spill = True
                plans.append(shuffle_plan)
        stage_index = len(env.metrics.stages)
        if use_spill:
            result = self._spill_flat_map_reduce_by_key(flat_fn, reduce_fn, name)
            self._finish_planned_stage(stage_index, plans)
            return result
        result = self._inline_flat_map_reduce_by_key(
            flat_fn, reduce_fn, state_cost_fn, name
        )
        self._finish_planned_stage(stage_index, plans)
        return result

    def _inline_flat_map_reduce_by_key(
        self,
        flat_fn: Callable[[T], Iterable[Tuple[K, V]]],
        reduce_fn: Callable[[V, V], V],
        state_cost_fn: Optional[Callable[[V], int]],
        name: str,
    ) -> "DataSet[Tuple[K, V]]":
        env = self.env
        parallelism = env.parallelism
        stage = env.metrics.new_stage(name)
        payloads = [
            (
                flat_fn,
                reduce_fn,
                state_cost_fn,
                parallelism,
                env.memory_budget,
                name,
                partition,
            )
            for partition in self.partitions
        ]
        try:
            results = self._run_stage(stage, _fused_combine_shuffle_task, payloads, records=self._total_records())
        except SimulatedOutOfMemory:
            # The fused combiner's state (e.g. candidate sets on dominant
            # capture groups — the footprint that kills RDFind-DE) blew
            # the budget: spill to the no-combine streaming task, which
            # holds no aggregation state at all.  The un-combined pairs
            # inflate the shuffle, and the post-shuffle reduce still
            # recovers by key-splitting if a bucket's state is too big.
            if not env.oom_recovery:
                raise
            stage.recovered_oom_splits += 1
            results = self._run_stage(stage, _fused_nocombine_shuffle_task, payloads, records=self._total_records())
        shuffled = 0
        for size, (_buckets, emitted, peak, suppressed, elapsed) in zip(
            self._partition_sizes(), results
        ):
            shuffled += emitted
            stage.peak_state_cost = max(stage.peak_state_cost, peak)
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(size)
            stage.records_out.append(emitted)
            stage.gc_suppressed_collections += suppressed
        stage.shuffled_records = shuffled
        buckets = self._gather_buckets(split for split, _e, _p, _g, _t in results)
        out = self._reduce_buckets(buckets, reduce_fn, name + "/reduce")
        return DataSet(env, out, name=name)

    def group_by_key(
        self,
        key_fn: Callable[[T], K],
        name: str = "group_by_key",
    ) -> "DataSet[Tuple[K, List[T]]]":
        """Hash-partitioned grouping into ``(key, [records])`` pairs."""
        env = self.env
        if env.shuffle == "spill":
            return self._spill_group_by_key(key_fn, name)
        parallelism = env.parallelism
        stage = env.metrics.new_stage(name)
        payloads = [
            (key_fn, parallelism, partition) for partition in self.partitions
        ]
        results = self._run_stage(stage, _keyed_shuffle_task, payloads, records=self._total_records())
        shuffled = 0
        for partition, (_buckets, elapsed) in zip(self.partitions, results):
            shuffled += len(partition)
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(len(partition))
            stage.records_out.append(len(partition))
        stage.shuffled_records = shuffled
        buckets = self._gather_buckets(split for split, _t in results)

        group_stage = env.metrics.new_stage(name + "/group")
        out = self._run_split_bucket_stage(
            group_stage,
            _group_bucket_task,
            buckets,
            lambda bucket: (env.memory_budget, name + "/group", bucket),
            records=sum(len(b) for b in buckets),
        )
        return DataSet(env, out, name=name)

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def co_group(
        self,
        other: "DataSet[U]",
        key_self: Callable[[T], K],
        key_other: Callable[[U], K],
        fn: Callable[[K, List[T], List[U]], Iterable[Any]],
        name: str = "co_group",
    ) -> "DataSet[Any]":
        """Shuffle both inputs by key and apply ``fn`` per key group.

        ``fn`` receives the key and the (possibly empty) record lists from
        each side, enabling inner, outer, and semi joins.
        """
        env = self.env
        if env.shuffle == "spill":
            return self._spill_co_group(other, key_self, key_other, fn, name)
        parallelism = env.parallelism
        stage = env.metrics.new_stage(name)
        left_payloads = [
            (key_self, parallelism, partition) for partition in self.partitions
        ]
        right_payloads = [
            (key_other, parallelism, partition) for partition in other.partitions
        ]
        results = self._run_stage(
            stage,
            _keyed_shuffle_task,
            left_payloads + right_payloads,
            records=self._total_records() + other._total_records(),
        )
        left_results = results[: len(self.partitions)]
        right_results = results[len(self.partitions) :]
        shuffled = 0
        for index in range(parallelism):
            left_partition = self.partitions[index]
            right_partition = other.partitions[index]
            elapsed = left_results[index][1] + right_results[index][1]
            moved = len(left_partition) + len(right_partition)
            shuffled += moved
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(moved)
            stage.records_out.append(moved)
        stage.shuffled_records = shuffled
        left_buckets = self._gather_buckets(split for split, _t in left_results)
        right_buckets = self._gather_buckets(split for split, _t in right_results)

        apply_stage = env.metrics.new_stage(name + "/apply")
        apply_records = sum(len(b) for b in left_buckets) + sum(
            len(b) for b in right_buckets
        )
        factor = 1
        while True:
            if factor == 1:
                pairs = list(zip(left_buckets, right_buckets))
            else:
                # Both sides split by the same salted key routing, so each
                # sub-pair co-groups a disjoint key subset exactly.
                pairs = [
                    (left_part, right_part)
                    for left_bucket, right_bucket in zip(left_buckets, right_buckets)
                    for left_part, right_part in zip(
                        _split_bucket_by_key(left_bucket, factor),
                        _split_bucket_by_key(right_bucket, factor),
                    )
                ]
            apply_payloads = [
                (fn, env.memory_budget, name + "/apply", left_bucket, right_bucket)
                for left_bucket, right_bucket in pairs
            ]
            try:
                results = self._run_stage(
                    apply_stage,
                    _co_group_apply_task,
                    apply_payloads,
                    records=apply_records,
                )
                break
            except SimulatedOutOfMemory:
                factor = self._next_split_factor(apply_stage, factor)
        for (left_bucket, right_bucket), (result, suppressed, elapsed) in zip(
            pairs, results
        ):
            apply_stage.partition_seconds.append(elapsed)
            apply_stage.records_in.append(len(left_bucket) + len(right_bucket))
            apply_stage.records_out.append(len(result))
            apply_stage.gc_suppressed_collections += suppressed
        out: List[List[Any]] = [[] for _ in left_buckets]
        for index, (result, _suppressed, _elapsed) in enumerate(results):
            out[index // factor].extend(result)
        return DataSet(env, out, name=name)

    # ------------------------------------------------------------------
    # global operations
    # ------------------------------------------------------------------

    def reduce_partitions(
        self,
        local_fn: Callable[[List[T]], U],
        merge_fn: Callable[[U, U], U],
        name: str = "reduce_partitions",
    ) -> U:
        """Per-worker partial reduction merged on a single worker.

        This mirrors the paper's Bloom-filter construction: each worker
        builds a local partial, then one worker unions the partials
        (Figure 5, steps 3-4).  ``local_fn`` runs on the executor (so it
        must be picklable under the process backend); ``merge_fn`` runs on
        the driver and may be any callable.
        """
        stage = self.env.metrics.new_stage(name)
        payloads = [(local_fn, partition) for partition in self.partitions]
        partials: List[U] = []
        for size, (partial, elapsed) in zip(
            self._partition_sizes(),
            self._run_stage(stage, _local_reduce_task, payloads, records=self._total_records()),
        ):
            partials.append(partial)
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(size)
            stage.records_out.append(1)
        stage.shuffled_records = max(0, len(partials) - 1)

        merge_stage = self.env.metrics.new_stage(name + "/merge")
        start = time.perf_counter()
        merged = partials[0]
        for partial in partials[1:]:
            merged = merge_fn(merged, partial)
        elapsed = time.perf_counter() - start
        merge_stage.wall_seconds = elapsed
        merge_stage.partition_seconds.append(elapsed)
        merge_stage.records_in.append(len(partials))
        merge_stage.records_out.append(1)
        return merged

    def collect(self, name: str = "collect") -> List[T]:
        """Gather all records on the driver."""
        stage = self.env.metrics.new_stage(name)
        start = time.perf_counter()
        out: List[T] = []
        for partition in self.partitions:
            partition_start = time.perf_counter()
            out.extend(partition)
            stage.partition_seconds.append(time.perf_counter() - partition_start)
            stage.records_in.append(len(partition))
            stage.records_out.append(len(partition))
        stage.wall_seconds = time.perf_counter() - start
        stage.shuffled_records = len(out)
        self.env._check_budget(name, len(out))
        return out

    def broadcast(self, name: str = "broadcast") -> List[T]:
        """Collect and account for a copy per simulated worker."""
        values = self.collect(name=name)
        stage = self.env.metrics.stages[-1]
        stage.broadcast_records = len(values) * self.env.parallelism
        return values

    def count(self) -> int:
        """Total number of records (no stage recorded)."""
        return sum(len(p) for p in self.partitions)

    # ------------------------------------------------------------------
    # repartitioning
    # ------------------------------------------------------------------

    def rebalance(self, name: str = "rebalance") -> "DataSet[T]":
        """Round-robin redistribute records evenly across workers.

        Pure data movement — runs on the driver under every backend.
        """
        env = self.env
        parallelism = env.parallelism
        stage = env.metrics.new_stage(name)
        wall_start = time.perf_counter()
        out: List[List[T]] = [[] for _ in range(parallelism)]
        index = 0
        total = 0
        for partition in self.partitions:
            start = time.perf_counter()
            for item in partition:
                out[index % parallelism].append(item)
                index += 1
            total += len(partition)
            stage.partition_seconds.append(time.perf_counter() - start)
            stage.records_in.append(len(partition))
            stage.records_out.append(len(partition))
        stage.wall_seconds = time.perf_counter() - wall_start
        stage.shuffled_records = total
        return DataSet(env, out, name=name)

    def partition_by_key(
        self, key_fn: Callable[[T], K], name: str = "partition_by_key"
    ) -> "DataSet[T]":
        """Hash-redistribute records by key (stable across processes)."""
        env = self.env
        parallelism = env.parallelism
        stage = env.metrics.new_stage(name)
        wall_start = time.perf_counter()
        out: List[List[T]] = [[] for _ in range(parallelism)]
        total = 0
        for partition in self.partitions:
            start = time.perf_counter()
            for item in partition:
                out[_hash_partition(key_fn(item), parallelism)].append(item)
            total += len(partition)
            stage.partition_seconds.append(time.perf_counter() - start)
            stage.records_in.append(len(partition))
            stage.records_out.append(len(partition))
        stage.wall_seconds = time.perf_counter() - wall_start
        stage.shuffled_records = total
        return DataSet(env, out, name=name)

    def union(self, other: "DataSet[T]", name: str = "union") -> "DataSet[T]":
        """Concatenate two datasets partition-wise (no shuffle)."""
        stage = self.env.metrics.new_stage(name)
        out: List[List[T]] = []
        for left, right in zip(self.partitions, other.partitions):
            start = time.perf_counter()
            merged = left + right
            elapsed = time.perf_counter() - start
            stage.wall_seconds += elapsed
            stage.partition_seconds.append(elapsed)
            stage.records_in.append(len(merged))
            stage.records_out.append(len(merged))
            out.append(merged)
        return DataSet(self.env, out, name=name)

    def __repr__(self) -> str:
        sizes = [len(p) for p in self.partitions]
        return f"<DataSet {self.name!r}: {sum(sizes)} records in {sizes}>"
