"""Knowledge discovery from CINDs (paper Appendix B).

CINDs reveal instance-level facts not explicitly stated in the data:

* **co-occurrence rules** — ``(s, p=P1 ∧ o=V1) ⊆ (s, p=P2 ∧ o=V2)`` says
  "everything with ``P1 = V1`` also has ``P2 = V2``" (the paper's
  area-code-559-implies-California and drug-target examples);
* **equivalences** — the same inclusion in both directions says the two
  value assignments select exactly the same entities (the paper's
  Angus/Malcolm Young co-writer example).

As with the other CIND consumers, AR-canonicalized unary conditions are
expanded back through the run's association rules where possible.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.core.cind import decode_capture, decode_condition
from repro.core.conditions import BinaryCondition, Condition
from repro.core.discovery import DiscoveryResult
from repro.rdf.model import Attr


class KnowledgeFact(NamedTuple):
    """One mined fact."""

    kind: str  # "rule" | "equivalence"
    lhs: str
    rhs: str
    support: int

    def describe(self) -> str:
        """Human-readable form."""
        arrow = "≡" if self.kind == "equivalence" else "⇒"
        return f"{self.lhs} {arrow} {self.rhs}  [support={self.support}]"


def _fact_side(
    condition: Condition, value_predicates: Dict[str, str]
) -> Optional[str]:
    """A human-readable reading of a condition as a fact side.

    ``p=P ∧ o=V`` reads as ``P=V``; the AR-canonical unary form ``o=V``
    expands through the rule ``o=V → p=P`` to the same reading; subject
    conditions like ``s=X ∧ p=target`` (the paper's drug example) read as
    ``X.target``.  Conditions without a value component (plain predicate
    selections) carry no instance-level fact and yield ``None``.
    """
    if isinstance(condition, BinaryCondition):
        parts = dict((part.attr, part.value) for part in condition.unary_parts())
        if Attr.P in parts and Attr.O in parts:
            return f"{parts[Attr.P]}={parts[Attr.O]}"
        if Attr.S in parts and Attr.P in parts:
            return f"{parts[Attr.S]}.{parts[Attr.P]}"
        if Attr.S in parts and Attr.O in parts:
            return f"s={parts[Attr.S]} ∧ o={parts[Attr.O]}"
        return None
    if condition.attr == Attr.O and condition.value in value_predicates:
        return f"{value_predicates[condition.value]}={condition.value}"
    return None


def _is_type_condition(
    condition: Condition, type_predicate: str, value_predicates: Dict[str, str]
) -> bool:
    """Does the condition select by ``rdf:type`` (directly or via an AR)?"""
    if isinstance(condition, BinaryCondition):
        parts = dict((part.attr, part.value) for part in condition.unary_parts())
        return parts.get(Attr.P) == type_predicate
    if condition.attr == Attr.O:
        return value_predicates.get(condition.value) == type_predicate
    return False


def discover_knowledge(
    result: DiscoveryResult,
    min_support: int = 1,
    type_predicate: str = "rdf:type",
) -> List[KnowledgeFact]:
    """Mine co-occurrence rules and equivalences from a discovery result.

    Class-hierarchy inclusions (both sides typed via ``type_predicate``)
    are left to :func:`repro.apps.ontology.reverse_engineer_ontology`.
    """
    dictionary = result.dictionary

    # ARs o=V -> p=P license reading the unary condition o=V as "P = V".
    value_predicates: Dict[str, str] = {}
    for supported in result.association_rules:
        lhs_condition = decode_condition(supported.rule.lhs, dictionary)
        rhs_condition = decode_condition(supported.rule.rhs, dictionary)
        if lhs_condition.attr == Attr.O and rhs_condition.attr == Attr.P:
            value_predicates.setdefault(lhs_condition.value, rhs_condition.value)

    inclusions: Dict[Tuple[str, str, Attr], int] = {}

    for supported in result.cinds:
        if supported.support < min_support:
            continue
        dependent = decode_capture(supported.cind.dependent, dictionary)
        referenced = decode_capture(supported.cind.referenced, dictionary)
        if dependent.attr != referenced.attr:
            continue
        if _is_type_condition(
            dependent.condition, type_predicate, value_predicates
        ) and _is_type_condition(
            referenced.condition, type_predicate, value_predicates
        ):
            continue  # class hierarchy — the ontology app's business
        lhs = _fact_side(dependent.condition, value_predicates)
        rhs = _fact_side(referenced.condition, value_predicates)
        if lhs is None or rhs is None:
            continue
        inclusions[(lhs, rhs, dependent.attr)] = supported.support

    facts: List[KnowledgeFact] = []
    emitted_equivalences: Set[Tuple] = set()
    for (lhs, rhs, attr), support in inclusions.items():
        reverse = inclusions.get((rhs, lhs, attr))
        if reverse is not None:
            key = (frozenset((lhs, rhs)), attr)
            if key in emitted_equivalences:
                continue
            emitted_equivalences.add(key)
            facts.append(
                KnowledgeFact("equivalence", lhs, rhs, min(support, reverse))
            )
        else:
            facts.append(KnowledgeFact("rule", lhs, rhs, support))
    facts.sort(key=lambda fact: (fact.kind, -fact.support, fact.lhs))
    return facts
