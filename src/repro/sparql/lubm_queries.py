"""LUBM benchmark queries used by the paper's Figure 14 experiment.

Query Q2 is the paper's showcase: six triple patterns, of which the three
``rdf:type`` patterns are each implied by a CIND that holds on the LUBM
instance, so minimization brings it down to three patterns (and the join
count from five to two), "speeding up query execution by a factor of 3".
"""

from __future__ import annotations

from repro.sparql.algebra import BGPQuery, TriplePattern, Var

X = Var("X")
Y = Var("Y")
Z = Var("Z")


def lubm_q2() -> BGPQuery:
    """LUBM query Q2: graduate students, their department and alma mater.

    ::

        SELECT ?X ?Y ?Z WHERE {
          ?X rdf:type GraduateStudent .
          ?Y rdf:type University .
          ?Z rdf:type Department .
          ?X memberOf ?Z .
          ?Z subOrganizationOf ?Y .
          ?X undergraduateDegreeFrom ?Y .
        }
    """
    return BGPQuery(
        projection=(X, Y, Z),
        patterns=(
            TriplePattern(X, "rdf:type", "GraduateStudent"),
            TriplePattern(Y, "rdf:type", "University"),
            TriplePattern(Z, "rdf:type", "Department"),
            TriplePattern(X, "memberOf", Z),
            TriplePattern(Z, "subOrganizationOf", Y),
            TriplePattern(X, "undergraduateDegreeFrom", Y),
        ),
        name="LUBM-Q2",
    )


def lubm_q1(course: str = "university0/dept0/course0") -> BGPQuery:
    """LUBM query Q1: graduate students taking a given course.

    A control query for the minimization experiment: its type pattern is
    *not* redundant (undergraduates take courses too), so a sound
    minimizer must leave Q1 unchanged.
    """
    return BGPQuery(
        projection=(X,),
        patterns=(
            TriplePattern(X, "rdf:type", "GraduateStudent"),
            TriplePattern(X, "takesCourse", course),
        ),
        name="LUBM-Q1",
    )
