"""Ontology reverse engineering from CINDs (paper Appendix B).

RDF data often ships without an ontology (or violates it); CINDs recover
schema-level statements from the instance data:

* **class hierarchy** — ``(s, p=rdf:type ∧ o=C1) ⊆ (s, p=rdf:type ∧ o=C2)``
  suggests ``C1 rdfs:subClassOf C2`` (the paper's
  ``Leptodactylidae ⊆ Frog`` example);
* **predicate hierarchy** — ``(s, p=P1) ⊆ (s, p=P2)`` *and*
  ``(o, p=P1) ⊆ (o, p=P2)`` together suggest
  ``P1 rdfs:subPropertyOf P2`` (the paper's
  ``associatedBand ⊑ associatedMusicalArtist`` example);
* **domain/range** — ``(s, p=P) ⊆ (s, p=rdf:type ∧ o=C)`` suggests
  ``domain(P) = C``; the ``(o, p=P) ⊆ ...`` variant suggests the range;
* **class detection** — an AR ``o=C → p=rdf:type`` reveals that ``C`` is
  used as a class (the paper's ``lmdb:performance`` example).

Because RDFind replaces AR-equivalent binary captures with their unary
twin, conditions are canonicalized through the result's ARs before
matching (e.g. ``(s, o=Frog)`` counts as typed-``Frog`` when
``o=Frog → p=rdf:type`` is a rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.core.cind import (
    CIND,
    Capture,
    decode_capture,
    decode_condition,
)
from repro.core.conditions import BinaryCondition, Condition, UnaryCondition
from repro.core.discovery import DiscoveryResult
from repro.rdf.model import Attr

#: The predicate whose objects are classes.
DEFAULT_TYPE_PREDICATE = "rdf:type"


class OntologyHint(NamedTuple):
    """One schema-level suggestion mined from the CINDs."""

    kind: str  # "subclass" | "subproperty" | "domain" | "range" | "class"
    subject: str
    object: str
    support: int

    def describe(self) -> str:
        """Human-readable form."""
        templates = {
            "subclass": "{s} rdfs:subClassOf {o}",
            "subproperty": "{s} rdfs:subPropertyOf {o}",
            "domain": "domain({s}) = {o}",
            "range": "range({s}) = {o}",
            "class": "{s} is a class (all occurrences typed via {o})",
        }
        body = templates[self.kind].format(s=self.subject, o=self.object)
        return f"{body}  [support={self.support}]"


def _typed_class(
    condition: Condition,
    type_predicate: str,
    class_rules: Dict[str, str],
) -> Optional[str]:
    """The class ``C`` if the condition means "typed C", else None.

    Handles both the explicit binary form ``p=rdf:type ∧ o=C`` and the
    AR-canonicalized unary form ``o=C`` (valid when ``o=C → p=rdf:type``
    is a known rule).
    """
    if isinstance(condition, BinaryCondition):
        parts = dict(
            (part.attr, part.value) for part in condition.unary_parts()
        )
        if parts.get(Attr.P) == type_predicate and Attr.O in parts:
            return parts[Attr.O]
        return None
    if condition.attr == Attr.O and condition.value in class_rules:
        return condition.value
    return None


def _unary_predicate(condition: Condition) -> Optional[str]:
    """The predicate ``P`` if the condition is ``p=P``, else None."""
    if isinstance(condition, UnaryCondition) and condition.attr == Attr.P:
        return condition.value
    return None


def reverse_engineer_ontology(
    result: DiscoveryResult,
    type_predicate: str = DEFAULT_TYPE_PREDICATE,
    min_support: int = 1,
) -> List[OntologyHint]:
    """Mine schema suggestions from a discovery result.

    Returns hints sorted by kind and descending support; ``min_support``
    filters weakly supported suggestions.
    """
    dictionary = result.dictionary

    # ARs o=C -> p=rdf:type identify class terms (and license the unary
    # canonical form of typed-C conditions).
    class_rules: Dict[str, str] = {}
    ar_hints: List[OntologyHint] = []
    for supported in result.association_rules:
        lhs = decode_condition(supported.rule.lhs, dictionary)
        rhs = decode_condition(supported.rule.rhs, dictionary)
        if (
            lhs.attr == Attr.O
            and isinstance(rhs, UnaryCondition)
            and rhs.attr == Attr.P
            and rhs.value == type_predicate
        ):
            class_rules[lhs.value] = rhs.value
            if supported.support >= min_support:
                ar_hints.append(
                    OntologyHint("class", lhs.value, type_predicate, supported.support)
                )

    subclass: List[OntologyHint] = []
    domain_range: List[OntologyHint] = []
    # subproperty requires the s-side and o-side inclusions to both hold.
    subproperty_sides: Dict[Tuple[str, str], Dict[Attr, int]] = {}

    for supported in result.cinds:
        if supported.support < min_support:
            continue
        dependent = decode_capture(supported.cind.dependent, dictionary)
        referenced = decode_capture(supported.cind.referenced, dictionary)

        dep_class = _typed_class(dependent.condition, type_predicate, class_rules)
        ref_class = _typed_class(referenced.condition, type_predicate, class_rules)
        dep_predicate = _unary_predicate(dependent.condition)
        ref_predicate = _unary_predicate(referenced.condition)

        if (
            dep_class is not None
            and ref_class is not None
            and dependent.attr == Attr.S
            and referenced.attr == Attr.S
            and dep_class != ref_class
        ):
            subclass.append(
                OntologyHint("subclass", dep_class, ref_class, supported.support)
            )
        elif (
            dep_predicate is not None
            and ref_predicate is not None
            and dependent.attr == referenced.attr
            and dependent.attr in (Attr.S, Attr.O)
            and dep_predicate != ref_predicate
        ):
            sides = subproperty_sides.setdefault(
                (dep_predicate, ref_predicate), {}
            )
            sides[dependent.attr] = max(
                sides.get(dependent.attr, 0), supported.support
            )
        elif (
            dep_predicate is not None
            and ref_class is not None
            and referenced.attr == Attr.S
        ):
            if dependent.attr == Attr.S:
                domain_range.append(
                    OntologyHint("domain", dep_predicate, ref_class, supported.support)
                )
            elif dependent.attr == Attr.O:
                domain_range.append(
                    OntologyHint("range", dep_predicate, ref_class, supported.support)
                )

    subproperty = [
        OntologyHint("subproperty", sub, parent, min(sides.values()))
        for (sub, parent), sides in subproperty_sides.items()
        if Attr.S in sides and Attr.O in sides
    ]

    hints = subclass + subproperty + domain_range + ar_hints
    hints.sort(key=lambda hint: (hint.kind, -hint.support, hint.subject))
    return hints
